"""E5 — §7.2 headline numbers: total voter-observable latency per platform.

The paper reports: slowest platform (L1 kiosk) 19.7 s, fastest (H1 MacBook)
15.8 s, QR print+scan ≥ 69.5 % of wall-clock, ≈7 s of QR scanning per run, and
L-devices at most ≈19.8 % slower than H-devices.  This bench regenerates that
summary row per platform and compares it against the published values.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ResultTable
from repro.peripherals.clock import Component
from repro.peripherals.hardware import HARDWARE_PROFILES
from repro.registration.protocol import run_registration
from repro.registration.setup import ElectionSetup
from repro.registration.voter import Voter

PAPER_TOTALS = {"L1": 19.7, "H1": 15.8}


def test_headline_registration_latency(benchmark, paper_curve):
    voter_ids = [f"headline-{key}" for key in HARDWARE_PROFILES]
    setup = ElectionSetup.run(paper_curve, voter_ids, num_authority_members=4)

    measured = {}
    for profile_key, voter_id in zip(HARDWARE_PROFILES, voter_ids):
        outcome = run_registration(setup, Voter(voter_id, num_fake_credentials=1), profile_key)
        scan = outcome.latency.wall_seconds_for(Component.QR_SCAN)
        printing = outcome.latency.wall_seconds_for(Component.QR_PRINT)
        measured[profile_key] = {
            "total": outcome.total_wall_seconds,
            "scan": scan,
            "print": printing,
            "qr_share": (scan + printing) / outcome.total_wall_seconds,
        }

    table = ResultTable(
        title="§7.2 — voter-observable registration latency (1 real + 1 fake credential)",
        columns=["hardware", "measured total", "paper total", "QR scan", "QR print", "QR share"],
    )
    for profile_key, stats in measured.items():
        paper = PAPER_TOTALS.get(profile_key)
        table.add_row(
            profile_key,
            f"{stats['total']:.1f} s",
            f"{paper:.1f} s" if paper else "—",
            f"{stats['scan']:.1f} s",
            f"{stats['print']:.1f} s",
            f"{stats['qr_share'] * 100:.1f} %",
        )
    table.print()

    # Paper's observations as assertions on the measured shape.
    slowest = max(measured.values(), key=lambda stats: stats["total"])["total"]
    fastest = min(measured.values(), key=lambda stats: stats["total"])["total"]
    assert slowest == pytest.approx(PAPER_TOTALS["L1"], rel=0.25)
    assert fastest == pytest.approx(PAPER_TOTALS["H1"], rel=0.25)
    assert measured["L1"]["total"] > measured["H1"]["total"]
    for stats in measured.values():
        assert stats["qr_share"] >= 0.695
        assert 5.0 <= stats["scan"] <= 9.0  # ≈7 s of QR scanning per run

    benchmark.pedantic(
        lambda: run_registration(setup, Voter("headline-L1", num_fake_credentials=1), "L1"),
        rounds=1,
        iterations=1,
    )
