"""E2 — Figure 4b: CPU (user+system) median latency per TRIP sub-task and hardware.

The CPU decomposition shows the other half of the §7.2 story: the
resource-constrained devices (L1/L2) burn ≈260 % more CPU (and ≈380 % more on
print-job rendering) yet their wall-clock rises only ≈16.5 %, because the
mechanical print/scan time dominates end-to-end latency.
"""

from __future__ import annotations

from typing import Dict


from repro.bench.harness import ResultTable
from repro.peripherals.clock import Component
from repro.peripherals.hardware import HARDWARE_PROFILES
from benchmarks.bench_fig4a_registration_latency import (
    PHASES,
    RUNS_PER_PROFILE,
    _median_by_phase_component,
    _scripted_registrations,
)


def test_fig4b_cpu_by_phase_and_component(benchmark, paper_curve):
    """Regenerate Fig. 4b (CPU medians) and check the L-vs-H CPU relations."""
    cpu_results: Dict[str, Dict[str, Dict[Component, float]]] = {}
    wall_results: Dict[str, Dict[str, Dict[Component, float]]] = {}
    for profile_key in HARDWARE_PROFILES:
        outcomes = _scripted_registrations(paper_curve, profile_key, RUNS_PER_PROFILE)
        cpu_results[profile_key] = _median_by_phase_component(outcomes, cpu=True)
        wall_results[profile_key] = _median_by_phase_component(outcomes, cpu=False)

    table = ResultTable(
        title="Fig. 4b — median CPU latency per TRIP sub-task (seconds)",
        columns=["phase", "hardware", "Crypto & Logic", "QR Read/Write", "QR Scan", "QR Print", "total"],
    )
    for phase in PHASES:
        for profile_key in HARDWARE_PROFILES:
            components = cpu_results[profile_key].get(phase, {})
            table.add_row(
                phase,
                profile_key,
                f"{components.get(Component.CRYPTO, 0.0):.3f}",
                f"{components.get(Component.QR_READ_WRITE, 0.0):.3f}",
                f"{components.get(Component.QR_SCAN, 0.0):.3f}",
                f"{components.get(Component.QR_PRINT, 0.0):.3f}",
                f"{sum(components.values()):.3f}",
            )
    table.print()

    def total_cpu(profile_key: str) -> float:
        return sum(sum(components.values()) for components in cpu_results[profile_key].values())

    def total_wall(profile_key: str) -> float:
        return sum(sum(components.values()) for components in wall_results[profile_key].values())

    def print_cpu(profile_key: str) -> float:
        return sum(
            components.get(Component.QR_PRINT, 0.0) for components in cpu_results[profile_key].values()
        )

    # Paper observations: CPU on L devices ≈2.6-3.6× higher; print rendering ≈4-5×
    # higher; wall-clock increase stays modest.
    assert total_cpu("L1") > 2.0 * total_cpu("H1")
    assert print_cpu("L1") > 3.5 * print_cpu("H1")
    wall_increase = (total_wall("L1") - total_wall("H1")) / total_wall("H1")
    assert wall_increase < 0.35, "wall-clock penalty of constrained hardware stays modest"

    benchmark.pedantic(lambda: total_cpu("L1"), rounds=1, iterations=1)
