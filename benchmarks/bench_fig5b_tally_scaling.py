"""E4/E7 — Figure 5b: tally-phase latency versus voter population.

Regenerates the tally-scaling series for the four systems from 10² to 10⁶
voters.  Small populations are measured directly; larger ones are
extrapolated from the fitted linear (or, for Civitas, quadratic) cost model —
exactly how the paper extrapolates Civitas beyond 10⁴ voters.  The shape
assertions capture the paper's qualitative result: VoteAgain fastest,
Votegral/TRIP about half of Swiss Post, and Civitas astronomically slower
(≈1,768 years at 10⁶ in the paper; "centuries, not hours" is the property we
check).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.baselines import ALL_SYSTEMS, PhaseName
from repro.bench.harness import SeriesPoint, series_to_table

POPULATIONS = [100, 1_000, 10_000, 100_000, 1_000_000]
SAMPLE = 40
CIVITAS_SAMPLE = 12
SECONDS_PER_YEAR = 365.25 * 86400


def _system(name, cls, group):
    return cls(group) if name != "Civitas" else cls()


def test_fig5b_tally_scaling(benchmark, ec_equivalent_group):
    points: List[SeriesPoint] = []
    totals: Dict[str, Dict[int, float]] = {}
    for name, cls in ALL_SYSTEMS.items():
        totals[name] = {}
        system = _system(name, cls, ec_equivalent_group)
        sample = CIVITAS_SAMPLE if name == "Civitas" else SAMPLE
        for population in POPULATIONS:
            measurement = system.estimate_phase(PhaseName.TALLY, population, sample_voters=sample)
            totals[name][population] = measurement.wall_seconds
            points.append(
                SeriesPoint(series=name, x=population, y=measurement.wall_seconds, extrapolated=measurement.extrapolated)
            )

    table = series_to_table("Fig. 5b — tally-phase wall-clock latency (* = extrapolated)", points)
    table.print()

    at_million = {name: totals[name][1_000_000] for name in ALL_SYSTEMS}

    # Ordering: VoteAgain < TRIP-Core < SwissPost ≪ Civitas.
    assert at_million["VoteAgain"] < at_million["TRIP-Core"] < at_million["SwissPost"]
    # Swiss Post roughly 2× Votegral (27 h vs 14 h in the paper).
    assert 1.3 < at_million["SwissPost"] / at_million["TRIP-Core"] < 4.0
    # Civitas' quadratic tally lands in the "centuries" regime at one million ballots.
    assert at_million["Civitas"] / SECONDS_PER_YEAR > 100
    # Linear systems scale ~10× per decade of voters; Civitas ~100×.
    assert totals["TRIP-Core"][1_000_000] / totals["TRIP-Core"][100_000] == pytest.approx(10, rel=0.4)
    assert totals["Civitas"][1_000_000] / totals["Civitas"][100_000] == pytest.approx(100, rel=0.5)

    benchmark.pedantic(
        lambda: _system("TRIP-Core", ALL_SYSTEMS["TRIP-Core"], ec_equivalent_group).measure_phase(
            PhaseName.TALLY, 30
        ),
        rounds=1,
        iterations=1,
    )
