"""E10 — ablation of TRIP's booth-level defences (§4.4 design choices).

The paper motivates three registration-time defences:

* the **envelope symbol** printed above the commit, which trains voters to
  wait for the commit before presenting an envelope (raising the chance that
  a wrong-order kiosk is noticed);
* the **activation-time duplicate-challenge check**, which catches envelope
  stuffing whenever two duplicates get used;
* the **kiosk signature** on every credential, which pins each credential to
  an authorized kiosk and check-in event.

This bench quantifies what each defence buys: the wrong-order-kiosk survival
probability with and without the symbol-driven detection boost, and the
envelope-stuffing success probability with and without duplicate detection.
"""

from __future__ import annotations



from repro.bench.harness import ResultTable
from repro.security.analysis import iv_adversary_success_bound, kiosk_undetected_probability
from repro.security.games import IndividualVerifiabilityGame
from repro.usability.behavior import PUBLISHED_STUDY


def _stuffing_success_without_duplicate_check(num_envelopes: int, stuffed: int, distribution, trials: int = 4000) -> float:
    """Monte-Carlo of the stuffing game if activation did NOT detect duplicates."""
    game = IndividualVerifiabilityGame(num_envelopes, stuffed, distribution)
    wins = 0
    for _ in range(trials):
        outcome = game.play_once()
        # Without the duplicate check, a 'detected' outcome silently becomes a win
        # whenever the real credential used a stuffed envelope (probability ≈ k/n
        # conditioned on ≥2 stuffed draws); we approximate it by replaying the draw.
        if outcome == "win":
            wins += 1
        elif outcome == "detected":
            wins += 1  # every detected case had the real credential available to attack
    return wins / trials


def test_ablation_of_booth_defenses(benchmark):
    table = ResultTable(
        title="Ablation — what each TRIP defence buys",
        columns=["defence", "with", "without", "metric"],
    )

    # 1. Envelope symbol: detection of a wrong-order kiosk over 50 voters.
    #    §7.5 attributes the 47 % educated detection rate to process training,
    #    of which the symbol prompt is the visible part; without it we assume
    #    voters fall back to the uneducated 10 % rate.
    with_symbol = kiosk_undetected_probability(PUBLISHED_STUDY.detection_rate_educated, 50)
    without_symbol = kiosk_undetected_probability(PUBLISHED_STUDY.detection_rate_uneducated, 50)
    table.add_row(
        "symbol + education prompts",
        f"{with_symbol:.2e}",
        f"{without_symbol:.2e}",
        "P[wrong-order kiosk undetected over 50 voters]",
    )
    assert with_symbol < without_symbol

    # 2. Duplicate-challenge detection at activation vs none.
    distribution = {2: 1.0}
    num_envelopes = 20
    bound_with_check, best_k = iv_adversary_success_bound(num_envelopes, distribution, return_best_k=True)
    without_check = _stuffing_success_without_duplicate_check(num_envelopes, num_envelopes, distribution)
    table.add_row(
        "duplicate-challenge check",
        f"{bound_with_check:.3f}",
        f"{without_check:.3f}",
        "P[envelope stuffing succeeds] (n_E = 20, 1 fake)",
    )
    assert bound_with_check < without_check

    # 3. Kiosk credential signing: an unsigned (rogue-kiosk) credential is
    #    rejected at check-out and activation; without signing it would be
    #    accepted whenever the adversary can reach the ledger.
    table.add_row(
        "kiosk credential signature",
        "rogue credential rejected",
        "rogue credential accepted",
        "check-out / activation outcome (see security tests)",
    )
    table.print()

    benchmark.pedantic(
        lambda: iv_adversary_success_bound(20, distribution), rounds=1, iterations=1
    )
