"""E3 supplement — the *actual* Votegral library pipeline end to end.

The Figure 5 benches use cost kernels so they can reach 10⁶ voters; this
bench runs the real implementation (TRIP registration, ballot casting with
proofs, verifiable mixing, tag filtering, threshold decryption, universal
verification) at laptop scale and reports per-voter phase latencies, so the
kernel constants can be sanity-checked against the genuine code path.
"""

from __future__ import annotations


from repro.bench.harness import ResultTable, emit_bench_json, format_seconds
from repro.election import ElectionConfig, VotegralElection

POPULATION = 20


def test_real_pipeline_end_to_end(benchmark, fast_group):
    config = ElectionConfig(
        num_voters=POPULATION,
        num_options=3,
        proof_rounds=4,
        num_mixers=4,
        group_factory=lambda: fast_group,
    )

    def run_election():
        return VotegralElection(config).run()

    report = benchmark.pedantic(run_election, rounds=1, iterations=1)

    per_voter = report.timing.per_voter(POPULATION)
    table = ResultTable(
        title=f"Votegral real pipeline ({POPULATION} voters, 4 mixers, toy group)",
        columns=["phase", "total", "per voter"],
    )
    table.add_row("Registration", format_seconds(report.timing.registration_seconds), format_seconds(per_voter["registration"]))
    table.add_row("Voting", format_seconds(report.timing.voting_seconds), format_seconds(per_voter["voting"]))
    table.add_row("Tally", format_seconds(report.timing.tally_seconds), format_seconds(per_voter["tally"]))
    table.print()

    emit_bench_json(
        "votegral_pipeline",
        {
            "population": POPULATION,
            "setup_seconds": report.timing.setup_seconds,
            "registration_seconds": report.timing.registration_seconds,
            "voting_seconds": report.timing.voting_seconds,
            "tally_seconds": report.timing.tally_seconds,
            "per_voter": per_voter,
        },
    )

    assert report.counts_match_intent
    assert report.universally_verified
    assert report.result.num_counted == POPULATION
