"""E9 — Theorem IV: the integrity adversary's success bound.

Evaluates the envelope-stuffing bound of §5.1 / Appendix F.3 across booth
sizes and voter behaviours, cross-checks it against the Monte-Carlo game run
on the combinatorial model, and shows the strong-iterative decay across many
target voters (the reason the paper calls repeated attacks "negligible").
"""

from __future__ import annotations


from repro.bench.harness import ResultTable
from repro.security.analysis import (
    geometric_credential_distribution,
    iv_adversary_success_bound,
    iv_success_over_population,
    uniform_credential_distribution,
)
from repro.security.games import IndividualVerifiabilityGame

BOOTH_SIZES = [10, 20, 50, 100]
BEHAVIOURS = {
    "always 1 fake (n_c = 2)": {2: 1.0},
    "uniform 1-4 credentials": uniform_credential_distribution(4),
    "geometric, mean 1.5 fakes": geometric_credential_distribution(1.5),
}


def test_theorem_iv_bound_table(benchmark):
    table = ResultTable(
        title="Theorem IV — envelope-stuffing success probability (analytic vs Monte-Carlo)",
        columns=["booth envelopes n_E", "voter behaviour D_c", "bound", "best k", "empirical", "P over 20 voters"],
    )
    rows = []
    for num_envelopes in BOOTH_SIZES:
        for label, distribution in BEHAVIOURS.items():
            bound, best_k = iv_adversary_success_bound(num_envelopes, distribution, return_best_k=True)
            game = IndividualVerifiabilityGame(num_envelopes, best_k, distribution)
            empirical = game.run(trials=2000).empirical_rate
            iterated = iv_success_over_population(num_envelopes, distribution, 20)
            rows.append((num_envelopes, label, bound, best_k, empirical, iterated))
            table.add_row(
                num_envelopes, label, f"{bound:.4f}", best_k, f"{empirical:.4f}", f"{iterated:.2e}"
            )
    table.print()

    for num_envelopes, label, bound, best_k, empirical, iterated in rows:
        # The Monte-Carlo rate must not exceed the analytic bound (within noise).
        assert empirical <= bound + 0.04
        # Iterating over 20 voters decays the probability geometrically.
        assert iterated <= bound**10
    # Larger booths never help the adversary, and strictly hurt it whenever
    # voters always create at least one fake credential.  (When D_c has mass on
    # n_c = 1, "stuff every envelope" wins with exactly P[n_c = 1] regardless of
    # the booth size — the residual floor the theorem's expectation captures.)
    for label, distribution in BEHAVIOURS.items():
        assert iv_adversary_success_bound(100, distribution) <= iv_adversary_success_bound(10, distribution) + 1e-12
    assert iv_adversary_success_bound(100, {2: 1.0}) < iv_adversary_success_bound(10, {2: 1.0})

    benchmark.pedantic(
        lambda: iv_adversary_success_bound(50, uniform_credential_distribution(4)), rounds=1, iterations=1
    )
