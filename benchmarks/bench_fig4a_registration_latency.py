"""E1 — Figure 4a: wall-clock median latency per TRIP sub-task and hardware.

Reproduces the decomposition of voter-observable registration latency into
phases (CheckIn, Authorization, RealToken, FakeToken, CheckOut, Activation)
and components (Crypto & Logic, QR Read/Write, QR Scan, QR Print) across the
four hardware profiles L1/L2/H1/H2, for a scripted registration issuing one
real and one fake credential (the paper's §7.2 experiment).
"""

from __future__ import annotations

import statistics
from typing import Dict, List


from repro.bench.harness import ResultTable
from repro.peripherals.clock import Component
from repro.peripherals.hardware import HARDWARE_PROFILES
from repro.registration.protocol import run_registration
from repro.registration.setup import ElectionSetup
from repro.registration.voter import Voter

RUNS_PER_PROFILE = 3
PHASES = ["CheckIn", "Authorization", "RealToken", "FakeToken", "CheckOut", "Activation"]


def _scripted_registrations(group, profile_key: str, runs: int) -> List:
    voter_ids = [f"fig4a-{profile_key}-{index}" for index in range(runs)]
    setup = ElectionSetup.run(group, voter_ids, num_authority_members=4, envelopes_per_voter=3)
    outcomes = []
    for voter_id in voter_ids:
        outcomes.append(run_registration(setup, Voter(voter_id, num_fake_credentials=1), profile_key))
    return outcomes


def _median_by_phase_component(outcomes, cpu: bool = False) -> Dict[str, Dict[Component, float]]:
    accumulator: Dict[str, Dict[Component, List[float]]] = {}
    for outcome in outcomes:
        table = outcome.latency.cpu_by_phase_component() if cpu else outcome.latency.wall_by_phase_component()
        for phase, components in table.items():
            for component, value in components.items():
                accumulator.setdefault(phase, {}).setdefault(component, []).append(value)
    return {
        phase: {component: statistics.median(values) for component, values in components.items()}
        for phase, components in accumulator.items()
    }


def test_fig4a_wall_clock_by_phase_and_component(benchmark, paper_curve):
    """Regenerate Fig. 4a and benchmark one H1 scripted registration."""
    results: Dict[str, Dict[str, Dict[Component, float]]] = {}
    for profile_key in HARDWARE_PROFILES:
        outcomes = _scripted_registrations(paper_curve, profile_key, RUNS_PER_PROFILE)
        results[profile_key] = _median_by_phase_component(outcomes)

    table = ResultTable(
        title="Fig. 4a — median wall-clock latency per TRIP sub-task (seconds)",
        columns=["phase", "hardware", "Crypto & Logic", "QR Read/Write", "QR Scan", "QR Print", "total"],
    )
    for phase in PHASES:
        for profile_key in HARDWARE_PROFILES:
            components = results[profile_key].get(phase, {})
            row = [
                phase,
                profile_key,
                f"{components.get(Component.CRYPTO, 0.0):.3f}",
                f"{components.get(Component.QR_READ_WRITE, 0.0):.3f}",
                f"{components.get(Component.QR_SCAN, 0.0):.3f}",
                f"{components.get(Component.QR_PRINT, 0.0):.3f}",
                f"{sum(components.values()):.3f}",
            ]
            table.add_row(*row)
    table.print()

    # Shape assertions mirroring the paper's observations.
    for profile_key in HARDWARE_PROFILES:
        per_phase_totals = {
            phase: sum(results[profile_key].get(phase, {}).values()) for phase in PHASES
        }
        total = sum(per_phase_totals.values())
        assert total < 25.0, "voter-observable latency stays within booth time scales"
        assert max(per_phase_totals.values()) < 8.0, "no single phase exceeds the paper's ≈6.5 s envelope by far"

    # pytest-benchmark target: one full scripted registration on H1.
    setup = ElectionSetup.run(paper_curve, ["bench-voter"], num_authority_members=4)

    def one_registration():
        voter_id = f"bench-voter"
        return run_registration(setup, Voter(voter_id, num_fake_credentials=1), "H1")

    benchmark.pedantic(one_registration, rounds=1, iterations=1)
