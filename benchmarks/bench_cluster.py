"""Multi-node tally/verify scaling and the remoting-overhead gate.

Two workloads over the 2048-bit group (where exponentiation cost dominates
and remote dispatch can possibly pay for itself):

* **tally** — the full :class:`~repro.tally.pipeline.TallyPipeline` run,
  serial vs ``cluster:1`` vs ``cluster:N``;
* **verify** — the tally-verification :class:`~repro.audit.api.AuditPlan`,
  batched-serial vs check shards distributed across the same clusters.

CI runs this as a smoke test with two gates:

* correctness first: every cluster tally re-verifies and every distributed
  audit reports the same fingerprint as the serial reference;
* the ``cluster:1`` tally — identical compute, every shard making a round
  trip through pickle + loopback TCP to a single worker — stays within
  ``MAX_CLUSTER1_OVERHEAD``× of serial wall clock on this small workload.
  That bounds the price of remoting itself; ``cluster:N`` numbers are
  reported (and exported to ``BENCH_cluster.json``) but not gated, since
  a single shared CI core cannot demonstrate real multi-host speedup.

Worker enrollment (subprocess spawn, precompute warm-up) happens before
any timer starts — deployment cost is one-off, shard cost is forever.
"""

from __future__ import annotations

import os
import time

from repro.audit.api import BatchedVerifier, DistributedVerifier
from repro.audit.checks import tally_audit_plan
from repro.bench.harness import ResultTable, emit_bench_json, format_seconds, format_speedup
from repro.bench.workloads import tally_workload
from repro.crypto.modp_group import modp_group_2048
from repro.runtime.executor import executor_from_spec
from repro.tally.pipeline import TallyPipeline

NUM_VOTERS = 4
NUM_MEMBERS = 3
NUM_MIXERS = 2
PROOF_ROUNDS = 2
# Floor of 2 (unlike the test suite's floor of 1): the multi-worker row must
# be distinct from the gated cluster:1 row to mean anything.
CLUSTER_WORKERS = max(2, int(os.environ.get("REPRO_CLUSTER_WORKERS", "2")))

#: CI gate: cluster:1 tally wall clock may cost at most this multiple of serial.
MAX_CLUSTER1_OVERHEAD = 1.25


def _run_tally(group, authority, board, executor):
    pipeline = TallyPipeline(
        group,
        authority,
        num_mixers=NUM_MIXERS,
        proof_rounds=PROOF_ROUNDS,
        executor=executor,
    )
    return pipeline.run(board, 2, "default")


def test_cluster_overhead_within_bound():
    group = modp_group_2048()
    authority, board = tally_workload(group, NUM_VOTERS, num_authority_members=NUM_MEMBERS)

    tally_seconds, verify_seconds, fingerprints = {}, {}, {}
    result = None
    for label in ("serial", "cluster:1", f"cluster:{CLUSTER_WORKERS}"):
        executor = executor_from_spec(label) if label != "serial" else None
        try:
            if executor is not None:
                # Enrollment + warm-up stay outside the timed region; workers
                # precompute the hot fixed bases exactly like the parent.
                executor.set_warm(groups=[modp_group_2048], bases=[authority.public_key])
                executor.warm()
            started = time.perf_counter()
            outcome = _run_tally(group, authority, board, executor)
            tally_seconds[label] = time.perf_counter() - started

            plan = tally_audit_plan(group, authority, board, outcome, executor=executor)
            verifier = (
                BatchedVerifier()
                if executor is None
                else DistributedVerifier(shard_size=16, executor=executor)
            )
            started = time.perf_counter()
            report = verifier.run(plan)
            verify_seconds[label] = time.perf_counter() - started
        finally:
            if executor is not None:
                executor.close()
        assert report.ok, f"{label}: {report.summary()}"
        fingerprints[label] = report.fingerprint()
        if label == "serial":
            result = outcome
        else:
            assert outcome.counts == result.counts, f"{label} counts diverged"

    table = ResultTable(
        title=f"Multi-node tally, {NUM_VOTERS} voters, 2048-bit group",
        columns=["backend", "tally", "vs serial", "verify", "vs serial"],
    )
    for label in tally_seconds:
        table.add_row(
            label,
            format_seconds(tally_seconds[label]),
            format_speedup(tally_seconds["serial"], tally_seconds[label]),
            format_seconds(verify_seconds[label]),
            format_speedup(verify_seconds["serial"], verify_seconds[label]),
        )
    table.print()

    # Correctness before speed: one fingerprint across every placement.
    assert len(set(fingerprints.values())) == 1, fingerprints

    overhead = tally_seconds["cluster:1"] / tally_seconds["serial"]
    emit_bench_json(
        "cluster",
        {
            "num_voters": NUM_VOTERS,
            "cluster_workers": CLUSTER_WORKERS,
            "tally_seconds": tally_seconds,
            "verify_seconds": verify_seconds,
            "cluster1_overhead": overhead,
            "max_cluster1_overhead": MAX_CLUSTER1_OVERHEAD,
        },
    )
    assert overhead <= MAX_CLUSTER1_OVERHEAD, (
        f"cluster:1 tally costs {overhead:.2f}× serial "
        f"(gate: ≤ {MAX_CLUSTER1_OVERHEAD}×) — remoting overhead regressed"
    )
