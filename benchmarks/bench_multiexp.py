"""Multi-exponentiation kernels vs the naive per-term loop.

`Group.multi_exponentiate` backs every random-linear-combination fold in
:mod:`repro.runtime.batch`, so its advantage over one-native-``pow``-per-term
is the raw-speed floor under batched verification, mixing and the cluster
tally.  This bench measures that advantage on the 2048-bit large-modulus
group the paper's §7.3 cost model targets, across batch sizes spanning the
Straus/Pippenger planner's crossover region.

CI runs this as a smoke test with two gates:

* correctness: the multi-exp result equals the naive fold at every size;
* speed: at 64 terms and above, multi-exp is at least ``REQUIRED_SPEEDUP``×
  faster than the naive per-term loop.
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import ResultTable, emit_bench_json, format_seconds
from repro.crypto.modp_group import modp_group_2048
from repro.crypto.multiexp import plan_multi_exponentiation

#: Batch sizes; the gate applies from GATED_TERMS up.
BATCH_SIZES = (4, 16, 64, 128)
GATED_TERMS = 64
#: Required advantage of multi-exp over the naive loop at >= 64 terms (CI gate).
REQUIRED_SPEEDUP = 2.0


def test_multiexp_outpaces_naive_loop():
    group = modp_group_2048()
    rng = random.Random(0x5EED)
    bits = group.order.bit_length()

    table = ResultTable(
        title=f"Multi-exponentiation vs naive loop, {bits}-bit exponents, modp-2048",
        columns=["terms", "plan", "naive", "multi-exp", "speedup"],
    )
    sizes = {}
    for num_terms in BATCH_SIZES:
        bases = [group.power(rng.randrange(1, group.order)) for _ in range(num_terms)]
        scalars = [rng.randrange(1, group.order) for _ in range(num_terms)]

        start = time.perf_counter()
        naive = group.identity
        for base, scalar in zip(bases, scalars):
            naive = naive.operate(base.exponentiate(scalar))
        naive_seconds = time.perf_counter() - start

        start = time.perf_counter()
        combined = group.multi_exponentiate(bases, scalars)
        multiexp_seconds = time.perf_counter() - start

        assert combined == naive, f"multi-exp result diverged at {num_terms} terms"

        # Same cost constants the ModP backend feeds the planner, so the
        # reported plan is the one that actually ran.
        plan = plan_multi_exponentiation(
            num_terms, bits, exponentiate_cost=0.87 * bits, square_cost=0.8, invert_cost=25.0
        )
        speedup = naive_seconds / multiexp_seconds
        sizes[str(num_terms)] = {
            "algorithm": plan.algorithm,
            "window": plan.window,
            "naive_seconds": naive_seconds,
            "multiexp_seconds": multiexp_seconds,
            "speedup": speedup,
        }
        table.add_row(
            str(num_terms),
            f"{plan.algorithm}/w{plan.window}",
            format_seconds(naive_seconds),
            format_seconds(multiexp_seconds),
            f"{speedup:.2f}x",
        )
    table.print()

    emit_bench_json(
        "multiexp",
        {
            "group": group.name,
            "exponent_bits": bits,
            "gated_terms": GATED_TERMS,
            "required_speedup": REQUIRED_SPEEDUP,
            "sizes": sizes,
        },
    )

    for num_terms in BATCH_SIZES:
        if num_terms < GATED_TERMS:
            continue
        speedup = sizes[str(num_terms)]["speedup"]
        assert speedup >= REQUIRED_SPEEDUP, (
            f"multi-exp only {speedup:.2f}× faster than the naive loop at "
            f"{num_terms} terms (required ≥ {REQUIRED_SPEEDUP}×)"
        )
