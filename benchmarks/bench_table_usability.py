"""E8 — §7.5 usability-study table.

Regenerates the quantitative usability claims from the behaviour model
calibrated to the published study: the 83 % registration success rate, the
SUS score ≈70.4, the 47 % / 10 % malicious-kiosk detection rates, and the
derived probability that a malicious kiosk survives 50 (resp. 1000) voters
undetected (<1 %, ≈2⁻¹⁵²).
"""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import ResultTable
from repro.security.analysis import kiosk_undetected_probability
from repro.usability.study import UsabilityStudy

PAPER = {
    "participants": 150,
    "success_rate": 0.83,
    "sus": 70.4,
    "detection_educated": 0.47,
    "detection_uneducated": 0.10,
}


def test_usability_study_table(benchmark):
    results = benchmark.pedantic(
        lambda: UsabilityStudy(participants=150, seed=7).run(), rounds=1, iterations=1
    )

    table = ResultTable(
        title="§7.5 — usability study: simulated vs. published",
        columns=["metric", "simulated", "paper"],
    )
    table.add_row("participants", results.participants, PAPER["participants"])
    table.add_row("registration success rate", f"{results.success_rate:.2f}", f"{PAPER['success_rate']:.2f}")
    table.add_row("SUS score", f"{results.sus_mean:.1f}", f"{PAPER['sus']:.1f}")
    table.add_row(
        "kiosk detection (educated)", f"{results.detection_rate_educated:.2f}", f"{PAPER['detection_educated']:.2f}"
    )
    table.add_row(
        "kiosk detection (no education)",
        f"{results.detection_rate_uneducated:.2f}",
        f"{PAPER['detection_uneducated']:.2f}",
    )
    table.add_row(
        "P[kiosk undetected, 50 voters]",
        f"{kiosk_undetected_probability(PAPER['detection_uneducated'], 50):.4f}",
        "< 0.01",
    )
    table.add_row(
        "P[kiosk undetected, 1000 voters]",
        f"2^{math.log2(kiosk_undetected_probability(PAPER['detection_uneducated'], 1000)):.0f}",
        "≈ 2^-152",
    )
    table.print()

    assert results.success_rate == pytest.approx(PAPER["success_rate"], abs=0.08)
    assert results.sus_mean == pytest.approx(PAPER["sus"], abs=5)
    assert results.detection_rate_educated > results.detection_rate_uneducated
    assert kiosk_undetected_probability(PAPER["detection_uneducated"], 50) < 0.01
    assert math.log2(kiosk_undetected_probability(PAPER["detection_uneducated"], 1000)) == pytest.approx(
        -152, abs=1
    )
