"""Runtime scaling — serial vs thread vs process tally on the real pipeline.

Runs the genuine Votegral tally (mix cascades with shadow proofs, batch
signature checks, tag filtering, threshold decryption, universal
verification) over the 2048-bit "large modulus" group — the setting in which
§7.3 locates the per-exponentiation cost that dominates Civitas — and
reports wall-clock speedup across executor backends, worker counts, and
voter scales.  The ballots/registrations come from
:func:`repro.bench.workloads.tally_workload`, the same shape the Fig. 5b
tally-scaling figure measures.

Correctness is asserted unconditionally: every backend must produce the same
per-candidate counts and pass universal verification.  The speedup assertion
(``process:4`` beating serial) only fires when the machine actually exposes
four or more CPUs; on smaller runners the table is still printed so the
numbers land in CI logs.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.bench.harness import ResultTable, emit_bench_json, format_seconds, format_speedup, speedup_table
from repro.bench.workloads import tally_workload
from repro.crypto.modp_group import modp_group_2048
from repro.crypto.tagging import TaggingAuthority
from repro.runtime.executor import available_workers, executor_from_spec
from repro.tally.pipeline import TallyPipeline, verify_tally

WORKER_SWEEP_POPULATION = 8
SCALE_SWEEP_POPULATIONS = [4, 8]
BACKEND_SPECS = ["serial", "thread:2", "process:2", "process:4"]
NUM_MIXERS = 2
PROOF_ROUNDS = 2
NUM_OPTIONS = 2


def _timed_tally(group, authority, board, spec: str, tagging: TaggingAuthority):
    executor = executor_from_spec(spec)
    # Warm any worker pool so the measurement reflects steady state, not fork cost.
    executor.map(int, [0, 1])
    pipeline = TallyPipeline(
        group=group,
        authority=authority,
        num_mixers=NUM_MIXERS,
        proof_rounds=PROOF_ROUNDS,
        executor=executor,
        tagging=tagging,
    )
    start = time.perf_counter()
    result = pipeline.run(board, NUM_OPTIONS)
    elapsed = time.perf_counter() - start
    return result, elapsed, executor


def test_runtime_scaling(benchmark):
    group = modp_group_2048()
    authority, board = tally_workload(group, WORKER_SWEEP_POPULATION, num_options=NUM_OPTIONS)
    tagging = TaggingAuthority.create(group, authority.num_members)

    # ---------------------------------------------------------------- worker sweep
    timings: Dict[str, float] = {}
    counts = None
    executors = {}
    for spec in BACKEND_SPECS:
        result, elapsed, executor = _timed_tally(group, authority, board, spec, tagging)
        timings[spec] = elapsed
        executors[spec] = executor
        if counts is None:
            counts = result.counts
            serial_result = result
        assert result.counts == counts, f"{spec} changed the election outcome"
        assert sum(result.counts.values()) == WORKER_SWEEP_POPULATION

    speedup_table(
        f"Runtime scaling — tally backends ({WORKER_SWEEP_POPULATION} voters, modp-2048)",
        "serial",
        timings,
    ).print()

    # Universal verification still holds, batched+parallel and exact+serial.
    verify_start = time.perf_counter()
    assert verify_tally(group, authority, board, serial_result, executor=executors["process:4"])
    parallel_verify = time.perf_counter() - verify_start
    verify_start = time.perf_counter()
    assert verify_tally(group, authority, board, serial_result, batch=False)
    exact_verify = time.perf_counter() - verify_start
    print(
        f"verify_tally: batched+process {format_seconds(parallel_verify)}"
        f" vs exact serial {format_seconds(exact_verify)}"
        f" ({format_speedup(exact_verify, parallel_verify)})"
    )

    # ---------------------------------------------------------------- voter sweep
    scale_table = ResultTable(
        title="Runtime scaling — serial vs process:4 across voter scales",
        columns=["voters", "serial", "process:4", "speedup"],
    )
    for population in SCALE_SWEEP_POPULATIONS:
        if population == WORKER_SWEEP_POPULATION:
            serial_seconds, process_seconds = timings["serial"], timings["process:4"]
        else:
            small_authority, small_board = tally_workload(group, population, num_options=NUM_OPTIONS)
            small_tagging = TaggingAuthority.create(group, small_authority.num_members)
            small_serial, serial_seconds, ex1 = _timed_tally(group, small_authority, small_board, "serial", small_tagging)
            small_process, process_seconds, ex2 = _timed_tally(group, small_authority, small_board, "process:4", small_tagging)
            assert small_serial.counts == small_process.counts
            ex2.close()
        scale_table.add_row(
            f"{population:,}",
            format_seconds(serial_seconds),
            format_seconds(process_seconds),
            format_speedup(serial_seconds, process_seconds),
        )
    scale_table.print()

    emit_bench_json(
        "runtime_scaling",
        {
            "cpus": available_workers(),
            "population": WORKER_SWEEP_POPULATION,
            "num_mixers": NUM_MIXERS,
            "proof_rounds": PROOF_ROUNDS,
            "backend_seconds": timings,
            "verify_batched_process_seconds": parallel_verify,
            "verify_exact_serial_seconds": exact_verify,
        },
    )

    for executor in executors.values():
        executor.close()

    # The headline acceptance property — only assertable when the hardware
    # can actually run four workers in parallel.
    if available_workers() >= 4:
        assert timings["process:4"] < timings["serial"], (
            f"process:4 ({format_seconds(timings['process:4'])}) not faster than "
            f"serial ({format_seconds(timings['serial'])}) on a {available_workers()}-CPU machine"
        )
    else:
        print(
            f"[speedup assertion skipped: only {available_workers()} CPU(s) available; "
            "rerun on a >=4-core machine to enforce process:4 < serial]"
        )

    benchmark.pedantic(
        lambda: _timed_tally(group, authority, board, "serial", tagging), rounds=1, iterations=1
    )
