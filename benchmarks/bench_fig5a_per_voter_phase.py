"""E3/E6/E7 — Figure 5a: per-voter latency per phase across systems.

Reproduces the per-voter registration, voting and tally latencies for
Swiss Post, VoteAgain, TRIP-Core and Civitas as the voter population grows
(measured directly at small populations, extrapolated to 10⁶ like the paper
extrapolates Civitas).  The absolute milliseconds differ from the paper's Go
prototype (pure Python vs. native code), but the orders-of-magnitude
relations of §7.3/§7.4 are asserted:

* registration: VoteAgain < TRIP-Core < Swiss Post ≪ Civitas;
* voting: TRIP-Core cheapest, Civitas two orders of magnitude slower;
* voting latency is population-independent.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.baselines import ALL_SYSTEMS, PhaseName
from repro.bench.harness import ResultTable, format_seconds

POPULATIONS = [100, 1_000_000]
SAMPLE = 40
# Civitas runs over the 2048-bit group; a smaller sample keeps the bench quick
# without changing the fitted per-voter/per-pair constants meaningfully.
CIVITAS_SAMPLE = 12


def _system(name, cls, group):
    return cls(group) if name != "Civitas" else cls()


def test_fig5a_per_voter_latency(benchmark, ec_equivalent_group):
    per_voter: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name, cls in ALL_SYSTEMS.items():
        per_voter[name] = {}
        system = _system(name, cls, ec_equivalent_group)
        sample = CIVITAS_SAMPLE if name == "Civitas" else SAMPLE
        for phase in PhaseName:
            per_voter[name][phase.value] = {}
            for population in POPULATIONS:
                measurement = system.estimate_phase(phase, population, sample_voters=sample)
                per_voter[name][phase.value][population] = measurement.per_voter_seconds

    table = ResultTable(
        title="Fig. 5a — per-voter wall-clock latency by phase (measured@100, extrapolated@10^6)",
        columns=["system", "phase", "per-voter @100", "per-voter @10^6"],
    )
    for name in ALL_SYSTEMS:
        for phase in PhaseName:
            values = per_voter[name][phase.value]
            table.add_row(name, phase.value, format_seconds(values[100]), format_seconds(values[1_000_000]))
    table.print()

    registration = {name: per_voter[name]["Registration"][1_000_000] for name in ALL_SYSTEMS}
    voting = {name: per_voter[name]["Voting"][1_000_000] for name in ALL_SYSTEMS}

    # §7.3: registration ordering and magnitudes.
    assert registration["VoteAgain"] < registration["TRIP-Core"] < registration["SwissPost"]
    assert registration["Civitas"] > 50 * registration["TRIP-Core"]

    # §7.4: voting — TRIP cheapest, Civitas far slower, population-independent.
    assert voting["TRIP-Core"] == min(voting.values())
    assert voting["Civitas"] > 20 * voting["TRIP-Core"]
    for name in ALL_SYSTEMS:
        small = per_voter[name]["Voting"][100]
        large = per_voter[name]["Voting"][1_000_000]
        assert large == pytest.approx(small, rel=0.6)

    benchmark.pedantic(
        lambda: _system("TRIP-Core", ALL_SYSTEMS["TRIP-Core"], ec_equivalent_group).measure_phase(
            PhaseName.REGISTRATION, 20
        ),
        rounds=1,
        iterations=1,
    )
