"""Shared fixtures for the benchmark suite (pytest-benchmark).

Each benchmark module regenerates one table or figure of the paper's
evaluation (§7); the printed tables appear in the captured output (run with
``pytest benchmarks/ --benchmark-only -s`` to see them inline) and the
pytest-benchmark statistics cover the underlying operations.
"""

from __future__ import annotations

import pytest

from repro.crypto.ed25519 import ed25519_group
from repro.crypto.modp_group import modp_group_256, testing_group


@pytest.fixture(scope="session")
def paper_curve():
    """The paper's curve (edwards25519), used for the TRIP latency figures."""
    return ed25519_group()


@pytest.fixture(scope="session")
def ec_equivalent_group():
    """A 256-bit group standing in for elliptic curves in cross-system figures."""
    return modp_group_256()


@pytest.fixture(scope="session")
def fast_group():
    return testing_group()
