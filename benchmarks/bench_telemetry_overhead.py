"""The telemetry overhead gate: observability must be ~free when off.

Three configurations of the same serial tally over the 2048-bit group:

* **baseline** — the :mod:`repro.telemetry` entry points monkeypatched to
  pure no-ops.  Instrumented modules call ``telemetry.span(...)`` through a
  module attribute lookup precisely so this bench can measure what the code
  would cost with the instrumentation physically absent;
* **disabled** — telemetry as shipped with the default ``"off"`` spec (the
  fast path every production-shaped run takes): every entry point takes the
  early ``None`` return;
* **enabled** — a ``jsonl:`` sink recording every span and counter.

CI gates the ratios (min-of-``REPEATS`` wall clock, interleaved rounds so
machine drift hits all three configurations equally):

* disabled / baseline <= ``MAX_DISABLED_OVERHEAD`` (1.02x) — the no-op fast
  path must be indistinguishable from not having telemetry at all;
* enabled / baseline <= ``MAX_ENABLED_OVERHEAD`` (1.10x) — recording must
  never dominate the work it measures.

A small absolute slack (``ABS_SLACK_SECONDS``) absorbs scheduler jitter at
this deliberately small workload size: the gate is ``ratio`` or the slack,
whichever is larger.  Results land in ``BENCH_telemetry.json``; the enabled
run's trace and its rendered summary are exported next to it so CI uploads
a real trace artifact from every bench-smoke run.
"""

from __future__ import annotations

import contextlib
import os
import time
from pathlib import Path

from repro import telemetry
from repro.bench.harness import ResultTable, emit_bench_json, format_seconds
from repro.bench.workloads import tally_workload
from repro.crypto.modp_group import modp_group_2048
from repro.tally.pipeline import TallyPipeline
from repro.telemetry import TelemetrySnapshot

NUM_VOTERS = 4
NUM_MEMBERS = 3
NUM_MIXERS = 2
PROOF_ROUNDS = 2
REPEATS = 5

#: CI gates (see the module docstring).
MAX_DISABLED_OVERHEAD = 1.02
MAX_ENABLED_OVERHEAD = 1.10
ABS_SLACK_SECONDS = 0.010

#: The telemetry entry points the instrumented layers call; the baseline
#: replaces exactly these with no-ops.
_PATCHED = ("span", "counter", "gauge", "histogram", "enabled")


class _NoopSpan:
    """The cheapest possible stand-in for a :class:`SpanHandle`."""

    elapsed_seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def _noop_span(name, **attrs):  # noqa: ANN001, ANN003 - signature mirror
    return _NOOP_SPAN


def _noop(*args, **kwargs):  # noqa: ANN002, ANN003
    return None


def _noop_enabled() -> bool:
    return False


@contextlib.contextmanager
def _telemetry_absent():
    """Temporarily replace the telemetry entry points with no-ops."""
    saved = {name: getattr(telemetry, name) for name in _PATCHED}
    telemetry.span = _noop_span  # type: ignore[assignment]
    telemetry.counter = _noop  # type: ignore[assignment]
    telemetry.gauge = _noop  # type: ignore[assignment]
    telemetry.histogram = _noop  # type: ignore[assignment]
    telemetry.enabled = _noop_enabled  # type: ignore[assignment]
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(telemetry, name, value)


def _run_tally(group, authority, board) -> float:
    started = time.perf_counter()
    pipeline = TallyPipeline(
        group, authority, num_mixers=NUM_MIXERS, proof_rounds=PROOF_ROUNDS,
    )
    pipeline.run(board, 2, "default")
    return time.perf_counter() - started


def test_telemetry_overhead_within_bounds(tmp_path):
    group = modp_group_2048()
    authority, board = tally_workload(group, NUM_VOTERS, num_authority_members=NUM_MEMBERS)
    trace_path = tmp_path / "trace.jsonl"

    timings = {"baseline": [], "disabled": [], "enabled": []}
    try:
        # One untimed warm round so table/cache effects are paid up front.
        with _telemetry_absent():
            _run_tally(group, authority, board)
        for _ in range(REPEATS):
            with _telemetry_absent():
                timings["baseline"].append(_run_tally(group, authority, board))
            telemetry.configure("off")
            timings["disabled"].append(_run_tally(group, authority, board))
            telemetry.configure(f"jsonl:{trace_path}", propagate=False)
            timings["enabled"].append(_run_tally(group, authority, board))
            telemetry.configure("off")
    finally:
        telemetry.configure("off")
        os.environ.pop("REPRO_TELEMETRY", None)

    best = {label: min(values) for label, values in timings.items()}
    disabled_ratio = best["disabled"] / best["baseline"]
    enabled_ratio = best["enabled"] / best["baseline"]

    table = ResultTable(
        "Telemetry overhead (serial tally, 2048-bit group, "
        f"{NUM_VOTERS} voters, min of {REPEATS})",
        ["configuration", "wall clock", "vs baseline"],
    )
    for label in ("baseline", "disabled", "enabled"):
        table.add_row(label, format_seconds(best[label]), f"{best[label] / best['baseline']:.3f}x")
    table.print()

    snapshot = TelemetrySnapshot.from_jsonl(str(trace_path))
    assert "tally.mix" in snapshot.span_names(), "enabled run recorded no spans"

    emit_bench_json(
        "telemetry",
        {
            "workload": {
                "num_voters": NUM_VOTERS,
                "num_mixers": NUM_MIXERS,
                "proof_rounds": PROOF_ROUNDS,
                "group": "modp-2048",
                "repeats": REPEATS,
            },
            "seconds": {label: best[label] for label in best},
            "all_seconds": timings,
            "disabled_ratio": disabled_ratio,
            "enabled_ratio": enabled_ratio,
            "gates": {
                "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
                "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
                "abs_slack_seconds": ABS_SLACK_SECONDS,
            },
        },
    )

    # Export the enabled run's trace and rendered summary next to the JSON
    # results so the CI artifact contains a real, summarizable trace.
    bench_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
    if bench_dir:
        target = Path(bench_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "trace.jsonl").write_bytes(trace_path.read_bytes())
        (target / "trace_summary.txt").write_text(snapshot.summary(top=10) + "\n")

    disabled_bound = max(best["baseline"] * MAX_DISABLED_OVERHEAD,
                         best["baseline"] + ABS_SLACK_SECONDS)
    enabled_bound = max(best["baseline"] * MAX_ENABLED_OVERHEAD,
                        best["baseline"] + ABS_SLACK_SECONDS)
    assert best["disabled"] <= disabled_bound, (
        f"disabled telemetry costs {disabled_ratio:.3f}x baseline "
        f"(gate {MAX_DISABLED_OVERHEAD}x): the no-op fast path regressed"
    )
    assert best["enabled"] <= enabled_bound, (
        f"enabled telemetry costs {enabled_ratio:.3f}x baseline "
        f"(gate {MAX_ENABLED_OVERHEAD}x): recording overhead regressed"
    )
