"""The telemetry overhead gate: observability must be ~free when off.

Three configurations of the same serial tally over the 2048-bit group:

* **baseline** — the :mod:`repro.telemetry` entry points monkeypatched to
  pure no-ops.  Instrumented modules call ``telemetry.span(...)`` through a
  module attribute lookup precisely so this bench can measure what the code
  would cost with the instrumentation physically absent;
* **disabled** — telemetry as shipped with the default ``"off"`` spec (the
  fast path every production-shaped run takes): every entry point takes the
  early ``None`` return;
* **enabled** — a ``jsonl:`` sink recording every span and counter.

CI gates the ratios (min-of-``REPEATS`` wall clock, interleaved rounds so
machine drift hits all three configurations equally):

* disabled / baseline <= ``MAX_DISABLED_OVERHEAD`` (1.02x) — the no-op fast
  path must be indistinguishable from not having telemetry at all;
* enabled / baseline <= ``MAX_ENABLED_OVERHEAD`` (1.10x) — recording must
  never dominate the work it measures.

A small absolute slack (``ABS_SLACK_SECONDS``) absorbs scheduler jitter at
this deliberately small workload size: the gate is ``ratio`` or the slack,
whichever is larger.  Results land in ``BENCH_telemetry.json``; the enabled
run's trace and its rendered summary are exported next to it so CI uploads
a real trace artifact from every bench-smoke run.

A second leg measures tracing on the *gateway request path* against a live
loopback server — the worst case for context propagation, because a
``/healthz`` round trip does almost no other work to amortise it.  The gate
(same ``MAX_ENABLED_OVERHEAD``) sits on the **sampling-off** configuration:
with ``REPRO_TELEMETRY_SAMPLE=0`` every request still pays contextvars,
``traceparent`` parse/mint, and the latency histogram, but records no spans
— exactly the machinery that must stay effectively free so head sampling is
a real knob.  The fully-sampled configuration is measured and reported in
``BENCH_telemetry_gateway.json`` alongside it, so the bench trend guard
watches both.
"""

from __future__ import annotations

import contextlib
import http.client
import os
import time
from pathlib import Path

from repro import telemetry
from repro.bench.harness import ResultTable, emit_bench_json, format_seconds
from repro.bench.workloads import tally_workload
from repro.crypto.modp_group import modp_group_2048
from repro.gateway.service import ServiceConfig
from repro.tally.pipeline import TallyPipeline
from repro.telemetry import TelemetrySnapshot
from repro.telemetry.context import SAMPLE_ENV

NUM_VOTERS = 4
NUM_MEMBERS = 3
NUM_MIXERS = 2
PROOF_ROUNDS = 2
REPEATS = 5

#: The gateway leg: tiny requests, so tracing has nothing to hide behind.
GATEWAY_REQUESTS = 150
GATEWAY_REPEATS = 7
#: Socket ping-pong pays scheduler wakeups per round trip, so its jitter
#: floor is higher than the pure-compute tally legs'; the leg gets a wider
#: absolute slack to match (the ratio gate still binds on any machine where
#: the workload takes long enough for ratios to mean anything).
GATEWAY_ABS_SLACK_SECONDS = 0.020

#: CI gates (see the module docstring).
MAX_DISABLED_OVERHEAD = 1.02
MAX_ENABLED_OVERHEAD = 1.10
ABS_SLACK_SECONDS = 0.010

#: The telemetry entry points the instrumented layers call; the baseline
#: replaces exactly these with no-ops.
_PATCHED = ("span", "counter", "gauge", "histogram", "enabled")


class _NoopSpan:
    """The cheapest possible stand-in for a :class:`SpanHandle`."""

    elapsed_seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def _noop_span(name, **attrs):  # noqa: ANN001, ANN003 - signature mirror
    return _NOOP_SPAN


def _noop(*args, **kwargs):  # noqa: ANN002, ANN003
    return None


def _noop_enabled() -> bool:
    return False


@contextlib.contextmanager
def _telemetry_absent():
    """Temporarily replace the telemetry entry points with no-ops."""
    saved = {name: getattr(telemetry, name) for name in _PATCHED}
    telemetry.span = _noop_span  # type: ignore[assignment]
    telemetry.counter = _noop  # type: ignore[assignment]
    telemetry.gauge = _noop  # type: ignore[assignment]
    telemetry.histogram = _noop  # type: ignore[assignment]
    telemetry.enabled = _noop_enabled  # type: ignore[assignment]
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(telemetry, name, value)


def _run_tally(group, authority, board) -> float:
    started = time.perf_counter()
    pipeline = TallyPipeline(
        group, authority, num_mixers=NUM_MIXERS, proof_rounds=PROOF_ROUNDS,
    )
    pipeline.run(board, 2, "default")
    return time.perf_counter() - started


def test_telemetry_overhead_within_bounds(tmp_path):
    group = modp_group_2048()
    authority, board = tally_workload(group, NUM_VOTERS, num_authority_members=NUM_MEMBERS)
    trace_path = tmp_path / "trace.jsonl"

    timings = {"baseline": [], "disabled": [], "enabled": []}
    try:
        # One untimed warm round so table/cache effects are paid up front.
        with _telemetry_absent():
            _run_tally(group, authority, board)
        for _ in range(REPEATS):
            with _telemetry_absent():
                timings["baseline"].append(_run_tally(group, authority, board))
            telemetry.configure("off")
            timings["disabled"].append(_run_tally(group, authority, board))
            telemetry.configure(f"jsonl:{trace_path}", propagate=False)
            timings["enabled"].append(_run_tally(group, authority, board))
            telemetry.configure("off")
    finally:
        telemetry.configure("off")
        os.environ.pop("REPRO_TELEMETRY", None)

    best = {label: min(values) for label, values in timings.items()}
    disabled_ratio = best["disabled"] / best["baseline"]
    enabled_ratio = best["enabled"] / best["baseline"]

    table = ResultTable(
        "Telemetry overhead (serial tally, 2048-bit group, "
        f"{NUM_VOTERS} voters, min of {REPEATS})",
        ["configuration", "wall clock", "vs baseline"],
    )
    for label in ("baseline", "disabled", "enabled"):
        table.add_row(label, format_seconds(best[label]), f"{best[label] / best['baseline']:.3f}x")
    table.print()

    snapshot = TelemetrySnapshot.from_jsonl(str(trace_path))
    assert "tally.mix" in snapshot.span_names(), "enabled run recorded no spans"

    emit_bench_json(
        "telemetry",
        {
            "workload": {
                "num_voters": NUM_VOTERS,
                "num_mixers": NUM_MIXERS,
                "proof_rounds": PROOF_ROUNDS,
                "group": "modp-2048",
                "repeats": REPEATS,
            },
            "seconds": {label: best[label] for label in best},
            "all_seconds": timings,
            "disabled_ratio": disabled_ratio,
            "enabled_ratio": enabled_ratio,
            "gates": {
                "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
                "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
                "abs_slack_seconds": ABS_SLACK_SECONDS,
            },
        },
    )

    # Export the enabled run's trace and rendered summary next to the JSON
    # results so the CI artifact contains a real, summarizable trace.
    bench_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
    if bench_dir:
        target = Path(bench_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "trace.jsonl").write_bytes(trace_path.read_bytes())
        (target / "trace_summary.txt").write_text(snapshot.summary(top=10) + "\n")

    disabled_bound = max(best["baseline"] * MAX_DISABLED_OVERHEAD,
                         best["baseline"] + ABS_SLACK_SECONDS)
    enabled_bound = max(best["baseline"] * MAX_ENABLED_OVERHEAD,
                        best["baseline"] + ABS_SLACK_SECONDS)
    assert best["disabled"] <= disabled_bound, (
        f"disabled telemetry costs {disabled_ratio:.3f}x baseline "
        f"(gate {MAX_DISABLED_OVERHEAD}x): the no-op fast path regressed"
    )
    assert best["enabled"] <= enabled_bound, (
        f"enabled telemetry costs {enabled_ratio:.3f}x baseline "
        f"(gate {MAX_ENABLED_OVERHEAD}x): recording overhead regressed"
    )


#: A fixed upstream context: the bench measures the *server's* per-request
#: tracing work (parse, attach, span, histogram), so the caller is a raw
#: ``http.client`` connection sending a constant header — what an external
#: client on another machine looks like to the gateway.  The head-sampling
#: decision rides the flags byte: ``01`` records, ``00`` is the sampled-out
#: case where only contextvars + parsing remain on the request path.
_TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"
_SAMPLED_HEADER = f"00-{_TRACE_ID}-00f067aa0ba902b7-01"
_UNSAMPLED_HEADER = f"00-{_TRACE_ID}-00f067aa0ba902b7-00"


def _run_gateway_requests(
    connection: "http.client.HTTPConnection", count: int, traceparent: str
) -> float:
    headers = {"traceparent": traceparent}
    started = time.perf_counter()
    for _ in range(count):
        connection.request("GET", "/healthz", headers=headers)
        response = connection.getresponse()
        response.read()
    return time.perf_counter() - started


def test_traced_gateway_requests_within_bounds(tmp_path):
    """Tracing the request path: the sampling-off machinery stays ~free.

    ``/healthz`` is deliberately the cheapest route the gateway serves: the
    measured delta is almost purely the server's tracing machinery — the
    ``traceparent`` parse/attach, the ``gateway.request`` span, and the
    latency histogram with its exemplar.  The hard gate sits on the
    **unsampled** configuration (telemetry on, the caller's flags byte
    ``00``, ``REPRO_TELEMETRY_SAMPLE=0``): head sampling is only a usable
    production knob if what remains per request — contextvars plus
    traceparent parsing — costs effectively nothing.
    """
    from bench_gateway import _LiveGateway

    trace_path = tmp_path / "gateway_trace.jsonl"
    unsampled_path = tmp_path / "gateway_unsampled.jsonl"
    telemetry.configure("off")
    live = _LiveGateway(ServiceConfig())
    connection = http.client.HTTPConnection("127.0.0.1", live.server.port, timeout=60)
    timings = {"disabled": [], "unsampled": [], "traced": []}
    try:
        # Warm round: connection setup, route dispatch, code paths both ways.
        _run_gateway_requests(connection, GATEWAY_REQUESTS, _SAMPLED_HEADER)
        for _ in range(GATEWAY_REPEATS):
            telemetry.configure("off")
            timings["disabled"].append(
                _run_gateway_requests(connection, GATEWAY_REQUESTS, _SAMPLED_HEADER)
            )
            os.environ[SAMPLE_ENV] = "0"
            telemetry.configure(f"jsonl:{unsampled_path}", propagate=False)
            timings["unsampled"].append(
                _run_gateway_requests(connection, GATEWAY_REQUESTS, _UNSAMPLED_HEADER)
            )
            os.environ.pop(SAMPLE_ENV, None)
            telemetry.configure(f"jsonl:{trace_path}", propagate=False)
            timings["traced"].append(
                _run_gateway_requests(connection, GATEWAY_REQUESTS, _SAMPLED_HEADER)
            )
            telemetry.configure("off")
    finally:
        telemetry.configure("off")
        os.environ.pop(SAMPLE_ENV, None)
        os.environ.pop("REPRO_TELEMETRY", None)
        connection.close()
        live.close()

    best = {label: min(values) for label, values in timings.items()}
    unsampled_ratio = best["unsampled"] / best["disabled"]
    traced_ratio = best["traced"] / best["disabled"]

    table = ResultTable(
        f"Gateway tracing overhead ({GATEWAY_REQUESTS} /healthz round trips, "
        f"min of {GATEWAY_REPEATS})",
        ["configuration", "wall clock", "vs disabled"],
    )
    for label in ("disabled", "unsampled", "traced"):
        table.add_row(label, format_seconds(best[label]), f"{best[label] / best['disabled']:.3f}x")
    table.print()

    # The traced rounds really continued the caller's trace, and the
    # unsampled rounds really sampled: no spans, histograms still intact.
    snapshot = TelemetrySnapshot.from_jsonl(str(trace_path))
    server_spans = snapshot.spans_named("gateway.request")
    assert server_spans, "traced rounds recorded no request spans"
    assert {span["trace_id"] for span in server_spans} == {_TRACE_ID}
    unsampled = TelemetrySnapshot.from_jsonl(str(unsampled_path))
    assert unsampled.spans_named("gateway.request") == []
    assert unsampled.histogram_quantile("gateway.request.seconds", 0.5) is not None

    emit_bench_json(
        "telemetry_gateway",
        {
            "workload": {"requests": GATEWAY_REQUESTS, "repeats": GATEWAY_REPEATS},
            "seconds": {label: best[label] for label in best},
            "all_seconds": timings,
            "unsampled_ratio": unsampled_ratio,
            "traced_ratio": traced_ratio,
            "gates": {
                "max_unsampled_overhead": MAX_ENABLED_OVERHEAD,
                "abs_slack_seconds": GATEWAY_ABS_SLACK_SECONDS,
            },
        },
    )

    unsampled_bound = max(best["disabled"] * MAX_ENABLED_OVERHEAD,
                          best["disabled"] + GATEWAY_ABS_SLACK_SECONDS)
    assert best["unsampled"] <= unsampled_bound, (
        f"tracing-enabled (sampling off) gateway requests cost "
        f"{unsampled_ratio:.3f}x the disabled path (gate "
        f"{MAX_ENABLED_OVERHEAD}x): contextvars + traceparent parsing "
        "overhead regressed"
    )
