"""Gateway HTTP admission throughput: bulk casts vs. per-request appends.

The gateway exists so casting clients talk HTTP, not Python, and the micro-
batching admitter is what keeps that affordable: a bulk ``CastRequest`` rides
one HTTP round trip and lands as one ledger batch, while a naive client that
posts one ballot per request pays parsing, governor, and batch-window latency
on every single ballot.  This bench runs a real server on a loopback socket
and measures both paths end to end — client-observed request latency included
— plus a deliberately overloaded leg so the shed rate under burst is a
reported number, not a claim.

CI runs this as a smoke test: bulk admission must sustain at least 2× the
per-request cast throughput, and the overload leg must actually shed.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.bench.harness import ResultTable, emit_bench_json, format_seconds
from repro.gateway.client import CastingSession, GatewayClient, RateLimited
from repro.gateway.governor import GovernorConfig
from repro.gateway.routes import GatewayServer
from repro.gateway.service import GatewayService, ServiceConfig

NUM_BALLOTS = 192
BULK_SIZE = 32
#: Required advantage of bulk CastRequests over one-ballot-per-request (CI gate).
REQUIRED_SPEEDUP = 2.0
#: Overload leg: requests fired against a deliberately tiny client bucket.
OVERLOAD_ATTEMPTS = 48


class _LiveGateway:
    """A service + server on a background event loop, driven over real HTTP."""

    def __init__(self, config: ServiceConfig) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.service = GatewayService(config)
        self.server = GatewayServer(self.service)
        self._run(self.server.start())

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(120)

    def close(self) -> None:
        self._run(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))]


def _wires(client: GatewayClient, election_id: str, count: int):
    session = CastingSession(client, election_id)
    session.refresh()
    credential = session.register("voter-0000").credentials[0]
    return [session.make_ballot_wire(credential, index % 2) for index in range(count)]


def _timed_casts(client: GatewayClient, election_id: str, wires, chunk: int):
    """Cast ``wires`` in ``chunk``-sized requests; return (total, latencies)."""
    latencies = []
    start = time.perf_counter()
    for index in range(0, len(wires), chunk):
        request_start = time.perf_counter()
        client.cast_ballots(election_id, wires[index : index + chunk])
        latencies.append(time.perf_counter() - request_start)
    return time.perf_counter() - start, latencies


def test_bulk_admission_outpaces_per_request_casts():
    # Generous limits: this leg measures throughput, not the governor.
    config = ServiceConfig(
        governor=GovernorConfig(
            tenant_rate=1e9, tenant_burst=1e9, client_rate=1e9, client_burst=1e9,
            batch_size=BULK_SIZE,
        )
    )
    gateway = _LiveGateway(config)
    try:
        client = GatewayClient(port=gateway.server.port, client_id="bench")
        client.create_election("naive", 4, 2)
        client.create_election("bulk", 4, 2)
        naive_wires = _wires(client, "naive", NUM_BALLOTS)
        bulk_wires = _wires(client, "bulk", NUM_BALLOTS)

        naive_seconds, naive_latencies = _timed_casts(client, "naive", naive_wires, 1)
        bulk_seconds, bulk_latencies = _timed_casts(client, "bulk", bulk_wires, BULK_SIZE)

        client.close_election("naive")
        client.close_election("bulk")
        for election_id in ("naive", "bulk"):
            board = gateway.service.tenants[election_id].setup.board
            assert board.num_ballots == NUM_BALLOTS
            assert board.verify_all_chains()
        client.close()
    finally:
        gateway.close()

    naive_rate = NUM_BALLOTS / naive_seconds
    bulk_rate = NUM_BALLOTS / bulk_seconds
    speedup = bulk_rate / naive_rate

    table = ResultTable(
        title=f"Gateway HTTP admission, {NUM_BALLOTS} ballots (toy group, loopback)",
        columns=["path", "total", "req p50", "req p99", "casts/s"],
    )
    table.add_row(
        "naive, 1 ballot/request",
        format_seconds(naive_seconds),
        format_seconds(_percentile(naive_latencies, 0.50)),
        format_seconds(_percentile(naive_latencies, 0.99)),
        f"{naive_rate:,.0f}",
    )
    table.add_row(
        f"bulk, {BULK_SIZE} ballots/request",
        format_seconds(bulk_seconds),
        format_seconds(_percentile(bulk_latencies, 0.50)),
        format_seconds(_percentile(bulk_latencies, 0.99)),
        f"{bulk_rate:,.0f}",
    )
    table.print()

    shed_rate, retry_after = _overload_shed_rate()
    print(f"overload leg: shed rate {shed_rate:.0%}, first Retry-After {retry_after:.3f}s")

    emit_bench_json(
        "gateway",
        {
            "num_ballots": NUM_BALLOTS,
            "bulk_size": BULK_SIZE,
            "naive_seconds": naive_seconds,
            "bulk_seconds": bulk_seconds,
            "naive_casts_per_second": naive_rate,
            "bulk_casts_per_second": bulk_rate,
            "naive_request_p50_seconds": _percentile(naive_latencies, 0.50),
            "naive_request_p99_seconds": _percentile(naive_latencies, 0.99),
            "bulk_request_p50_seconds": _percentile(bulk_latencies, 0.50),
            "bulk_request_p99_seconds": _percentile(bulk_latencies, 0.99),
            "overload_shed_rate": shed_rate,
            "overload_retry_after_seconds": retry_after,
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"bulk admission only {speedup:.1f}× the per-request cast throughput "
        f"(required ≥ {REQUIRED_SPEEDUP}×)"
    )


def _overload_shed_rate():
    """Fire a burst at a tiny client bucket; return (shed rate, first Retry-After)."""
    config = ServiceConfig(
        governor=GovernorConfig(
            tenant_rate=1e9, tenant_burst=1e9, client_rate=25.0, client_burst=8.0,
            batch_size=8,
        )
    )
    gateway = _LiveGateway(config)
    try:
        client = GatewayClient(port=gateway.server.port, client_id="burst")
        client.create_election("overload", 4, 2)
        wires = _wires(client, "overload", 1)
        shed = 0
        retry_after = 0.0
        for _ in range(OVERLOAD_ATTEMPTS):
            try:
                client.cast_ballots("overload", wires)
            except RateLimited as error:
                shed += 1
                retry_after = retry_after or error.retry_after_seconds
        client.close()
    finally:
        gateway.close()
    assert shed > 0, "the overload leg never shed — the burst bucket is not biting"
    assert retry_after > 0.0
    return shed / OVERLOAD_ATTEMPTS, retry_after
