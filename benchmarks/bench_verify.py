"""Tally-verification strategy comparison: eager vs batched vs streaming.

The :mod:`repro.audit` batched strategy folds Schnorr signatures, shuffle
openings, tagging chains and decryption shares into random-linear-combination
products, trading full-width exponentiations for ``|w|``-bit ones.  That
trade only pays where exponent width dominates — i.e. at production group
sizes — so this bench runs the full tally-verification workload (cascade
openings + published tagging/decryption evidence) over the 2048-bit
large-modulus group the paper's cost model targets.

CI runs this as a smoke test with three gates:

* every strategy accepts the honest election, with bit-identical
  :class:`~repro.audit.api.AuditReport` outcomes (correctness before speed);
* the batched strategy verifies at least ``REQUIRED_SPEEDUP``× faster than
  the eager reference;
* the streaming strategy is not slower than eager (it runs the same folds,
  sharded).
"""

from __future__ import annotations

import time

from repro.audit.api import BatchedVerifier, EagerVerifier, StreamingVerifier
from repro.audit.checks import tally_audit_plan
from repro.bench.harness import ResultTable, emit_bench_json, format_seconds
from repro.bench.workloads import tally_workload
from repro.crypto.modp_group import modp_group_2048
from repro.tally.pipeline import TallyPipeline

NUM_VOTERS = 6
NUM_MEMBERS = 3
NUM_MIXERS = 2
PROOF_ROUNDS = 2
#: Required advantage of the batched strategy over eager (CI gate).
REQUIRED_SPEEDUP = 1.5


def test_batched_verification_outpaces_eager():
    group = modp_group_2048()
    authority, board = tally_workload(group, NUM_VOTERS, num_authority_members=NUM_MEMBERS)
    pipeline = TallyPipeline(
        group,
        authority,
        num_mixers=NUM_MIXERS,
        proof_rounds=PROOF_ROUNDS,
        collect_evidence=True,
    )
    result = pipeline.run(board, 2, "default")

    plan = tally_audit_plan(group, authority, board, result)
    timings = {}
    reports = {}
    for label, verifier in (
        ("eager", EagerVerifier()),
        ("batched", BatchedVerifier()),
        ("stream", StreamingVerifier()),
    ):
        start = time.perf_counter()
        reports[label] = verifier.run(plan)
        timings[label] = time.perf_counter() - start

    table = ResultTable(
        title=f"Tally verification, {NUM_VOTERS} voters, 2048-bit group ({len(plan)} checks)",
        columns=["strategy", "wall clock", "speedup vs eager"],
    )
    for label, seconds in timings.items():
        table.add_row(label, format_seconds(seconds), f"{timings['eager'] / seconds:.2f}x")
    table.print()

    # Correctness before speed: every strategy accepts, with identical outcomes.
    for label, report in reports.items():
        assert report.ok, f"{label} rejected an honest election: {report.summary()}"
    assert len({report.fingerprint() for report in reports.values()}) == 1

    batched_speedup = timings["eager"] / timings["batched"]
    stream_speedup = timings["eager"] / timings["stream"]
    emit_bench_json(
        "verify",
        {
            "num_voters": NUM_VOTERS,
            "num_checks": len(plan),
            "eager_seconds": timings["eager"],
            "batched_seconds": timings["batched"],
            "stream_seconds": timings["stream"],
            "batched_speedup": batched_speedup,
            "stream_speedup": stream_speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert batched_speedup >= REQUIRED_SPEEDUP, (
        f"batched verification only {batched_speedup:.2f}× faster than eager "
        f"(required ≥ {REQUIRED_SPEEDUP}×)"
    )
    assert stream_speedup >= 1.0, (
        f"streaming verification regressed below eager ({stream_speedup:.2f}×)"
    )
