"""Streaming vs serial mix cascade — the pipelining overlap benchmark.

The serial cascade is a chain of barriers: mixer *i+1* waits for mixer *i*
to finish its main output **and** all of its shadow shuffles.  The streaming
cascade (``repro.runtime.pipeline``) hands mixer *i*'s main output shards
downstream as they complete and computes the shadow proofs — ``rounds/(rounds
+ 1)`` of each mixer's work — concurrently with the next mixer.

This bench runs both schedules over the 2048-bit group (where per-item cost
dominates scheduling overhead) on a ≥3-mixer cascade, pinned to one seeded
randomness tape so the two cascades are **bit-identical** and the comparison
is purely about scheduling.  CI gates on it:

* always: the streamed schedule must not regress the serial wall clock
  (small tolerance for queue overhead on single-CPU runners);
* with ≥4 CPUs (the PR 1 gating convention): the streamed schedule must be
  strictly faster, because stage overlap then has real cores to land on.

Machine-readable results go to ``BENCH_mix_pipeline.json`` when
``REPRO_BENCH_JSON_DIR`` is set (uploaded as a CI artifact).
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager

from repro.bench.harness import emit_bench_json, format_seconds, speedup_table
from repro.crypto.elgamal import ElGamal
from repro.crypto.group import Group
from repro.crypto.modp_group import modp_group_2048
from repro.runtime.executor import ProcessExecutor, SerialExecutor, available_workers
from repro.runtime.pipeline import PipelineSpec
from repro.tally import mixnet
from repro.tally.mixnet import streaming_tuple_mix_cascade, tuple_mix_cascade, verify_tuple_cascade

NUM_ITEMS = 10
NUM_MIXERS = 3
PROOF_ROUNDS = 2
SHARD_SIZE = 2
QUEUE_DEPTH = 2
#: Queue/thread overhead allowance for runners without spare cores.
NO_REGRESSION_TOLERANCE = 1.05
#: Strict-speedup gate applies at this CPU count (same convention as PR 1).
MIN_CPUS_FOR_SPEEDUP = 4
#: Best-of-N timing: enough repeats that the strict CI gate measures the
#: schedule, not shared-runner noise.
REPEATS = 3


@contextmanager
def _seeded_tape(seed: int):
    """Pin the output-shaping randomness so both schedules mix identically."""
    rng = random.Random(seed)
    original_scalar = Group.random_scalar
    original_permutation = mixnet.random_permutation
    Group.random_scalar = lambda self: rng.randrange(1, self.order)
    mixnet.random_permutation = lambda n: rng.sample(range(n), n)
    try:
        yield
    finally:
        Group.random_scalar = original_scalar
        mixnet.random_permutation = original_permutation


def _inputs(group, elgamal, public_key):
    return [
        (
            elgamal.encrypt(public_key, group.power(index + 1)),
            elgamal.encrypt(public_key, group.power(index + 2)),
        )
        for index in range(NUM_ITEMS)
    ]


def _best_of(repeats, fn):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_streaming_cascade_overlap(benchmark):
    group = modp_group_2048()
    elgamal = ElGamal(group)
    secret = group.random_scalar()
    public_key = group.power(secret)
    inputs = _inputs(group, elgamal, public_key)

    cpus = available_workers()
    executor = ProcessExecutor(num_workers=MIN_CPUS_FOR_SPEEDUP) if cpus >= MIN_CPUS_FOR_SPEEDUP else SerialExecutor()
    executor.warm()
    spec = PipelineSpec(streaming=True, shard_size=SHARD_SIZE, queue_depth=QUEUE_DEPTH)

    def serial_run():
        with _seeded_tape(0xCA5CADE):
            return tuple_mix_cascade(
                elgamal, public_key, inputs, NUM_MIXERS, PROOF_ROUNDS, executor=executor
            )

    def streamed_run():
        with _seeded_tape(0xCA5CADE):
            return streaming_tuple_mix_cascade(
                elgamal, public_key, inputs, NUM_MIXERS, PROOF_ROUNDS, executor=executor, pipeline=spec
            )

    serial_seconds, serial_cascade = _best_of(REPEATS, serial_run)
    streamed_seconds, streamed_cascade = _best_of(REPEATS, streamed_run)

    # Same tape -> the streamed transcript is bit-identical, proofs included.
    assert streamed_cascade == serial_cascade
    assert verify_tuple_cascade(elgamal, public_key, inputs, streamed_cascade, executor=executor)

    timings = {"serial-schedule": serial_seconds, "streamed-schedule": streamed_seconds}
    speedup_table(
        f"Mix cascade scheduling — {NUM_MIXERS} mixers, {PROOF_ROUNDS} shadow rounds, "
        f"{NUM_ITEMS} ballots, modp-2048, executor={executor.name}",
        "serial-schedule",
        timings,
    ).print()
    print(
        f"cpus={cpus} shard={SHARD_SIZE} depth={QUEUE_DEPTH} "
        f"serial={format_seconds(serial_seconds)} streamed={format_seconds(streamed_seconds)}"
    )
    emit_bench_json(
        "mix_pipeline",
        {
            "cpus": cpus,
            "executor": executor.name,
            "num_items": NUM_ITEMS,
            "num_mixers": NUM_MIXERS,
            "proof_rounds": PROOF_ROUNDS,
            "shard_size": SHARD_SIZE,
            "queue_depth": QUEUE_DEPTH,
            "serial_seconds": serial_seconds,
            "streamed_seconds": streamed_seconds,
            "speedup": serial_seconds / streamed_seconds if streamed_seconds else None,
            "bit_identical": True,
        },
    )

    # No-regression gate: pipelining must never cost wall clock (beyond queue
    # noise on starved runners) ...
    assert streamed_seconds <= serial_seconds * NO_REGRESSION_TOLERANCE, (
        f"streamed {streamed_seconds:.3f}s vs serial {serial_seconds:.3f}s"
    )
    # ... and with real cores available, overlap must win outright.
    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert streamed_seconds < serial_seconds, (
            f"expected strict speedup on {cpus} CPUs: "
            f"streamed {streamed_seconds:.3f}s vs serial {serial_seconds:.3f}s"
        )

    executor.close()
