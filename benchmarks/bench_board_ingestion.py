"""Ballot-ingestion throughput across ledger backends.

The write-behind :class:`~repro.ledger.backends.batched.BatchedBoard` exists
so casting clients are never blocked on payload hashing and chain extension:
an append is a lock-protected buffer push, and batches are chained + flushed
behind the ingestion path.  This bench measures the quantity that matters to
a casting client — per-ballot append latency — against the unbatched
thread-safe memory board at 10k ballots, and reports the flush/total numbers
alongside so the amortized cost stays visible.

CI runs this as a smoke test: the batched front-end must sustain at least
2× the unbatched per-ballot append throughput, and a flushed batched board
must be bit-for-bit identical to the unbatched one.
"""

from __future__ import annotations

import time

from repro.bench.harness import ResultTable, emit_bench_json, format_seconds
from repro.crypto.hashing import sha256
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.ledger import BallotRecord, BatchedBoard, BulletinBoard, MemoryBackend

NUM_BALLOTS = 10_000
#: Required advantage of batched ingestion over per-record chaining (CI gate).
REQUIRED_SPEEDUP = 2.0


def _records(group, count):
    keypair = schnorr_keygen(group)
    signature = schnorr_sign(keypair, sha256(b"bench-ballot"))
    # Distinct credential keys, shared signature object: board appends never
    # verify signatures, and constructing 10k real proofs would swamp the
    # ledger cost this bench isolates.
    return [
        BallotRecord(
            credential_public_key=group.power(index + 1),
            ciphertext_c1=group.power(index + 2),
            ciphertext_c2=group.power(index + 3),
            signature=signature,
        )
        for index in range(count)
    ]


def _time_appends(board, records):
    start = time.perf_counter()
    for record in records:
        board.post_ballot(record)
    return time.perf_counter() - start


def test_batched_ingestion_outpaces_unbatched(fast_group):
    records = _records(fast_group, NUM_BALLOTS)

    unbatched = BulletinBoard(MemoryBackend())
    unbatched_seconds = _time_appends(unbatched, records)

    batched_backend = BatchedBoard(MemoryBackend(), batch_size=NUM_BALLOTS + 1)
    batched = BulletinBoard(batched_backend)
    append_seconds = _time_appends(batched, records)
    flush_start = time.perf_counter()
    batched.flush()
    flush_seconds = time.perf_counter() - flush_start

    # A mid-sized batch config for the end-to-end (append + in-loop flush) view.
    sized = BulletinBoard(BatchedBoard(MemoryBackend(), batch_size=1024))
    sized_seconds = _time_appends(sized, records)
    sized.flush()

    unbatched_rate = NUM_BALLOTS / unbatched_seconds
    batched_rate = NUM_BALLOTS / append_seconds
    table = ResultTable(
        title=f"Ballot ingestion, {NUM_BALLOTS} ballots (toy group)",
        columns=["path", "total", "per ballot", "ballots/s"],
    )
    table.add_row(
        "memory, per-record chaining",
        format_seconds(unbatched_seconds),
        format_seconds(unbatched_seconds / NUM_BALLOTS),
        f"{unbatched_rate:,.0f}",
    )
    table.add_row(
        "batched append path (write-behind)",
        format_seconds(append_seconds),
        format_seconds(append_seconds / NUM_BALLOTS),
        f"{batched_rate:,.0f}",
    )
    table.add_row(
        "batched flush (amortized chaining)",
        format_seconds(flush_seconds),
        format_seconds(flush_seconds / NUM_BALLOTS),
        "—",
    )
    table.add_row(
        "batched end-to-end (batch=1024)",
        format_seconds(sized_seconds),
        format_seconds(sized_seconds / NUM_BALLOTS),
        f"{NUM_BALLOTS / sized_seconds:,.0f}",
    )
    table.print()

    # Correctness before speed: flushing must reproduce the unbatched board
    # bit-for-bit, and every chain must verify.
    assert batched.ballot_log.head() == unbatched.ballot_log.head()
    assert sized.ballot_log.head() == unbatched.ballot_log.head()
    assert batched.verify_all_chains() and unbatched.verify_all_chains()

    speedup = batched_rate / unbatched_rate
    emit_bench_json(
        "board_ingestion",
        {
            "num_ballots": NUM_BALLOTS,
            "unbatched_seconds": unbatched_seconds,
            "batched_append_seconds": append_seconds,
            "batched_flush_seconds": flush_seconds,
            "sized_end_to_end_seconds": sized_seconds,
            "unbatched_ballots_per_second": unbatched_rate,
            "batched_ballots_per_second": batched_rate,
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched ingestion only {speedup:.1f}× the unbatched append throughput "
        f"(required ≥ {REQUIRED_SPEEDUP}×)"
    )
