#!/usr/bin/env python3
"""Bench trend guard: diff fresh ``BENCH_*.json`` against checked-in baselines.

Every bench in this suite emits a machine-readable ``BENCH_<name>.json``
(see :func:`repro.bench.harness.emit_bench_json`).  The benches gate their
own hard floors — "batched must beat eager by 2x" — but a run that merely
*drifts* (2.4x last month, 2.1x today) passes every hard gate while the
trend quietly erodes.  This tool is the drift alarm: it compares the gated
metrics of a fresh run against snapshots committed under
``benchmarks/baselines/`` and

* **warns** when a metric regresses by more than ``WARN_FRACTION`` (15%),
* **fails** (exit 1) past ``FAIL_FRACTION`` (30%), or when a gated metric
  or its result file is missing outright.

Only machine-independent *ratios* are gated (telemetry overhead ratios,
gateway batching speedup, cluster-of-one overhead): absolute wall-clock
differs per runner and would flake, but a ratio of two timings taken on the
same machine in the same process is comparable across machines.  Noisy
ratios may carry per-metric ``warn``/``fail`` overrides in their baseline
entry — looser bands are a property of the *metric*, recorded next to its
value, not a global knob.

Baselines are ordinary JSON snapshots::

    {"bench": "gateway", "metrics": {"speedup": {"value": 10.0, "better": "higher"}}}

To update after an intentional change, re-run the bench and copy the new
value in (the committed diff *is* the review trail).

Usage::

    python benchmarks/compare_bench.py [--results DIR] [--baselines DIR]

``--results`` defaults to ``$REPRO_BENCH_JSON_DIR`` (the directory the CI
bench-smoke job points every bench at), then ``./bench-results``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

WARN_FRACTION = 0.15
FAIL_FRACTION = 0.30

_OK, _WARN, _FAIL = "ok", "WARN", "FAIL"


def load_metric(payload: Dict[str, Any], dotted: str) -> Optional[float]:
    """Resolve a dotted path into a bench payload; ``None`` if absent."""
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def regression(current: float, baseline: float, better: str) -> float:
    """Fractional regression vs baseline; positive means *worse*.

    ``better="lower"`` (overhead ratios): worse is growing.
    ``better="higher"`` (speedups): worse is shrinking.
    """
    if baseline == 0:
        return 0.0
    if better == "higher":
        return (baseline - current) / baseline
    return (current - baseline) / baseline


def compare(results_dir: Path, baselines_dir: Path) -> int:
    rows: List[List[str]] = []
    failures = 0
    warnings = 0

    baseline_files = sorted(baselines_dir.glob("*.json"))
    if not baseline_files:
        print(f"no baselines found under {baselines_dir}", file=sys.stderr)
        return 1

    for baseline_file in baseline_files:
        spec = json.loads(baseline_file.read_text())
        bench = spec["bench"]
        result_path = results_dir / f"BENCH_{bench}.json"
        payload: Dict[str, Any] = {}
        if result_path.exists():
            payload = json.loads(result_path.read_text())
        for name, entry in spec["metrics"].items():
            baseline_value = float(entry["value"])
            better = entry.get("better", "lower")
            warn_at = float(entry.get("warn", WARN_FRACTION))
            fail_at = float(entry.get("fail", FAIL_FRACTION))
            current = load_metric(payload, name) if payload else None
            if current is None:
                reason = "no result file" if not payload else "metric missing"
                rows.append([bench, name, f"{baseline_value:g}", "-", reason, _FAIL])
                failures += 1
                continue
            drift = regression(current, baseline_value, better)
            if drift > fail_at:
                status, detail = _FAIL, f"{drift:+.1%} > {fail_at:.0%}"
                failures += 1
            elif drift > warn_at:
                status, detail = _WARN, f"{drift:+.1%} > {warn_at:.0%}"
                warnings += 1
            else:
                status, detail = _OK, f"{drift:+.1%}"
            rows.append([bench, name, f"{baseline_value:g}", f"{current:g}", detail, status])

    headers = ["bench", "metric", "baseline", "current", "drift", "status"]
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows)) for i in range(len(headers))]
    title = f"Bench trend vs baselines ({baselines_dir})"
    print(title)
    print("=" * len(title))
    print("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    print("  ".join("-" * width for width in widths))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print()
    verdict = f"{len(rows)} gated metric(s): {failures} fail, {warnings} warn"
    print(verdict)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        default=os.environ.get("REPRO_BENCH_JSON_DIR", "bench-results"),
        help="directory holding fresh BENCH_*.json (default: $REPRO_BENCH_JSON_DIR)",
    )
    parser.add_argument(
        "--baselines",
        default=str(Path(__file__).resolve().parent / "baselines"),
        help="directory of committed baseline snapshots",
    )
    args = parser.parse_args(argv)
    return compare(Path(args.results), Path(args.baselines))


if __name__ == "__main__":
    sys.exit(main())
