#!/usr/bin/env python3
"""Quickstart: one voter goes through TRIP and votes in a Votegral election.

Walks through the paper's workflow at the smallest possible scale:

1. election setup (authority DKG, registrar keys, envelope printing, ledger);
2. in-person registration — check-in, real credential (sound Σ-protocol
   order), one fake credential (simulator order), check-out;
3. activation of both credentials on the voter's device;
4. casting a real vote (and a decoy with the fake credential);
5. verifiable tally: only the real vote is counted.

Run with:  python examples/quickstart.py
"""

from repro.crypto.modp_group import testing_group
from repro.registration import ElectionSetup, Voter, run_registration
from repro.tally.pipeline import TallyPipeline, verify_tally
from repro.voting.client import VotingClient


def main() -> None:
    group = testing_group()

    # --- Setup -------------------------------------------------------------
    setup = ElectionSetup.run(group, voter_ids=["alice", "bob"], num_authority_members=4)
    print(f"setup: {len(setup.board.eligible_voters)} eligible voters, "
          f"{len(setup.envelope_supply)} envelopes printed")

    # --- Registration (TRIP) ------------------------------------------------
    alice = Voter("alice", num_fake_credentials=1)
    outcome = run_registration(setup, alice, profile_key="H1")
    print(f"registration: {len(alice.credentials)} paper credentials, "
          f"real-order observed sound = {alice.real_credential().observed_sound_order}, "
          f"voter-observable latency ≈ {outcome.total_wall_seconds:.1f}s (simulated)")

    # The second voter keeps the election from being a trivial unanimous tally.
    bob_outcome = run_registration(setup, Voter("bob", num_fake_credentials=1))

    # --- Activation & voting -------------------------------------------------
    def client_for(registration_outcome):
        client = VotingClient(
            group=group,
            board=setup.board,
            authority_public_key=setup.authority_public_key,
        )
        for report in registration_outcome.activation_reports:
            client.add_credential(report.credential)
        return client

    alice_client = client_for(outcome)
    bob_client = client_for(bob_outcome)

    alice_client.cast_fake(0, num_options=2)   # decoy, e.g. under a coercer's eye
    alice_client.cast_real(1, num_options=2)   # the vote that counts
    bob_client.cast_real(0, num_options=2)
    print(f"voting: {setup.board.num_ballots} ballots on the ledger "
          f"(real and fake are indistinguishable)")

    # --- Tally ---------------------------------------------------------------
    pipeline = TallyPipeline(group, setup.authority, num_mixers=4, proof_rounds=8)
    result = pipeline.run(setup.board, num_options=2)
    verified = verify_tally(group, setup.authority, setup.board, result)
    print(f"tally: counts = {result.counts}, counted = {result.num_counted}, "
          f"discarded fakes = {result.num_discarded}, universally verified = {verified}")


if __name__ == "__main__":
    main()
