#!/usr/bin/env python3
"""Coercion scenario: an abusive coercer demands Alice's credentials and vote.

This example plays out §4/§5.2 of the paper concretely:

* before registration, the coercer demands that Alice create one fake
  credential and hand over "all" her credentials afterwards;
* Alice quietly creates one *extra* fake credential, hands the coercer only
  fakes, and keeps her real credential hidden;
* under the coercer's supervision she casts the demanded vote with a fake
  credential; later, in private, she casts her true vote with the real one;
* the tally counts only the real vote, and everything the coercer can see —
  the surrendered credentials, the ledger aggregates and the final counts —
  is consistent with both "she complied" and "she evaded", so the coercer
  cannot tell.

Run with:  python examples/coerced_voter.py
"""

from repro.crypto.modp_group import testing_group
from repro.registration import ElectionSetup, Voter, run_registration
from repro.security.adversary import Coercer, CoercionDemand
from repro.tally.pipeline import TallyPipeline
from repro.voting.client import VotingClient

NUM_OPTIONS = 2
COERCER_CHOICE = 0
ALICE_TRUE_CHOICE = 1


def main() -> None:
    group = testing_group()
    setup = ElectionSetup.run(group, ["alice", "bob", "carol", "dave"], num_authority_members=4)

    # The coercer's demand arrives before registration.
    coercer = Coercer(CoercionDemand(demanded_fake_credentials=1, demanded_vote=COERCER_CHOICE))
    demanded_total = coercer.demand.demanded_total_credentials
    print(f"coercer demands {demanded_total} credentials and a vote for option {COERCER_CHOICE}")

    # Alice creates one more fake than demanded so she can keep the real one.
    alice = Voter("alice", num_fake_credentials=demanded_total)
    outcome = run_registration(setup, alice)
    surrendered = coercer.collect_credentials(alice)
    print(f"alice hands over {len(surrendered)} credentials — every one is fake, "
          f"but each claims to be real and verifies on paper")

    # Build Alice's voting client from her activated credentials.
    alice_client = VotingClient(group=group, board=setup.board,
                                authority_public_key=setup.authority_public_key)
    for report in outcome.activation_reports:
        alice_client.add_credential(report.credential)

    # Supervised decoy vote, then the secret real vote.
    coercer.supervise_vote(alice_client, NUM_OPTIONS)
    alice_client.cast_real(ALICE_TRUE_CHOICE, NUM_OPTIONS)

    # Other honest voters provide statistical cover.
    for voter_id, choice in (("bob", 0), ("carol", 1), ("dave", 1)):
        other = run_registration(setup, Voter(voter_id, num_fake_credentials=1))
        client = VotingClient(group=group, board=setup.board,
                              authority_public_key=setup.authority_public_key)
        for report in other.activation_reports:
            client.add_credential(report.credential)
        client.cast_real(choice, NUM_OPTIONS)

    result = TallyPipeline(group, setup.authority, num_mixers=2, proof_rounds=4).run(
        setup.board, num_options=NUM_OPTIONS
    )

    print(f"tally: {result.counts} — alice's true vote for option {ALICE_TRUE_CHOICE} counted, "
          f"{result.num_discarded} fake ballot(s) discarded")
    print(f"coercer's ledger view (aggregates only): {coercer.ledger_view(setup.board)}")
    print("nothing in that view distinguishes compliance from evasion — coercion resistance holds")


if __name__ == "__main__":
    main()
