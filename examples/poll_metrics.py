#!/usr/bin/env python3
"""A terminal election-night dashboard over the gateway's ``/metrics`` endpoint.

The ROADMAP note about a live metrics dashboard reduces to "polling plus
rendering" once the gateway serves
``repro.telemetry.snapshot().to_prometheus()``; this example is that consumer.
It polls ``GET /metrics``, parses the Prometheus text exposition with nothing
but string splits, and renders stat tiles — cast totals with a per-second
rate, admission queue depth and high-water mark, shed counts — the same way a
browser dashboard would, just without the browser.

Point it at a running gateway::

    python -m repro.gateway --election demo:16:2 &
    python examples/poll_metrics.py --port <port>

or run it with no arguments and it starts a loopback demo gateway with a
background caster so the numbers move on their own.
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Dict, List, Optional, Tuple


def parse_exposition(text: str) -> Dict[str, float]:
    """Sum Prometheus sample lines by metric name (labels folded together)."""
    totals: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_and_labels, _, value = line.rpartition(" ")
        name = name_and_labels.split("{", 1)[0]
        try:
            totals[name] = totals.get(name, 0.0) + float(value)
        except ValueError:
            continue
    return totals


def parse_buckets(text: str, metric: str) -> List[Tuple[float, float]]:
    """Cumulative ``(le, count)`` pairs for one histogram, label sets merged.

    Merging by ``le`` across label sets is sound because the telemetry layer
    records every series into the same fixed global bucket bounds.
    """
    merged: Dict[float, float] = {}
    prefix = metric + "_bucket{"
    for line in text.splitlines():
        if not line.startswith(prefix) or 'le="' not in line:
            continue
        labels, _, value = line.rpartition(" ")
        le_text = labels.split('le="', 1)[1].split('"', 1)[0]
        try:
            le = float("inf") if le_text == "+Inf" else float(le_text)
            merged[le] = merged.get(le, 0.0) + float(value)
        except ValueError:
            continue
    return sorted(merged.items())


def bucket_quantile(buckets: List[Tuple[float, float]], quantile: float) -> Optional[float]:
    """Linear-interpolated quantile from cumulative ``(le, count)`` pairs."""
    if not buckets or buckets[-1][1] <= 0:
        return None
    target = quantile * buckets[-1][1]
    previous_le, previous_count = 0.0, 0.0
    for le, count in buckets:
        if count >= target:
            if le == float("inf"):
                return previous_le  # overflow bucket: report its lower bound
            span = count - previous_count
            fraction = (target - previous_count) / span if span else 1.0
            return previous_le + (le - previous_le) * fraction
        previous_le, previous_count = le, count
    return previous_le


def _format_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.2f}s"


def render_tiles(
    text: str,
    totals: Dict[str, float],
    previous: Optional[Dict[str, float]],
    elapsed: float,
) -> str:
    """One dashboard line: counters as totals + rates, gauges as levels."""

    def tile(name: str, label: str) -> str:
        value = totals.get(name, 0.0)
        if previous is not None and elapsed > 0:
            rate = (value - previous.get(name, 0.0)) / elapsed
            return f"{label} {value:,.0f} ({rate:+,.0f}/s)"
        return f"{label} {value:,.0f}"

    queue = totals.get("repro_gateway_queue_depth", 0.0)
    queue_high = totals.get("repro_gateway_queue_depth_max", 0.0)
    buckets = parse_buckets(text, "repro_gateway_request_seconds")
    p50 = _format_latency(bucket_quantile(buckets, 0.50))
    p99 = _format_latency(bucket_quantile(buckets, 0.99))
    # Audit progress: reports fingerprinted at tally/audit time plus the
    # individual checks the verifier strategies counted along the way.
    audits = totals.get("repro_audit_reports_total", 0.0)
    checks = totals.get("repro_audit_checks_total", 0.0)
    return " | ".join(
        [
            tile("repro_gateway_casts_total", "casts"),
            tile("repro_gateway_shed_total", "shed"),
            tile("repro_gateway_ws_events_total", "ws events"),
            f"queue {queue:,.0f} (high {queue_high:,.0f})",
            f"req p50 {p50} p99 {p99}",
            f"audits {audits:,.0f} ({checks:,.0f} checks)",
        ]
    )


def poll_loop(fetch, interval: float, iterations: int) -> None:
    previous: Optional[Dict[str, float]] = None
    previous_at = time.monotonic()
    for index in range(iterations):
        text = fetch()
        totals = parse_exposition(text)
        now = time.monotonic()
        print(f"[poll {index + 1}/{iterations}] {render_tiles(text, totals, previous, now - previous_at)}")
        previous, previous_at = totals, now
        if index + 1 < iterations:
            time.sleep(interval)


def _demo_gateway() -> Tuple[object, "threading.Event"]:
    """A loopback gateway plus a caster thread that keeps metrics moving."""
    import asyncio

    import repro.telemetry as telemetry
    from repro.gateway.client import CastingSession, GatewayClient
    from repro.gateway.routes import GatewayServer
    from repro.gateway.service import GatewayService, ServiceConfig

    telemetry.configure("mem")
    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()
    server = GatewayServer(GatewayService(ServiceConfig()))
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(60)

    stop = threading.Event()

    def caster() -> None:
        client = GatewayClient(port=server.port, client_id="demo-caster")
        client.create_election("demo", 8, 2)
        session = CastingSession(client, "demo")
        session.refresh()
        credential = session.register("voter-0000").credentials[0]
        choice = 0
        while not stop.is_set():
            session.cast([(credential, choice)])
            choice = 1 - choice
            stop.wait(0.05)
        client.close()

    threading.Thread(target=caster, daemon=True).start()
    return server, stop


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="gateway port (0: start a demo)")
    parser.add_argument("--interval", type=float, default=1.0, help="seconds between polls")
    parser.add_argument("--iterations", type=int, default=5, help="polls before exiting")
    args = parser.parse_args()

    from repro.gateway.client import GatewayClient

    demo_stop: Optional[threading.Event] = None
    host, port = args.host, args.port
    if port == 0:
        server, demo_stop = _demo_gateway()
        host, port = "127.0.0.1", server.port  # type: ignore[attr-defined]
        print(f"started demo gateway on {host}:{port}")

    client = GatewayClient(host=host, port=port, client_id="dashboard")
    try:
        poll_loop(client.metrics, args.interval, args.iterations)
    finally:
        client.close()
        if demo_stop is not None:
            demo_stop.set()


if __name__ == "__main__":
    main()
