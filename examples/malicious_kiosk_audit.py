#!/usr/bin/env python3
"""Integrity-adversary audit: a compromised kiosk tries to steal real votes.

Demonstrates the attack and the defence analysed in §5.1 and measured in §7.5:

* a **wrong-order kiosk** issues a "real" credential via the fake-credential
  procedure (envelope first, simulated proof), keeping for itself the key
  that will actually be counted;
* the forged credential passes every device-side activation check — the only
  defence is the voter noticing the wrong step order in the booth;
* with the user-study detection rates (47 % with security education, 10 %
  without), a kiosk that attacks every voter is caught quickly: the example
  prints the survival probability curve and the expected number of attacks
  before the first report.

Run with:  python examples/malicious_kiosk_audit.py
"""

from repro.crypto.modp_group import testing_group
from repro.registration import ElectionSetup, Voter
from repro.registration.official import RegistrationOfficial
from repro.registration.vsd import VoterSupportingDevice
from repro.security.analysis import EDUCATED_VOTERS, UNEDUCATED_VOTERS
from repro.security.malicious_kiosk import WrongOrderKiosk


def main() -> None:
    group = testing_group()
    setup = ElectionSetup.run(group, ["alice"], num_authority_members=4)

    kiosk = WrongOrderKiosk(
        group=group,
        keypair=setup.registrar.kiosk_keys[0],
        authority_public_key=setup.authority_public_key,
        shared_mac_key=setup.registrar.shared_mac_key,
    )
    official = RegistrationOfficial(
        group=group,
        keypair=setup.registrar.official_keys[0],
        shared_mac_key=setup.registrar.shared_mac_key,
        board=setup.board,
        kiosk_public_keys=setup.registrar.kiosk_public_keys,
    )

    # The attack: envelope demanded before the commit is printed.
    alice = Voter("alice", num_fake_credentials=0)
    session = kiosk.authorize(official.check_in("alice"))
    envelope = setup.envelope_supply[0]
    receipt = kiosk.issue_claimed_real_credential(session, envelope)
    credential = alice.assemble_credential(receipt, envelope, is_real=True, observed_sound_order=False)
    official.check_out_ticket(session.check_out_ticket)

    print("attack executed: kiosk demanded the envelope before printing the commit")
    print(f"  voter-observable order was sound? {session.real_sigma.is_sound_order}")
    print(f"  adversary keeps a credential whose votes will count: "
          f"{setup.authority.decrypt(receipt.commit_code.public_credential) == kiosk.stolen_keypairs[0].public}")

    # Device-side checks cannot catch it — the transcript verifies.
    vsd = VoterSupportingDevice(
        group=group,
        board=setup.board,
        voter_id="alice",
        kiosk_public_keys=setup.registrar.kiosk_public_keys,
        authority_public_key=setup.authority_public_key,
    )
    report = vsd.activate(credential)
    print(f"  activation checks pass anyway: {report.success} "
          "(the printed transcript is indistinguishable from a sound one)")

    # The defence is procedural: trained voters notice the wrong order.
    print("\nhow long does such a kiosk survive? (per-voter detection rates from the user study)")
    for scenario in (EDUCATED_VOTERS, UNEDUCATED_VOTERS):
        expected_attacks = 1.0 / scenario.per_voter_detection_rate
        print(f"  {scenario.label:32s} expected attacks before first report ≈ {expected_attacks:5.1f}")
        for voters in (10, 50, 1000):
            probability = scenario.survival_probability(voters)
            print(f"      P[undetected after {voters:4d} voters] = {probability:.3e}")


if __name__ == "__main__":
    main()
