#!/usr/bin/env python3
"""A complete multi-voter Votegral election with per-phase timing.

Runs the end-to-end pipeline (setup → TRIP registration → voting → verifiable
tally) for a configurable number of voters and prints the per-phase latencies
— a laptop-scale version of the paper's §7.4 end-to-end evaluation.

Run with:  python examples/full_election.py [num_voters] [board_spec]

``board_spec`` selects the bulletin-board backend (see ``repro.ledger.api``):
``memory`` (default), ``sqlite[:path]``, or ``batched[:N[:inner]]`` — every
backend yields the identical tally and hash chains.
"""

import sys

from repro.bench.harness import format_seconds
from repro.election import ElectionConfig, VotegralElection


def main(num_voters: int = 15, board_spec: str = "memory") -> None:
    config = ElectionConfig(
        num_voters=num_voters,
        num_options=3,
        num_mixers=4,
        proof_rounds=4,
        fake_credentials_per_voter=1,
        board_spec=board_spec,
    )
    with VotegralElection(config) as election:
        report = election.run()

    print(f"election with {num_voters} voters, {config.num_options} options, "
          f"{config.num_mixers} mixers, board={config.board_spec!r}")
    print(f"  counts:             {report.result.counts}")
    print(f"  intended:           {report.intended_counts}")
    print(f"  matches intent:     {report.counts_match_intent}")
    print(f"  universally valid:  {report.universally_verified}")
    print(f"  ballots on ledger:  {report.result.num_ballots_on_ledger} "
          f"({report.result.num_discarded} fake/discarded)")

    per_voter = report.timing.per_voter(num_voters)
    print("per-phase latency (wall-clock, this machine):")
    print(f"  registration: {format_seconds(report.timing.registration_seconds)} "
          f"({format_seconds(per_voter['registration'])} per voter)")
    print(f"  voting:       {format_seconds(report.timing.voting_seconds)} "
          f"({format_seconds(per_voter['voting'])} per voter)")
    print(f"  tally:        {format_seconds(report.timing.tally_seconds)} "
          f"({format_seconds(per_voter['tally'])} per voter)")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 15,
        sys.argv[2] if len(sys.argv) > 2 else "memory",
    )
