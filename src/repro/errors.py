"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class VerificationError(ReproError):
    """A cryptographic verification (signature, proof, shuffle, …) failed."""


class LedgerError(ReproError):
    """An operation on the public bulletin board was invalid."""


class ProtocolError(ReproError):
    """A protocol step was executed out of order or with invalid inputs."""


class RegistrationError(ProtocolError):
    """A TRIP registration step failed (check-in, credentialing, check-out)."""


class TallyError(ProtocolError):
    """The tallying pipeline detected an inconsistency."""


class CoercionDetected(ReproError):
    """Raised by audit helpers when evidence of coercion/misbehaviour is found."""


class ClusterError(ReproError):
    """A multi-node cluster operation failed (enrollment, transport, or the
    coordinator ran out of live workers for outstanding shards)."""


class GatewayError(ReproError):
    """A gateway (HTTP front door) operation failed server-side."""
