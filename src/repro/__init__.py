"""repro — a reproduction of TRIP/Votegral (SOSP 2025).

TRIP is a coercion-resistant, verifiable voter-registration scheme in which a
kiosk in a privacy booth issues real and fake paper credentials.  Real
credentials carry a *sound* interactive zero-knowledge proof (Chaum–Pedersen
Σ-protocol executed commit → challenge → response); fake credentials carry a
forged transcript produced with the honest-verifier simulator (challenge known
before the commit).  The two are indistinguishable on paper, so only the voter
— who observed the printing order in the booth — knows which credential is
real.

The package provides:

* ``repro.crypto``        — the cryptographic substrate (groups, ElGamal,
  Schnorr signatures, Σ-protocols, DKG, verifiable shuffles, PETs, tagging).
* ``repro.ledger``        — the tamper-evident public bulletin board behind
  a versioned, backend-pluggable API (memory / SQLite / write-behind batched)
  with typed append commands and cursor-based reads.
* ``repro.peripherals``   — calibrated kiosk-hardware simulation (QR, printer,
  scanner, hardware profiles).
* ``repro.registration``  — the TRIP registration protocol (the paper's core
  contribution).
* ``repro.voting`` / ``repro.tally`` / ``repro.election`` — the surrounding
  Votegral pipeline.
* ``repro.baselines``     — Civitas, Swiss Post and VoteAgain comparison
  systems behind one interface.
* ``repro.security``      — the formal games (individual verifiability,
  coercion resistance) and analytic bounds.
* ``repro.usability``     — the §7.5 user-study model.
* ``repro.telemetry``     — dependency-free tracing and metrics for every
  layer above (spans, counters, merged fleet snapshots, a trace summarizer).
"""

from repro.errors import (
    ReproError,
    VerificationError,
    LedgerError,
    ProtocolError,
    RegistrationError,
)
from repro import telemetry
from repro.telemetry import TelemetrySnapshot, telemetry_from_spec

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "VerificationError",
    "LedgerError",
    "ProtocolError",
    "RegistrationError",
    "TelemetrySnapshot",
    "telemetry",
    "telemetry_from_spec",
    "__version__",
]
