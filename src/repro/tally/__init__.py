"""The Votegral tallying pipeline (§4.2, Appendix M).

After the voting deadline the tally service:

1. validates every ballot on the ledger (signature, key proof,
   well-formedness) and removes per-credential duplicates;
2. encrypts each ballot's credential key and verifiably mixes the
   (vote, credential) ciphertext pairs, and in parallel verifiably mixes the
   registration ledger's public credential tags;
3. applies the distributed deterministic tagging exponent to both sides and
   threshold-decrypts only the tags, so each ballot and each registration
   record reduce to a blinded tag;
4. keeps exactly the ballots whose blinded tag matches a blinded registration
   tag (one per voter — the real votes) and discards the rest (the fakes);
5. threshold-decrypts the surviving vote ciphertexts and publishes the
   result, together with every shuffle, tagging and decryption proof so
   anyone can re-verify the tally from the ledger alone.
"""

from repro.tally.mixnet import TupleShuffle, shuffle_tuples_with_proof, verify_tuple_shuffle, tuple_mix_cascade
from repro.tally.filter import FilterResult, filter_ballots, deduplicate_ballots
from repro.tally.decrypt import DecryptedVote, decrypt_votes
from repro.tally.pipeline import TallyPipeline, TallyResult, verify_tally

__all__ = [
    "TupleShuffle",
    "shuffle_tuples_with_proof",
    "verify_tuple_shuffle",
    "tuple_mix_cascade",
    "FilterResult",
    "filter_ballots",
    "deduplicate_ballots",
    "DecryptedVote",
    "decrypt_votes",
    "TallyPipeline",
    "TallyResult",
    "verify_tally",
]
