"""The end-to-end tally pipeline with universal verification.

:class:`TallyPipeline` consumes the bulletin board after the voting deadline
and produces a :class:`TallyResult`: per-candidate totals plus every proof an
auditor needs (ballot validity filter, the two mix cascades, the tagging
chains implicit in the filter, and the threshold-decryption shares are
re-checkable through :func:`verify_tally`).

Two schedules produce that result, selected by ``pipeline``
(:class:`~repro.runtime.pipeline.PipelineSpec`, configured per election via
``ElectionConfig.pipeline_spec``):

* **serial** (the reference): each phase runs to completion — read + check
  ballots, mix, filter, decrypt;
* **streaming**: cursor-paged ballot shards from the ledger flow through a
  :class:`~repro.runtime.pipeline.StreamPipeline` whose stages are the
  signature check, every mixer of the cascade, blinded-tag derivation, the
  tag join, and threshold decryption — so mixer *i+1* (and everything
  downstream) works on shard *k* while mixer *i* works on shard *k+1* and
  computes its shadow proofs.

Both schedules are bit-identical in everything published: all randomness
that shapes the output (shuffle plans, tagging secrets) is drawn in the
calling thread in the same order on both paths, and everything downstream of
those draws is deterministic.  Only proof *nonces* (decryption-share and
tagging Chaum–Pedersen commitments, RLC batch coefficients) are drawn inside
workers, and none of them appear in the result.

One real barrier remains and is worth documenting: ballot deduplication is
last-write-wins per credential, and the shuffle permutations need the final
ballot count, so the mix cannot start before the ledger read completes.  The
streaming path therefore makes one cursor-paged pass for signature checking
and dedup (itself pipelined), then streams the deduplicated shards through
the cascade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro import telemetry
from repro.audit.evidence import TallyEvidence, build_tally_evidence
from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import Group
from repro.crypto.hashing import sha256
from repro.crypto.tagging import TaggingAuthority
from repro.errors import TallyError
from repro.ledger.api import BoardView, LedgerBackend, as_board_view
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import BallotRecord
from repro.runtime.batch import verify_signatures
from repro.runtime.executor import Executor, resolve_executor
from repro.runtime.pipeline import (
    PipelineSpec,
    Shard,
    Stage,
    StreamPipeline,
    iter_shards,
    shard_boundaries,
)
from repro.runtime.sharding import parallel_starmap
from repro.tally.decrypt import DecryptedVote, _decrypt_one, aggregate, decrypt_votes
from repro.tally.filter import (
    FilterResult,
    TagJoiner,
    _blinded_tag_bytes,
    deduplicate_ballots,
    filter_ballots,
)
from repro.tally.mixnet import (
    TupleCascade,
    make_mixer_stages,
    plan_tuple_cascade,
    streaming_tuple_mix_cascade,
    tuple_mix_cascade,
    verify_tuple_cascade,
)


@dataclass
class TallyResult:
    """The published outcome of a tally run.

    ``evidence`` optionally carries the :class:`~repro.audit.evidence.
    TallyEvidence` bundle (tagging-chain and decryption-share transcripts)
    that lets an external auditor re-check the filter and decryption phases,
    not just the mix cascades; produced when the pipeline runs with
    ``collect_evidence=True``.
    """

    counts: Dict[int, int]
    num_ballots_on_ledger: int
    num_valid_ballots: int
    num_counted: int
    num_discarded: int
    registration_cascade: TupleCascade
    ballot_cascade: TupleCascade
    filter_result: FilterResult
    votes: List[DecryptedVote]
    num_options: int
    evidence: Optional["TallyEvidence"] = None

    @property
    def turnout(self) -> int:
        return self.num_counted

    def winner(self) -> int:
        """The candidate index with the most votes (ties broken by lowest index)."""
        return max(sorted(self.counts), key=lambda option: self.counts[option])


def _ballot_signature_items(records: List[BallotRecord]) -> List[Tuple]:
    """The (public key, message, signature) triples one ballot page verifies."""
    items = []
    for record in records:
        ciphertext = ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2)
        message = sha256(
            b"ballot",
            record.election_id.encode(),
            ciphertext.to_bytes(),
            record.credential_public_key.to_bytes(),
        )
        items.append((record.credential_public_key, message, record.signature))
    return items


class _SignaturePageStage(Stage):
    """Batch-verify one cursor page of ballots; emit the valid records."""

    name = "sig-check"

    def __init__(self, executor: Optional[Executor]):
        self.executor = executor

    def process(self, shard: Shard):
        verdicts = verify_signatures(_ballot_signature_items(shard.items), executor=self.executor)
        yield Shard(shard.index, [record for record, ok in zip(shard.items, verdicts) if ok])


class _TagStage(Stage):
    """Derive the blinded tag for each mixed (vote, credential) pair."""

    name = "blind-tags"

    def __init__(self, tagging: TaggingAuthority, dkg: DistributedKeyGeneration, executor: Optional[Executor]):
        self.tagging = tagging
        self.dkg = dkg
        self.executor = executor

    def process(self, shard: Shard):
        with telemetry.span("tally.tag", shard=shard.index, items=len(shard)):
            tags = parallel_starmap(
                _blinded_tag_bytes,
                [(self.tagging, self.dkg, credential, False) for _, credential in shard.items],
                executor=self.executor,
            )
        yield Shard(shard.index, [(vote, tag) for (vote, _), tag in zip(shard.items, tags)])


class _JoinStage(Stage):
    """The linear hash join of ballot tags against registration tags (§7.4).

    Stateful and strictly in-order (it consumes one shard at a time from its
    input queue); the join semantics live in the shared
    :class:`~repro.tally.filter.TagJoiner`, the same implementation the
    serial :func:`~repro.tally.filter.filter_ballots` uses — the two
    schedules cannot drift apart.
    """

    name = "tag-join"

    def __init__(self, registration_tags: List[bytes]):
        self.joiner = TagJoiner(registration_tags)

    def process(self, shard: Shard):
        counted = self.joiner.feed(shard.items)
        if counted:
            yield Shard(shard.index, counted)


class _DecryptStage(Stage):
    """Threshold-decrypt the counted vote ciphertexts."""

    name = "decrypt"

    def __init__(self, dkg: DistributedKeyGeneration, num_options: int, executor: Optional[Executor]):
        self.dkg = dkg
        self.num_options = num_options
        self.executor = executor

    def process(self, shard: Shard):
        with telemetry.span("tally.decrypt", shard=shard.index, items=len(shard)):
            votes = parallel_starmap(
                _decrypt_one,
                [(self.dkg, ciphertext, self.num_options, False) for ciphertext in shard.items],
                executor=self.executor,
            )
        yield Shard(shard.index, votes)


@dataclass
class TallyPipeline:
    """Runs the Votegral tally over a bulletin board.

    ``executor`` selects the :mod:`repro.runtime` backend the heavy stages
    (mixing, filtering, decryption, signature checks) fan out over; ``None``
    means the module-wide default (serial unless reconfigured).  ``tagging``
    optionally injects a pre-built :class:`TaggingAuthority` — normally a
    fresh one is drawn per run (reusing a tagging exponent across elections
    would link ballots), but injection enables deterministic replay and lets
    an auditor re-run filtering against a disclosed tagging transcript.
    ``pipeline`` selects the serial or streaming schedule (see the module
    docstring); both publish bit-identical results.
    """

    group: Group
    authority: DistributedKeyGeneration
    num_mixers: int = 4
    proof_rounds: int = 8
    verify_internally: bool = False
    executor: Optional[Executor] = None
    tagging: Optional[TaggingAuthority] = None
    pipeline: Optional[PipelineSpec] = None
    #: Publish tagging-chain and decryption-share transcripts on the result
    #: (:class:`repro.audit.evidence.TallyEvidence`) so external auditors can
    #: re-check filtering and decryption; costs a few extra exponentiations
    #: per ciphertext per member, hence opt-in.
    collect_evidence: bool = False
    #: Ballot-ledger shard size for the cursor-based reads below.
    read_page_size: int = 1024

    def __post_init__(self) -> None:
        self.elgamal = ElGamal(self.group)

    # ------------------------------------------------------------------ ballots

    def _valid_ballots(
        self,
        board: "Board",
        election_id: str,
        executor: Optional[Executor] = None,
        pipeline: Optional[PipelineSpec] = None,
    ) -> List[BallotRecord]:
        """Signature-check and deduplicate the ballots on the ledger.

        The ledger is consumed through cursor-based shard reads — ingestion
        can keep appending behind the cursor without this stage ever holding
        more than bookkeeping state per shard.  Signatures are checked with
        the random-linear-combination batch verifier per shard: one batched
        equation when every signature is valid (the common case), bisection
        to isolate forgeries otherwise.  With a streaming ``pipeline``, the
        cursor reads and the signature checks overlap (the reader fetches
        page *k+1* while page *k* verifies).  On a cluster executor the
        pages themselves become the distribution unit: each cursor page
        ships to a remote worker as one task, acked by cursor as results
        land (:func:`repro.cluster.feeds.cluster_valid_ballots`), so board
        sharding and worker placement stay independent.
        """
        view = as_board_view(board)
        ex = executor if executor is not None else self.executor
        spec = pipeline if pipeline is not None else self.pipeline
        streaming = spec is not None and spec.streaming
        if not streaming and callable(getattr(ex, "submit_calls", None)):
            from repro.cluster.feeds import cluster_valid_ballots

            valid, _tracker = cluster_valid_ballots(
                view, election_id, ex, page_size=self.read_page_size
            )
            return deduplicate_ballots(valid)
        if streaming:
            pages = (
                Shard(index, page.records)
                for index, page in enumerate(
                    view.iter_ballot_pages(election_id=election_id, page_size=self.read_page_size)
                )
            )
            shards = StreamPipeline(
                [_SignaturePageStage(ex)], queue_depth=spec.queue_depth, name="ballot-read"
            ).run(pages)
            valid = [record for shard in shards for record in shard.items]
            return deduplicate_ballots(valid)
        valid: List[BallotRecord] = []
        for page in view.iter_ballot_pages(election_id=election_id, page_size=self.read_page_size):
            verdicts = verify_signatures(_ballot_signature_items(page.records), executor=ex)
            valid.extend(record for record, ok in zip(page.records, verdicts) if ok)
        return deduplicate_ballots(valid)

    # ------------------------------------------------------------------ main run

    def run(
        self,
        board: "Board",
        num_options: int,
        election_id: str = "default",
        rotations=None,
    ) -> TallyResult:
        """Execute the full tally and return the published result.

        ``board`` may be a :class:`BulletinBoard`, a raw
        :class:`~repro.ledger.api.LedgerBackend` or a read-only
        :class:`~repro.ledger.api.BoardView` — the tally only ever reads.
        ``rotations`` optionally supplies a
        :class:`repro.registration.extensions.RotationRegistry` (Appendix C.2):
        ballots cast with device keys are resolved back to the kiosk-issued
        credential before tag matching, and ballots cast with keys that were
        rotated away from are dropped.
        """
        ex = resolve_executor(self.executor)
        spec = self.pipeline if self.pipeline is not None else PipelineSpec(streaming=False)
        if spec.streaming or ex.name == "remote":
            # Fork/spawn any worker pool while this is still the only thread;
            # the first pipeline (the ledger read below) starts stage threads.
            # For a remote executor this is the enrollment barrier: every
            # worker has warmed its precompute tables before the first shard.
            ex.warm()
        view = as_board_view(board)
        registrations = view.active_registrations()
        if not registrations:
            raise TallyError("no active registrations: nothing to tally")
        # One of the five tally phase spans (sig-check / mix / tag / join /
        # decrypt); the other four are emitted at the point of work in
        # mixnet/filter/decrypt so both schedules produce the same names.
        with telemetry.span("tally.sig-check", election=election_id):
            ballots = self._valid_ballots(view, election_id, executor=ex, pipeline=spec)
        if rotations is not None:
            ballots = [b for b in ballots if not rotations.is_retired(b.credential_public_key)]

        # Registration tags are mixed as 1-tuples; ballots as (vote, credential) pairs.
        registration_inputs = [
            (ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2),)
            for record in registrations
        ]
        # The credential key enters the mix as a *trivial* encryption
        # (randomness 0) so any auditor can re-derive the mix input from the
        # ledger; the first mixer's re-encryption immediately refreshes it.
        def _credential_key(record):
            if rotations is None:
                return record.credential_public_key
            return rotations.resolve(record.credential_public_key)

        ballot_inputs = [
            (
                ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2),
                self.elgamal.encrypt(self.authority.public_key, _credential_key(record), randomness=0),
            )
            for record in ballots
        ]

        # num_mixers == 0 must take the serial path: an empty cascade publishes
        # no mixed pairs, so nothing is counted — the streaming stages would
        # otherwise feed raw ballots straight into tagging.
        if spec.streaming and ballot_inputs and self.num_mixers > 0:
            return self._run_streaming(
                view, ballots, registration_inputs, ballot_inputs, num_options, spec, ex
            )

        registration_cascade = self._mix(registration_inputs, spec, ex)
        if ballot_inputs:
            ballot_cascade = self._mix(ballot_inputs, spec, ex)
        else:
            ballot_cascade = TupleCascade(stages=[])

        self._self_verify(registration_inputs, registration_cascade, ballot_inputs, ballot_cascade, ex)

        mixed_registrations = [item[0] for item in (registration_cascade.outputs or registration_inputs)]
        mixed_pairs: List[Tuple[ElGamalCiphertext, ElGamalCiphertext]] = [
            (item[0], item[1]) for item in ballot_cascade.outputs
        ]

        tagging = self.tagging if self.tagging is not None else TaggingAuthority.create(
            self.group, self.authority.num_members
        )
        filter_result = filter_ballots(
            self.authority, tagging, mixed_pairs, mixed_registrations, verify=False, executor=ex
        )

        votes = decrypt_votes(self.authority, filter_result.counted, num_options, verify=False, executor=ex)
        counts = aggregate(votes, num_options)

        evidence = self._evidence(tagging, mixed_registrations, mixed_pairs, filter_result)
        return self._result(
            view, counts, ballots, registration_cascade, ballot_cascade, filter_result, votes,
            num_options, evidence,
        )

    # ------------------------------------------------------------------ streaming run

    def _run_streaming(
        self,
        view: BoardView,
        ballots: List[BallotRecord],
        registration_inputs,
        ballot_inputs,
        num_options: int,
        spec: PipelineSpec,
        ex: Executor,
    ) -> TallyResult:
        """The streaming schedule: one pipeline from mix input to decrypted vote.

        Randomness-tape discipline (what keeps this bit-identical to the
        serial path): the draws that shape published output happen in this
        thread in serial-path order — registration-cascade plans, then
        ballot-cascade plans, then the tagging secrets.  The pipeline itself
        only computes deterministic functions of those draws.
        """
        public_key = self.authority.public_key
        registration_cascade = streaming_tuple_mix_cascade(
            self.elgamal, public_key, registration_inputs, self.num_mixers, self.proof_rounds,
            executor=ex, pipeline=spec,
        )
        mixed_registrations = [item[0] for item in (registration_cascade.outputs or registration_inputs)]

        plans = plan_tuple_cascade(
            self.elgamal, len(ballot_inputs), len(ballot_inputs[0]), self.num_mixers, self.proof_rounds
        )
        tagging = self.tagging if self.tagging is not None else TaggingAuthority.create(
            self.group, self.authority.num_members
        )
        registration_tags = parallel_starmap(
            _blinded_tag_bytes,
            [(tagging, self.authority, ciphertext, False) for ciphertext in mixed_registrations],
            executor=ex,
        )

        boundaries = shard_boundaries(len(ballot_inputs), spec.shard_size)
        mixer_stages = make_mixer_stages(self.elgamal, public_key, plans, boundaries, executor=ex)
        join_stage = _JoinStage(registration_tags)
        stages = mixer_stages + [
            _TagStage(tagging, self.authority, ex),
            join_stage,
            _DecryptStage(self.authority, num_options, ex),
        ]
        vote_shards = StreamPipeline(stages, queue_depth=spec.queue_depth, name="tally").run(
            iter_shards(ballot_inputs, spec.shard_size)
        )
        votes: List[DecryptedVote] = [vote for shard in vote_shards for vote in shard.items]

        ballot_cascade = TupleCascade(stages=[stage.result for stage in mixer_stages])
        self._self_verify(registration_inputs, registration_cascade, ballot_inputs, ballot_cascade, ex)

        filter_result = join_stage.joiner.result()
        counts = aggregate(votes, num_options)
        mixed_pairs = [(item[0], item[1]) for item in ballot_cascade.outputs]
        evidence = self._evidence(tagging, mixed_registrations, mixed_pairs, filter_result)
        return self._result(
            view, counts, ballots, registration_cascade, ballot_cascade, filter_result, votes,
            num_options, evidence,
        )

    # ------------------------------------------------------------------ helpers

    def _mix(self, inputs, spec: PipelineSpec, ex: Executor) -> TupleCascade:
        if spec.streaming and inputs:
            return streaming_tuple_mix_cascade(
                self.elgamal, self.authority.public_key, inputs, self.num_mixers, self.proof_rounds,
                executor=ex, pipeline=spec,
            )
        return tuple_mix_cascade(
            self.elgamal, self.authority.public_key, inputs, self.num_mixers, self.proof_rounds,
            executor=ex,
        )

    def _self_verify(self, registration_inputs, registration_cascade, ballot_inputs, ballot_cascade, ex) -> None:
        if not self.verify_internally:
            return
        if not verify_tuple_cascade(
            self.elgamal, self.authority.public_key, registration_inputs, registration_cascade, executor=ex
        ):
            raise TallyError("registration mix cascade failed self-verification")
        if ballot_inputs and not verify_tuple_cascade(
            self.elgamal, self.authority.public_key, ballot_inputs, ballot_cascade, executor=ex
        ):
            raise TallyError("ballot mix cascade failed self-verification")

    def _evidence(
        self, tagging, mixed_registrations, mixed_pairs, filter_result
    ) -> Optional[TallyEvidence]:
        """The publishable audit evidence for this run (``None`` unless opted in).

        Re-derives the tagging chains with per-step proofs and transcribes
        every threshold decryption after the fact: the blinding chains are
        deterministic, so the evidence tags are bit-identical to the ones
        the filter joined on — the audit layer checks exactly that.
        """
        if not self.collect_evidence:
            return None
        return build_tally_evidence(
            self.authority,
            tagging,
            mixed_registrations,
            [credential for _, credential in mixed_pairs],
            filter_result.counted,
        )

    def _result(
        self, view, counts, ballots, registration_cascade, ballot_cascade, filter_result, votes,
        num_options, evidence=None,
    ) -> TallyResult:
        return TallyResult(
            counts=counts,
            num_ballots_on_ledger=view.num_ballots,
            num_valid_ballots=len(ballots),
            num_counted=len(filter_result.counted),
            num_discarded=filter_result.discarded + filter_result.duplicate_tags,
            registration_cascade=registration_cascade,
            ballot_cascade=ballot_cascade,
            filter_result=filter_result,
            votes=votes,
            num_options=num_options,
            evidence=evidence,
        )


#: Anything the tally can read a board from: the facade, a raw backend, or a view.
Board = Union[BulletinBoard, LedgerBackend, BoardView]


def verify_tally(
    group: Group,
    authority: DistributedKeyGeneration,
    board: Board,
    result: TallyResult,
    election_id: str = "default",
    rotations=None,
    executor: Optional[Executor] = None,
    batch: bool = True,
    pipeline: Optional[PipelineSpec] = None,
) -> bool:
    """Universal verification: re-check the published tally against the ledger.

    A bool-returning shim over :func:`repro.audit.checks.audit_tally`: the
    auditor re-derives the mix inputs from the ledger (through the same
    read-only :class:`~repro.ledger.api.BoardView` cursor API the tally
    uses), then executes the full :func:`~repro.audit.checks.
    tally_audit_plan` — chain walks, both mix cascades, the published
    tagging/decryption evidence when the result carries one, and the count
    invariants.  ``batch=True`` selects the batched strategy (shuffle
    openings, tag chains and decryption shares folded into RLC equations);
    ``batch=False`` the eager reference strategy; a streaming ``pipeline``
    rides check shards through the pipeline scheduler and cancels at the
    first failed check.  Auditors who want the failure locus instead of a
    bool call ``audit_tally`` directly and keep the
    :class:`~repro.audit.api.AuditReport`.
    """
    from repro.audit.api import BatchedVerifier, EagerVerifier, StreamingVerifier
    from repro.audit.checks import audit_tally

    ex = resolve_executor(executor)
    spec = pipeline if pipeline is not None else PipelineSpec(streaming=False)
    if spec.streaming:
        verifier = StreamingVerifier(
            shard_size=spec.shard_size, queue_depth=spec.queue_depth, batch=batch
        )
    elif batch:
        verifier = BatchedVerifier(executor=ex)
    else:
        verifier = EagerVerifier(executor=ex)
    return audit_tally(
        group, authority, board, result,
        election_id=election_id, rotations=rotations, verifier=verifier, executor=ex,
    ).ok
