"""The end-to-end tally pipeline with universal verification.

:class:`TallyPipeline` consumes the bulletin board after the voting deadline
and produces a :class:`TallyResult`: per-candidate totals plus every proof an
auditor needs (ballot validity filter, the two mix cascades, the tagging
chains implicit in the filter, and the threshold-decryption shares are
re-checkable through :func:`verify_tally`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import Group
from repro.crypto.hashing import sha256
from repro.crypto.tagging import TaggingAuthority
from repro.errors import TallyError
from repro.ledger.api import BoardView, LedgerBackend, as_board_view
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import BallotRecord, RegistrationRecord
from repro.runtime.batch import verify_signatures
from repro.runtime.executor import Executor, resolve_executor
from repro.tally.decrypt import DecryptedVote, aggregate, decrypt_votes
from repro.tally.filter import FilterResult, deduplicate_ballots, filter_ballots
from repro.tally.mixnet import (
    TupleCascade,
    tuple_mix_cascade,
    verify_tuple_cascade,
)


@dataclass
class TallyResult:
    """The published outcome of a tally run."""

    counts: Dict[int, int]
    num_ballots_on_ledger: int
    num_valid_ballots: int
    num_counted: int
    num_discarded: int
    registration_cascade: TupleCascade
    ballot_cascade: TupleCascade
    filter_result: FilterResult
    votes: List[DecryptedVote]
    num_options: int

    @property
    def turnout(self) -> int:
        return self.num_counted

    def winner(self) -> int:
        """The candidate index with the most votes (ties broken by lowest index)."""
        return max(sorted(self.counts), key=lambda option: self.counts[option])


@dataclass
class TallyPipeline:
    """Runs the Votegral tally over a bulletin board.

    ``executor`` selects the :mod:`repro.runtime` backend the heavy stages
    (mixing, filtering, decryption, signature checks) fan out over; ``None``
    means the module-wide default (serial unless reconfigured).  ``tagging``
    optionally injects a pre-built :class:`TaggingAuthority` — normally a
    fresh one is drawn per run (reusing a tagging exponent across elections
    would link ballots), but injection enables deterministic replay and lets
    an auditor re-run filtering against a disclosed tagging transcript.
    """

    group: Group
    authority: DistributedKeyGeneration
    num_mixers: int = 4
    proof_rounds: int = 8
    verify_internally: bool = False
    executor: Optional[Executor] = None
    tagging: Optional[TaggingAuthority] = None
    #: Ballot-ledger shard size for the cursor-based reads below.
    read_page_size: int = 1024

    def __post_init__(self) -> None:
        self.elgamal = ElGamal(self.group)

    # ------------------------------------------------------------------ ballots

    def _valid_ballots(
        self,
        board: "Board",
        election_id: str,
        executor: Optional[Executor] = None,
    ) -> List[BallotRecord]:
        """Signature-check and deduplicate the ballots on the ledger.

        The ledger is consumed through cursor-based shard reads — ingestion
        can keep appending behind the cursor without this stage ever holding
        more than bookkeeping state per shard.  Signatures are checked with
        the random-linear-combination batch verifier per shard: one batched
        equation when every signature is valid (the common case), bisection
        to isolate forgeries otherwise.
        """
        view = as_board_view(board)
        ex = executor if executor is not None else self.executor
        valid: List[BallotRecord] = []
        for page in view.iter_ballot_pages(election_id=election_id, page_size=self.read_page_size):
            items = []
            for record in page.records:
                ciphertext = ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2)
                message = sha256(
                    b"ballot",
                    record.election_id.encode(),
                    ciphertext.to_bytes(),
                    record.credential_public_key.to_bytes(),
                )
                items.append((record.credential_public_key, message, record.signature))
            verdicts = verify_signatures(items, executor=ex)
            valid.extend(record for record, ok in zip(page.records, verdicts) if ok)
        return deduplicate_ballots(valid)

    # ------------------------------------------------------------------ main run

    def run(
        self,
        board: "Board",
        num_options: int,
        election_id: str = "default",
        rotations=None,
    ) -> TallyResult:
        """Execute the full tally and return the published result.

        ``board`` may be a :class:`BulletinBoard`, a raw
        :class:`~repro.ledger.api.LedgerBackend` or a read-only
        :class:`~repro.ledger.api.BoardView` — the tally only ever reads.
        ``rotations`` optionally supplies a
        :class:`repro.registration.extensions.RotationRegistry` (Appendix C.2):
        ballots cast with device keys are resolved back to the kiosk-issued
        credential before tag matching, and ballots cast with keys that were
        rotated away from are dropped.
        """
        ex = resolve_executor(self.executor)
        view = as_board_view(board)
        registrations = view.active_registrations()
        if not registrations:
            raise TallyError("no active registrations: nothing to tally")
        ballots = self._valid_ballots(view, election_id, executor=ex)
        if rotations is not None:
            ballots = [b for b in ballots if not rotations.is_retired(b.credential_public_key)]

        # Registration tags are mixed as 1-tuples; ballots as (vote, credential) pairs.
        registration_inputs = [
            (ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2),)
            for record in registrations
        ]
        # The credential key enters the mix as a *trivial* encryption
        # (randomness 0) so any auditor can re-derive the mix input from the
        # ledger; the first mixer's re-encryption immediately refreshes it.
        def _credential_key(record):
            if rotations is None:
                return record.credential_public_key
            return rotations.resolve(record.credential_public_key)

        ballot_inputs = [
            (
                ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2),
                self.elgamal.encrypt(self.authority.public_key, _credential_key(record), randomness=0),
            )
            for record in ballots
        ]

        registration_cascade = tuple_mix_cascade(
            self.elgamal, self.authority.public_key, registration_inputs, self.num_mixers, self.proof_rounds,
            executor=ex,
        )
        if ballot_inputs:
            ballot_cascade = tuple_mix_cascade(
                self.elgamal, self.authority.public_key, ballot_inputs, self.num_mixers, self.proof_rounds,
                executor=ex,
            )
        else:
            ballot_cascade = TupleCascade(stages=[])

        if self.verify_internally:
            if not verify_tuple_cascade(
                self.elgamal, self.authority.public_key, registration_inputs, registration_cascade, executor=ex
            ):
                raise TallyError("registration mix cascade failed self-verification")
            if ballot_inputs and not verify_tuple_cascade(
                self.elgamal, self.authority.public_key, ballot_inputs, ballot_cascade, executor=ex
            ):
                raise TallyError("ballot mix cascade failed self-verification")

        mixed_registrations = [item[0] for item in (registration_cascade.outputs or registration_inputs)]
        mixed_pairs: List[Tuple[ElGamalCiphertext, ElGamalCiphertext]] = [
            (item[0], item[1]) for item in ballot_cascade.outputs
        ]

        tagging = self.tagging if self.tagging is not None else TaggingAuthority.create(
            self.group, self.authority.num_members
        )
        filter_result = filter_ballots(
            self.authority, tagging, mixed_pairs, mixed_registrations, verify=False, executor=ex
        )

        votes = decrypt_votes(self.authority, filter_result.counted, num_options, verify=False, executor=ex)
        counts = aggregate(votes, num_options)

        return TallyResult(
            counts=counts,
            num_ballots_on_ledger=view.num_ballots,
            num_valid_ballots=len(ballots),
            num_counted=len(filter_result.counted),
            num_discarded=filter_result.discarded + filter_result.duplicate_tags,
            registration_cascade=registration_cascade,
            ballot_cascade=ballot_cascade,
            filter_result=filter_result,
            votes=votes,
            num_options=num_options,
        )


#: Anything the tally can read a board from: the facade, a raw backend, or a view.
Board = Union[BulletinBoard, LedgerBackend, BoardView]


def verify_tally(
    group: Group,
    authority: DistributedKeyGeneration,
    board: Board,
    result: TallyResult,
    election_id: str = "default",
    rotations=None,
    executor: Optional[Executor] = None,
    batch: bool = True,
) -> bool:
    """Universal verification: re-check the published tally against the ledger.

    An auditor re-derives the mix inputs from the ledger (through the same
    read-only :class:`~repro.ledger.api.BoardView` cursor API the tally
    uses), verifies both mix cascades, re-checks that the number of counted
    ballots never exceeds the number of active registrations, and that the
    per-candidate totals sum to the number of counted ballots.  (Tag-chain
    and decryption-share proofs are verified inside the tagging / decryption
    primitives when ``verify=True``; the pipeline exposes them through the
    filter result for spot checks.)

    ``executor`` fans the per-stage shuffle checks out across workers and
    ``batch`` enables random-linear-combination checking of the shadow-mix
    openings — auditors who insist on the exact reference equations can pass
    ``batch=False``.
    """
    ex = resolve_executor(executor)
    elgamal = ElGamal(group)
    view = as_board_view(board)
    registrations = view.active_registrations()
    registration_inputs = [
        (ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2),)
        for record in registrations
    ]
    if not verify_tuple_cascade(
        elgamal, authority.public_key, registration_inputs, result.registration_cascade, executor=ex, batch=batch
    ):
        return False
    if result.ballot_cascade.stages:
        valid_records = TallyPipeline(group, authority)._valid_ballots(view, election_id, executor=ex)
        if rotations is not None:
            valid_records = [r for r in valid_records if not rotations.is_retired(r.credential_public_key)]

        def _credential_key(record):
            return record.credential_public_key if rotations is None else rotations.resolve(record.credential_public_key)

        ballot_inputs = [
            (
                ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2),
                elgamal.encrypt(authority.public_key, _credential_key(record), randomness=0),
            )
            for record in valid_records
        ]
        if not verify_tuple_cascade(
            elgamal, authority.public_key, ballot_inputs, result.ballot_cascade, executor=ex, batch=batch
        ):
            return False
    if result.num_counted > len(registrations):
        return False
    if sum(result.counts.values()) != result.num_counted:
        return False
    if result.num_counted + result.num_discarded != len(result.ballot_cascade.outputs):
        return False
    return True
