"""Ballot filtering: duplicate removal and blinded-tag matching.

Votegral's filtering is linear in the number of ballots (§7.4): rather than
pairwise plaintext-equivalence tests (Civitas), both the mixed ballots and the
mixed registration tags are reduced to *deterministic blinded tags*
(:mod:`repro.crypto.tagging`) and joined on the tag value.  A ballot survives
iff its blinded credential tag equals the blinded tag of some active
registration record — which by construction happens exactly for ballots cast
with real credentials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.tagging import TaggingAuthority
from repro.ledger.records import BallotRecord
from repro.runtime.executor import Executor
from repro.runtime.sharding import parallel_starmap


@dataclass(frozen=True)
class FilterResult:
    """The outcome of tag-based filtering on mixed ballot pairs."""

    counted: List[ElGamalCiphertext]       # vote ciphertexts that will be decrypted
    discarded: int                          # ballots whose tag matched no registration
    duplicate_tags: int                     # extra ballots beyond one per registration tag
    registration_tags: List[bytes]          # blinded registration tags (for audit)
    ballot_tags: List[bytes]                # blinded ballot tags (for audit)


def deduplicate_ballots(records: Sequence[BallotRecord]) -> List[BallotRecord]:
    """Keep only the most recent ballot per credential public key.

    Ledger order is submission order, so "last write wins" — a voter who
    revises their vote with the same credential replaces the earlier ballot.
    """
    latest: Dict[bytes, BallotRecord] = {}
    for record in records:
        latest[record.credential_public_key.to_bytes()] = record
    return list(latest.values())


def _blinded_tag_bytes(
    tagging: TaggingAuthority,
    dkg: DistributedKeyGeneration,
    ciphertext: ElGamalCiphertext,
    verify: bool,
) -> bytes:
    """One tag derivation — module-level so process executors can run it."""
    return tagging.blind_and_decrypt(dkg, ciphertext, verify=verify).to_bytes()


class TagJoiner:
    """The stateful linear hash join of ballot tags against registration tags.

    First match wins (at most one counted ballot per registration tag);
    further ballots with a known registration tag count as duplicates, the
    rest are discarded.  Both the serial :func:`filter_ballots` and the
    streaming tally's join stage feed this one implementation, so the two
    schedules cannot drift apart semantically.
    """

    def __init__(self, registration_tags: Sequence[bytes]):
        self.registration_tags = list(registration_tags)
        self._registered = set(self.registration_tags)
        self._remaining = set(self.registration_tags)
        self.counted: List[ElGamalCiphertext] = []
        self.ballot_tags: List[bytes] = []
        self.discarded = 0
        self.duplicate_tags = 0

    def feed(
        self, tagged_votes: Sequence[Tuple[ElGamalCiphertext, bytes]]
    ) -> List[ElGamalCiphertext]:
        """Join a batch of (vote ciphertext, blinded tag); return the newly counted votes."""
        # Both the serial filter and the streaming join stage land here, so
        # this one span is the "tally.join" phase under either schedule.
        with telemetry.span("tally.join", items=len(tagged_votes)):
            newly_counted: List[ElGamalCiphertext] = []
            for vote_ciphertext, tag_bytes in tagged_votes:
                self.ballot_tags.append(tag_bytes)
                if tag_bytes in self._remaining:
                    newly_counted.append(vote_ciphertext)
                    self._remaining.discard(tag_bytes)
                elif tag_bytes in self._registered:
                    self.duplicate_tags += 1
                else:
                    self.discarded += 1
            self.counted.extend(newly_counted)
            return newly_counted

    def result(self) -> FilterResult:
        return FilterResult(
            counted=self.counted,
            discarded=self.discarded,
            duplicate_tags=self.duplicate_tags,
            registration_tags=self.registration_tags,
            ballot_tags=self.ballot_tags,
        )


def filter_ballots(
    dkg: DistributedKeyGeneration,
    tagging: TaggingAuthority,
    mixed_pairs: Sequence[Tuple[ElGamalCiphertext, ElGamalCiphertext]],
    mixed_registration_tags: Sequence[ElGamalCiphertext],
    verify: bool = True,
    executor: Optional[Executor] = None,
) -> FilterResult:
    """Match mixed ballots against mixed registration tags.

    ``mixed_pairs`` holds (encrypted vote, encrypted credential key) after the
    mix cascade; ``mixed_registration_tags`` holds the mixed ``c_pc``
    ciphertexts from the registration ledger.  Both sides are raised to the
    tagging exponent and threshold-decrypted to blinded tags; the join keeps
    at most one ballot per registration tag.

    Tag derivation is independent per ciphertext, so both sides fan out over
    the executor in one batch; the join itself stays serial (it is a linear
    hash join, §7.4).
    """
    tag_jobs = [(tagging, dkg, ciphertext, verify) for ciphertext in mixed_registration_tags]
    tag_jobs += [(tagging, dkg, credential_ciphertext, verify) for _, credential_ciphertext in mixed_pairs]
    with telemetry.span("tally.tag", items=len(tag_jobs)):
        all_tags = parallel_starmap(_blinded_tag_bytes, tag_jobs, executor=executor)
    registration_tags = all_tags[: len(mixed_registration_tags)]
    pair_tags = all_tags[len(mixed_registration_tags) :]

    joiner = TagJoiner(registration_tags)
    joiner.feed([(vote, tag) for (vote, _), tag in zip(mixed_pairs, pair_tags)])
    return joiner.result()
