"""Threshold decryption of the surviving vote ciphertexts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamalCiphertext
from repro.errors import TallyError


@dataclass(frozen=True)
class DecryptedVote:
    """One decrypted ballot: the candidate index it encodes."""

    choice: int


def decrypt_votes(
    dkg: DistributedKeyGeneration,
    ciphertexts: Sequence[ElGamalCiphertext],
    num_options: int,
    verify: bool = True,
) -> List[DecryptedVote]:
    """Jointly decrypt the counted ballots (exponential ElGamal decode)."""
    votes: List[DecryptedVote] = []
    for ciphertext in ciphertexts:
        plaintext = dkg.decrypt(ciphertext, verify=verify)
        try:
            choice = dkg.group.decode_int(plaintext, max_value=num_options - 1)
        except ValueError as exc:
            raise TallyError("a counted ballot does not encode a valid candidate") from exc
        votes.append(DecryptedVote(choice=choice))
    return votes


def aggregate(votes: Sequence[DecryptedVote], num_options: int) -> Dict[int, int]:
    """Per-candidate totals."""
    counts = {option: 0 for option in range(num_options)}
    for vote in votes:
        counts[vote.choice] += 1
    return counts
