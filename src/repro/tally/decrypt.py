"""Threshold decryption of the surviving vote ciphertexts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamalCiphertext
from repro.errors import TallyError
from repro.runtime.executor import Executor
from repro.runtime.sharding import parallel_starmap


@dataclass(frozen=True)
class DecryptedVote:
    """One decrypted ballot: the candidate index it encodes."""

    choice: int


def _decrypt_one(
    dkg: DistributedKeyGeneration,
    ciphertext: ElGamalCiphertext,
    num_options: int,
    verify: bool,
) -> DecryptedVote:
    """Decrypt one ballot — module-level so process executors can run it."""
    plaintext = dkg.decrypt(ciphertext, verify=verify)
    try:
        choice = dkg.group.decode_int(plaintext, max_value=num_options - 1)
    except ValueError as exc:
        raise TallyError("a counted ballot does not encode a valid candidate") from exc
    return DecryptedVote(choice=choice)


def decrypt_votes(
    dkg: DistributedKeyGeneration,
    ciphertexts: Sequence[ElGamalCiphertext],
    num_options: int,
    verify: bool = True,
    executor: Optional[Executor] = None,
) -> List[DecryptedVote]:
    """Jointly decrypt the counted ballots (exponential ElGamal decode).

    Each ballot decrypts independently, so the work shards across the
    executor; ballot order (and thus the published vote list) is preserved.
    """
    with telemetry.span("tally.decrypt", items=len(ciphertexts)):
        return parallel_starmap(
            _decrypt_one,
            [(dkg, ciphertext, num_options, verify) for ciphertext in ciphertexts],
            executor=executor,
        )


def aggregate(votes: Sequence[DecryptedVote], num_options: int) -> Dict[int, int]:
    """Per-candidate totals."""
    counts = {option: 0 for option in range(num_options)}
    for vote in votes:
        counts[vote.choice] += 1
    return counts
