"""Verifiable mixing of ciphertext tuples.

The tally mixes *pairs* — ``(encrypted vote, encrypted credential key)`` — so
the anonymizing permutation must be applied consistently across the tuple
while each component is independently re-encrypted.  This module generalizes
the shadow-mix proof of :mod:`repro.crypto.shuffle` from single ciphertexts to
fixed-arity tuples; the proof structure (commit to K shadow mixes, open the
input- or output-side mapping per Fiat–Shamir coin) is identical.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import GroupElement
from repro.crypto.hashing import sha256
from repro.crypto.shuffle import DEFAULT_SOUNDNESS_ROUNDS, random_permutation
from repro.errors import VerificationError
from repro.runtime.batch import batch_reencryption_verify
from repro.runtime.executor import Executor, SerialExecutor
from repro.runtime.sharding import parallel_starmap

CiphertextTuple = Tuple[ElGamalCiphertext, ...]


@dataclass(frozen=True)
class TupleOpening:
    """A revealed half of one shadow round (permutation + per-component randomness)."""

    permutation: List[int]
    randomness: List[List[int]]  # randomness[i][k] refreshes component k of item i


@dataclass(frozen=True)
class TupleShadowRound:
    shadow: List[CiphertextTuple]
    opens_input_side: bool
    opening: TupleOpening


@dataclass(frozen=True)
class TupleShuffle:
    """A mixer's tuple shuffle with its shadow-mix proof."""

    outputs: List[CiphertextTuple]
    rounds: List[TupleShadowRound]


def _reencrypt_tuple(
    elgamal: ElGamal,
    public_key: GroupElement,
    item: CiphertextTuple,
    randomness: Sequence[int],
) -> CiphertextTuple:
    return tuple(
        elgamal.reencrypt(public_key, component, r) for component, r in zip(item, randomness)
    )


def _plan_shuffle(
    elgamal: ElGamal,
    num_items: int,
    arity: int,
) -> Tuple[List[int], List[List[int]]]:
    """Draw the secret part of one shuffle: a permutation plus fresh randomness.

    All randomness is drawn serially in the caller's thread — workers only
    ever compute the *deterministic* re-encryptions, which is what keeps
    parallel mixes bit-identical to serial ones for a fixed randomness tape.
    """
    permutation = random_permutation(num_items)
    randomness = [[elgamal.group.random_scalar() for _ in range(arity)] for _ in range(num_items)]
    return permutation, randomness


def _tuple_bytes(item: CiphertextTuple) -> bytes:
    return b"".join(component.to_bytes() for component in item)


def _challenge_bits(
    inputs: Sequence[CiphertextTuple],
    outputs: Sequence[CiphertextTuple],
    shadows: Sequence[Sequence[CiphertextTuple]],
) -> List[bool]:
    seed = sha256(
        b"tuple-shuffle-rounds",
        *[_tuple_bytes(item) for item in inputs],
        *[_tuple_bytes(item) for item in outputs],
        *[_tuple_bytes(item) for shadow in shadows for item in shadow],
    )
    bits: List[bool] = []
    counter = 0
    while len(bits) < len(shadows):
        block = sha256(seed, counter.to_bytes(4, "big"))
        for byte in block:
            for shift in range(8):
                bits.append(bool((byte >> shift) & 1))
                if len(bits) == len(shadows):
                    return bits
        counter += 1
    return bits


def shuffle_tuples_with_proof(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
    executor: Optional[Executor] = None,
) -> TupleShuffle:
    """Shuffle ciphertext tuples with a cut-and-choose proof.

    The real shuffle and the ``rounds`` shadow shuffles are independent, so
    their ``(rounds + 1) · n`` re-encryptions are flattened into one fan-out
    over the executor.  Permutations and randomness are drawn up front in the
    calling thread (see :func:`_plan_shuffle`).
    """
    n = len(inputs)
    arity = len(inputs[0]) if inputs else 0

    plans = [_plan_shuffle(elgamal, n, arity) for _ in range(rounds + 1)]
    tasks = [
        (elgamal, public_key, inputs[source], plan_randomness[position])
        for plan_permutation, plan_randomness in plans
        for position, source in enumerate(plan_permutation)
    ]
    flat = parallel_starmap(_reencrypt_tuple, tasks, executor=executor)

    permutation, randomness = plans[0]
    outputs = flat[:n]
    shadows: List[List[CiphertextTuple]] = [flat[(index + 1) * n : (index + 2) * n] for index in range(rounds)]
    shadow_perms: List[List[int]] = [plans[index + 1][0] for index in range(rounds)]
    shadow_rands: List[List[List[int]]] = [plans[index + 1][1] for index in range(rounds)]

    coins = _challenge_bits(inputs, outputs, shadows)
    order = elgamal.group.order
    arity = len(inputs[0]) if inputs else 0
    proof_rounds: List[TupleShadowRound] = []
    inverse_perms = []
    for perm in shadow_perms:
        inverse = [0] * len(perm)
        for position, source in enumerate(perm):
            inverse[source] = position
        inverse_perms.append(inverse)

    for index in range(rounds):
        if coins[index]:
            opening = TupleOpening(permutation=shadow_perms[index], randomness=shadow_rands[index])
        else:
            bridge = [inverse_perms[index][permutation[i]] for i in range(len(inputs))]
            delta = [
                [
                    (randomness[i][k] - shadow_rands[index][bridge[i]][k]) % order
                    for k in range(arity)
                ]
                for i in range(len(inputs))
            ]
            opening = TupleOpening(permutation=bridge, randomness=delta)
        proof_rounds.append(
            TupleShadowRound(shadow=shadows[index], opens_input_side=coins[index], opening=opening)
        )
    return TupleShuffle(outputs=outputs, rounds=proof_rounds)


def _check_mapping(
    elgamal: ElGamal,
    public_key: GroupElement,
    sources: Sequence[CiphertextTuple],
    targets: Sequence[CiphertextTuple],
    opening: TupleOpening,
    batch: bool = True,
) -> bool:
    if sorted(opening.permutation) != list(range(len(sources))):
        return False
    if len(opening.randomness) != len(sources) or len(targets) != len(sources):
        return False
    if batch and len(sources) > 1:
        # Random-linear-combination check over every (component, item) pair:
        # two full-width exponentiations for the whole opening instead of two
        # per ciphertext component.
        items = []
        for position, source_index in enumerate(opening.permutation):
            source_tuple = sources[source_index]
            target_tuple = targets[position]
            randomness = opening.randomness[position]
            if len(target_tuple) != len(source_tuple) or len(randomness) != len(source_tuple):
                return False
            items.extend(zip(source_tuple, target_tuple, randomness))
        return batch_reencryption_verify(elgamal, public_key, items)
    for position, source_index in enumerate(opening.permutation):
        expected = _reencrypt_tuple(elgamal, public_key, sources[source_index], opening.randomness[position])
        if expected != targets[position]:
            return False
    return True


def _verify_round(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    outputs: Sequence[CiphertextTuple],
    round_: TupleShadowRound,
    batch: bool,
) -> bool:
    if round_.opens_input_side:
        return _check_mapping(elgamal, public_key, inputs, round_.shadow, round_.opening, batch=batch)
    return _check_mapping(elgamal, public_key, round_.shadow, outputs, round_.opening, batch=batch)


def verify_tuple_shuffle(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    shuffle: TupleShuffle,
    executor: Optional[Executor] = None,
    batch: bool = True,
) -> bool:
    """Verify a tuple-shuffle proof (shadow rounds checked in parallel)."""
    shadows = [round_.shadow for round_ in shuffle.rounds]
    coins = _challenge_bits(inputs, shuffle.outputs, shadows)
    for index, round_ in enumerate(shuffle.rounds):
        if round_.opens_input_side != coins[index]:
            return False
    verdicts = parallel_starmap(
        _verify_round,
        [(elgamal, public_key, inputs, shuffle.outputs, round_, batch) for round_ in shuffle.rounds],
        executor=executor,
        chunksize=1,
    )
    return all(verdicts)


@dataclass(frozen=True)
class TupleCascade:
    """A cascade of tuple shuffles (one per tallier, the paper uses four)."""

    stages: List[TupleShuffle]

    @property
    def outputs(self) -> List[CiphertextTuple]:
        return self.stages[-1].outputs if self.stages else []


def tuple_mix_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    num_mixers: int,
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
    executor: Optional[Executor] = None,
) -> TupleCascade:
    stages: List[TupleShuffle] = []
    current = list(inputs)
    for _ in range(num_mixers):
        stage = shuffle_tuples_with_proof(elgamal, public_key, current, rounds=rounds, executor=executor)
        stages.append(stage)
        current = stage.outputs
    return TupleCascade(stages=stages)


def _verify_stage(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    stage: TupleShuffle,
    batch: bool,
) -> bool:
    # Runs inside a worker: keep nested execution strictly serial so a forked
    # pool object is never re-entered from a child process.
    return verify_tuple_shuffle(elgamal, public_key, inputs, stage, executor=SerialExecutor(), batch=batch)


def verify_tuple_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    cascade: TupleCascade,
    executor: Optional[Executor] = None,
    batch: bool = True,
) -> bool:
    """Verify every stage of a cascade.

    Unlike mixing, verification has no stage-to-stage data dependency — the
    claimed inputs of every stage are already in the published transcript —
    so the per-stage checks fan out across the executor.
    """
    stage_inputs: List[List[CiphertextTuple]] = []
    current = list(inputs)
    for stage in cascade.stages:
        stage_inputs.append(current)
        current = stage.outputs
    verdicts = parallel_starmap(
        _verify_stage,
        [(elgamal, public_key, stage_inputs[i], stage, batch) for i, stage in enumerate(cascade.stages)],
        executor=executor,
        chunksize=1,
    )
    return all(verdicts)


def assert_valid_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    cascade: TupleCascade,
) -> None:
    if not verify_tuple_cascade(elgamal, public_key, inputs, cascade):
        raise VerificationError("tuple mix cascade failed verification")
