"""Verifiable mixing of ciphertext tuples.

The tally mixes *pairs* — ``(encrypted vote, encrypted credential key)`` — so
the anonymizing permutation must be applied consistently across the tuple
while each component is independently re-encrypted.  This module generalizes
the shadow-mix proof of :mod:`repro.crypto.shuffle` from single ciphertexts to
fixed-arity tuples; the proof structure (commit to K shadow mixes, open the
input- or output-side mapping per Fiat–Shamir coin) is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import telemetry
from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import GroupElement
from repro.crypto.hashing import sha256
from repro.crypto.shuffle import DEFAULT_SOUNDNESS_ROUNDS, random_permutation
from repro.errors import VerificationError
from repro.runtime.batch import batch_reencryption_verify
from repro.runtime.executor import Executor, SerialExecutor, resolve_executor
from repro.runtime.pipeline import (
    MapStage,
    PipelineSpec,
    Shard,
    ShardReassembler,
    Stage,
    StopPipeline,
    StreamPipeline,
    iter_shards,
    shard_boundaries,
)
from repro.runtime.sharding import parallel_starmap

CiphertextTuple = Tuple[ElGamalCiphertext, ...]


@dataclass(frozen=True)
class TupleOpening:
    """A revealed half of one shadow round (permutation + per-component randomness)."""

    permutation: List[int]
    randomness: List[List[int]]  # randomness[i][k] refreshes component k of item i


@dataclass(frozen=True)
class TupleShadowRound:
    shadow: List[CiphertextTuple]
    opens_input_side: bool
    opening: TupleOpening


@dataclass(frozen=True)
class TupleShuffle:
    """A mixer's tuple shuffle with its shadow-mix proof."""

    outputs: List[CiphertextTuple]
    rounds: List[TupleShadowRound]


def _reencrypt_tuple(
    elgamal: ElGamal,
    public_key: GroupElement,
    item: CiphertextTuple,
    randomness: Sequence[int],
) -> CiphertextTuple:
    return tuple(
        elgamal.reencrypt(public_key, component, r) for component, r in zip(item, randomness)
    )


def _plan_shuffle(
    elgamal: ElGamal,
    num_items: int,
    arity: int,
) -> Tuple[List[int], List[List[int]]]:
    """Draw the secret part of one shuffle: a permutation plus fresh randomness.

    All randomness is drawn serially in the caller's thread — workers only
    ever compute the *deterministic* re-encryptions, which is what keeps
    parallel mixes bit-identical to serial ones for a fixed randomness tape.
    """
    permutation = random_permutation(num_items)
    randomness = [[elgamal.group.random_scalar() for _ in range(arity)] for _ in range(num_items)]
    return permutation, randomness


def _tuple_bytes(item: CiphertextTuple) -> bytes:
    return b"".join(component.to_bytes() for component in item)


def _challenge_bits(
    inputs: Sequence[CiphertextTuple],
    outputs: Sequence[CiphertextTuple],
    shadows: Sequence[Sequence[CiphertextTuple]],
) -> List[bool]:
    seed = sha256(
        b"tuple-shuffle-rounds",
        *[_tuple_bytes(item) for item in inputs],
        *[_tuple_bytes(item) for item in outputs],
        *[_tuple_bytes(item) for shadow in shadows for item in shadow],
    )
    bits: List[bool] = []
    counter = 0
    while len(bits) < len(shadows):
        block = sha256(seed, counter.to_bytes(4, "big"))
        for byte in block:
            for shift in range(8):
                bits.append(bool((byte >> shift) & 1))
                if len(bits) == len(shadows):
                    return bits
        counter += 1
    return bits


def _inverse_permutation(permutation: Sequence[int]) -> List[int]:
    inverse = [0] * len(permutation)
    for position, source in enumerate(permutation):
        inverse[source] = position
    return inverse


ShufflePlan = Tuple[List[int], List[List[int]]]


def _build_tuple_shuffle(
    elgamal: ElGamal,
    inputs: Sequence[CiphertextTuple],
    outputs: Sequence[CiphertextTuple],
    shadows: Sequence[List[CiphertextTuple]],
    plans: Sequence[ShufflePlan],
) -> TupleShuffle:
    """Assemble the cut-and-choose proof from pre-computed re-encryptions.

    ``plans[0]`` is the real shuffle's plan, ``plans[1:]`` the shadow plans.
    Deterministic given its arguments — both the serial and the streaming
    cascade build their proofs through this one function, which is what makes
    the two paths bit-identical for a fixed randomness tape.
    """
    rounds = len(shadows)
    permutation, randomness = plans[0]
    shadow_perms: List[List[int]] = [plans[index + 1][0] for index in range(rounds)]
    shadow_rands: List[List[List[int]]] = [plans[index + 1][1] for index in range(rounds)]

    coins = _challenge_bits(inputs, outputs, shadows)
    order = elgamal.group.order
    arity = len(inputs[0]) if inputs else 0
    proof_rounds: List[TupleShadowRound] = []
    inverse_perms = [_inverse_permutation(perm) for perm in shadow_perms]

    for index in range(rounds):
        if coins[index]:
            opening = TupleOpening(permutation=shadow_perms[index], randomness=shadow_rands[index])
        else:
            bridge = [inverse_perms[index][permutation[i]] for i in range(len(inputs))]
            delta = [
                [
                    (randomness[i][k] - shadow_rands[index][bridge[i]][k]) % order
                    for k in range(arity)
                ]
                for i in range(len(inputs))
            ]
            opening = TupleOpening(permutation=bridge, randomness=delta)
        proof_rounds.append(
            TupleShadowRound(shadow=list(shadows[index]), opens_input_side=coins[index], opening=opening)
        )
    return TupleShuffle(outputs=list(outputs), rounds=proof_rounds)


def shuffle_tuples_with_proof(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
    executor: Optional[Executor] = None,
) -> TupleShuffle:
    """Shuffle ciphertext tuples with a cut-and-choose proof.

    The real shuffle and the ``rounds`` shadow shuffles are independent, so
    their ``(rounds + 1) · n`` re-encryptions are flattened into one fan-out
    over the executor.  Permutations and randomness are drawn up front in the
    calling thread (see :func:`_plan_shuffle`).
    """
    n = len(inputs)
    arity = len(inputs[0]) if inputs else 0

    plans = [_plan_shuffle(elgamal, n, arity) for _ in range(rounds + 1)]
    tasks = [
        (elgamal, public_key, inputs[source], plan_randomness[position])
        for plan_permutation, plan_randomness in plans
        for position, source in enumerate(plan_permutation)
    ]
    flat = parallel_starmap(_reencrypt_tuple, tasks, executor=executor)

    outputs = flat[:n]
    shadows: List[List[CiphertextTuple]] = [flat[(index + 1) * n : (index + 2) * n] for index in range(rounds)]
    return _build_tuple_shuffle(elgamal, inputs, outputs, shadows, plans)


def round_mapping_items(
    sources: Sequence[CiphertextTuple],
    targets: Sequence[CiphertextTuple],
    opening: TupleOpening,
) -> Optional[List[Tuple[ElGamalCiphertext, ElGamalCiphertext, int]]]:
    """Structural half of one opening check: permutation + shapes.

    Returns the flat ``(source, target, randomness)`` re-encryption items the
    opening claims — ready for :func:`repro.runtime.batch.
    batch_reencryption_verify`, which can fold items from *many* openings
    into one product — or ``None`` when the opening is structurally invalid
    (bad permutation, mismatched lengths).
    """
    if sorted(opening.permutation) != list(range(len(sources))):
        return None
    if len(opening.randomness) != len(sources) or len(targets) != len(sources):
        return None
    items: List[Tuple[ElGamalCiphertext, ElGamalCiphertext, int]] = []
    for position, source_index in enumerate(opening.permutation):
        source_tuple = sources[source_index]
        target_tuple = targets[position]
        randomness = opening.randomness[position]
        if len(target_tuple) != len(source_tuple) or len(randomness) != len(source_tuple):
            return None
        items.extend(zip(source_tuple, target_tuple, randomness))
    return items


def check_round_mapping(
    elgamal: ElGamal,
    public_key: GroupElement,
    sources: Sequence[CiphertextTuple],
    targets: Sequence[CiphertextTuple],
    opening: TupleOpening,
    batch: bool = True,
) -> bool:
    """Check one revealed opening maps ``sources`` onto ``targets``.

    ``batch=False`` is the reference path (re-encrypt every item and
    compare); ``batch=True`` replaces the per-item equations with one
    random-linear-combination product over every (component, item) pair —
    two full-width exponentiations for the whole opening instead of two per
    ciphertext component.
    """
    if batch and len(sources) > 1:
        items = round_mapping_items(sources, targets, opening)
        if items is None:
            return False
        return batch_reencryption_verify(elgamal, public_key, items)
    if sorted(opening.permutation) != list(range(len(sources))):
        return False
    if len(opening.randomness) != len(sources) or len(targets) != len(sources):
        return False
    for position, source_index in enumerate(opening.permutation):
        source_tuple = sources[source_index]
        if len(targets[position]) != len(source_tuple) or len(opening.randomness[position]) != len(source_tuple):
            return False
        expected = _reencrypt_tuple(elgamal, public_key, source_tuple, opening.randomness[position])
        if expected != targets[position]:
            return False
    return True


def round_mapping_sides(
    inputs: Sequence[CiphertextTuple],
    outputs: Sequence[CiphertextTuple],
    round_: TupleShadowRound,
) -> Tuple[Sequence[CiphertextTuple], Sequence[CiphertextTuple]]:
    """Which (sources, targets) pair a shadow round's opening maps between."""
    if round_.opens_input_side:
        return inputs, round_.shadow
    return round_.shadow, outputs


def shuffle_coins_ok(inputs: Sequence[CiphertextTuple], shuffle: TupleShuffle) -> bool:
    """Re-derive the Fiat–Shamir coins and check each round opened the right side."""
    shadows = [round_.shadow for round_ in shuffle.rounds]
    coins = _challenge_bits(inputs, shuffle.outputs, shadows)
    return all(round_.opens_input_side == coins[index] for index, round_ in enumerate(shuffle.rounds))


def _verify_round(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    outputs: Sequence[CiphertextTuple],
    round_: TupleShadowRound,
    batch: bool,
) -> bool:
    sources, targets = round_mapping_sides(inputs, outputs, round_)
    return check_round_mapping(elgamal, public_key, sources, targets, round_.opening, batch=batch)


def verify_tuple_shuffle(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    shuffle: TupleShuffle,
    executor: Optional[Executor] = None,
    batch: bool = True,
) -> bool:
    """Verify a tuple-shuffle proof (shadow rounds checked in parallel)."""
    if not shuffle_coins_ok(inputs, shuffle):
        return False
    verdicts = parallel_starmap(
        _verify_round,
        [(elgamal, public_key, inputs, shuffle.outputs, round_, batch) for round_ in shuffle.rounds],
        executor=executor,
        chunksize=1,
    )
    return all(verdicts)


@dataclass(frozen=True)
class TupleCascade:
    """A cascade of tuple shuffles (one per tallier, the paper uses four)."""

    stages: List[TupleShuffle]

    @property
    def outputs(self) -> List[CiphertextTuple]:
        return self.stages[-1].outputs if self.stages else []


def tuple_mix_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    num_mixers: int,
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
    executor: Optional[Executor] = None,
) -> TupleCascade:
    stages: List[TupleShuffle] = []
    current = list(inputs)
    for index in range(num_mixers):
        with telemetry.span("tally.mix", mixer=index, items=len(current)):
            stage = shuffle_tuples_with_proof(elgamal, public_key, current, rounds=rounds, executor=executor)
        stages.append(stage)
        current = stage.outputs
    return TupleCascade(stages=stages)


def _verify_stage(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    stage: TupleShuffle,
    batch: bool,
) -> bool:
    # Runs inside a worker: keep nested execution strictly serial so a forked
    # pool object is never re-entered from a child process.
    return verify_tuple_shuffle(elgamal, public_key, inputs, stage, executor=SerialExecutor(), batch=batch)


def verify_tuple_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    cascade: TupleCascade,
    executor: Optional[Executor] = None,
    batch: bool = True,
) -> bool:
    """Verify every stage of a cascade (bool-returning shim over the audit API).

    Unlike mixing, verification has no stage-to-stage data dependency — the
    claimed inputs of every stage are already in the published transcript —
    so the whole cascade becomes a flat :class:`~repro.audit.api.AuditPlan`
    of coin and opening checks.  ``batch=True`` runs the batched strategy
    (openings of *all* rounds of *all* stages folded into the RLC
    re-encryption verifier); ``batch=False`` runs the eager reference
    strategy check-by-check.  Callers that want the failure locus instead of
    a bare bool should build the same plan via
    :func:`repro.audit.checks.cascade_checks` and keep the report.
    """
    from repro.audit.api import AuditPlan, BatchedVerifier, EagerVerifier
    from repro.audit.checks import cascade_checks

    plan = AuditPlan(cascade_checks(elgamal, public_key, inputs, cascade))
    if batch:
        verifier = BatchedVerifier(executor=executor)
    else:
        verifier = EagerVerifier(executor=executor)
    return verifier.run(plan).ok


def assert_valid_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    cascade: TupleCascade,
) -> None:
    if not verify_tuple_cascade(elgamal, public_key, inputs, cascade):
        raise VerificationError("tuple mix cascade failed verification")


# ---------------------------------------------------------------------------
# Streaming cascade: shards flow through all mixers concurrently
# ---------------------------------------------------------------------------
#
# The serial cascade is a chain of full barriers: mixer i+1 cannot start until
# mixer i has finished *all* of its work, including the `rounds` shadow
# shuffles that only matter for the proof.  But the data dependency between
# mixers is the main output alone — and every permutation and every piece of
# randomness is drawn up front in the calling thread (`_plan_shuffle`), so
# mixer i's main output is a pure function of its input the moment its plan
# exists.  The streaming cascade exploits exactly that:
#
# * all `num_mixers × (rounds + 1)` plans are drawn first, in the same order
#   the serial cascade would draw them (same randomness-tape consumption,
#   hence bit-identical output);
# * each mixer is a pipeline `Stage` that re-encrypts its *main* output as
#   input shards arrive and releases completed output shards downstream
#   through a `ShardReassembler` (the permutation scatters sources across
#   output positions, so shards complete out of order);
# * the shadow shuffles and the cut-and-choose proof — `rounds/(rounds+1)` of
#   the mixer's work — happen in `finalize()`, *after* the stage has passed
#   end-of-stream downstream, so mixer i's proof computation overlaps with
#   mixer i+1's main output computation.
#
# With enough workers the cascade's critical path drops from
# `num_mixers · (rounds + 1)` units to roughly `num_mixers + rounds` units.


def plan_tuple_cascade(
    elgamal: ElGamal,
    num_items: int,
    arity: int,
    num_mixers: int,
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
) -> List[List[ShufflePlan]]:
    """Draw every mixer's shuffle plans up front, in serial-cascade order.

    Must run in the calling thread before any re-encryption is scheduled:
    the draw order (mixer by mixer, real plan first, then the shadows) is
    exactly the order the serial cascade consumes the randomness tape in,
    which is what keeps streamed output bit-identical to serial output.
    """
    return [
        [_plan_shuffle(elgamal, num_items, arity) for _ in range(rounds + 1)]
        for _ in range(num_mixers)
    ]


class MixerStage(Stage):
    """One mixer of the cascade as a streaming pipeline stage.

    ``process`` re-encrypts the main-plan positions fed by each arriving
    input shard and releases completed output shards in order; ``finalize``
    computes the shadow shuffles and assembles the proof into
    :attr:`result` after downstream has the full output stream.
    """

    def __init__(
        self,
        elgamal: ElGamal,
        public_key: GroupElement,
        plans: Sequence[ShufflePlan],
        boundaries: Sequence[Tuple[int, int]],
        executor: Optional[Executor] = None,
        name: str = "mixer",
    ):
        self.name = name
        self.elgamal = elgamal
        self.public_key = public_key
        self.plans = list(plans)
        self.executor = executor
        num_items = boundaries[-1][1] if boundaries else 0
        self._num_items = num_items
        self._inverse_main = _inverse_permutation(self.plans[0][0])
        self._inputs: List[Optional[CiphertextTuple]] = [None] * num_items
        self._outputs: List[Optional[CiphertextTuple]] = [None] * num_items
        self._reassembler = ShardReassembler(boundaries)
        self._offset = 0
        #: The assembled shuffle (with proof); populated by ``finalize``.
        self.result: Optional[TupleShuffle] = None

    def process(self, shard: Shard):
        # The streaming half of the "tally.mix" phase span (the serial
        # cascade emits it around each whole shuffle instead).
        with telemetry.span("tally.mix", mixer=self.name, shard=shard.index, items=len(shard)):
            yield from self._process(shard)

    def _process(self, shard: Shard):
        start = self._offset
        self._offset += len(shard.items)
        if self._offset > self._num_items:
            raise ValueError("mixer stage received more items than planned")
        main_randomness = self.plans[0][1]
        positions = [self._inverse_main[start + offset] for offset in range(len(shard.items))]
        tasks = [
            (self.elgamal, self.public_key, item, main_randomness[position])
            for item, position in zip(shard.items, positions)
        ]
        reencrypted = parallel_starmap(_reencrypt_tuple, tasks, executor=self.executor)
        for offset, item in enumerate(shard.items):
            self._inputs[start + offset] = item
        for position, value in zip(positions, reencrypted):
            self._outputs[position] = value
            for ready in self._reassembler.add(position, value):
                yield ready

    def finish(self):
        if self._offset != self._num_items or self._reassembler.pending_shards:
            raise ValueError(
                f"mixer stage saw {self._offset} of {self._num_items} planned items"
            )
        return ()

    def finalize(self) -> None:
        # Shadow shuffles + proof: the bulk of the work, overlapped with
        # downstream consumption of the main output emitted above.  Polls for
        # cancellation between rounds so a failure elsewhere in the pipeline
        # is not stuck waiting on doomed proof work.
        inputs = self._inputs
        shadows: List[List[CiphertextTuple]] = []
        for shadow_permutation, shadow_randomness in self.plans[1:]:
            if self.should_abort():
                return
            tasks = [
                (self.elgamal, self.public_key, inputs[source], shadow_randomness[position])
                for position, source in enumerate(shadow_permutation)
            ]
            shadows.append(parallel_starmap(_reencrypt_tuple, tasks, executor=self.executor))
        if self.should_abort():
            return
        self.result = _build_tuple_shuffle(self.elgamal, inputs, self._outputs, shadows, self.plans)


def make_mixer_stages(
    elgamal: ElGamal,
    public_key: GroupElement,
    plans: Sequence[Sequence[ShufflePlan]],
    boundaries: Sequence[Tuple[int, int]],
    executor: Optional[Executor] = None,
) -> List[MixerStage]:
    """Build the cascade's mixer stages from pre-drawn plans."""
    return [
        MixerStage(elgamal, public_key, mixer_plans, boundaries, executor=executor, name=f"mixer-{index}")
        for index, mixer_plans in enumerate(plans)
    ]


def streaming_tuple_mix_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    num_mixers: int,
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
    executor: Optional[Executor] = None,
    pipeline: Optional[PipelineSpec] = None,
) -> TupleCascade:
    """The streaming counterpart of :func:`tuple_mix_cascade`.

    Bit-identical to the serial cascade for a fixed randomness tape (plans
    are drawn up front in serial order; everything downstream of the draws is
    deterministic), but mixers overlap: mixer *i+1* consumes output shards
    while mixer *i* still computes its shadow proof.
    """
    items = list(inputs)
    spec = pipeline if pipeline is not None else PipelineSpec(streaming=True)
    if not spec.streaming or not items or num_mixers == 0:
        return tuple_mix_cascade(elgamal, public_key, items, num_mixers, rounds, executor=executor)
    ex = resolve_executor(executor)
    ex.warm()  # fork any process pool before pipeline threads exist
    plans = plan_tuple_cascade(elgamal, len(items), len(items[0]), num_mixers, rounds)
    boundaries = shard_boundaries(len(items), spec.shard_size)
    stages = make_mixer_stages(elgamal, public_key, plans, boundaries, executor=ex)
    StreamPipeline(stages, queue_depth=spec.queue_depth, name="mix-cascade").run(
        iter_shards(items, spec.shard_size)
    )
    return TupleCascade(stages=[stage.result for stage in stages])


def _verify_stage_args(args) -> bool:
    """Unpack one whole-stage verification task — module-level for pickling."""
    return _verify_stage(*args)


def streaming_verify_tuple_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    cascade: TupleCascade,
    executor: Optional[Executor] = None,
    pipeline: Optional[PipelineSpec] = None,
    batch: bool = True,
) -> bool:
    """Stage-parallel cascade verification with first-failure cancellation.

    Streams the per-stage shuffle checks (the same task granularity — and
    thus the same one-copy-of-inputs-per-stage serialization cost — as
    :func:`verify_tuple_cascade`) through the pipeline scheduler, and
    cancels outstanding stages as soon as one fails: an auditor rejecting a
    corrupted transcript pays for the failing stage, not the whole cascade.
    """
    spec = pipeline if pipeline is not None else PipelineSpec(streaming=True)
    if not spec.streaming:
        return verify_tuple_cascade(elgamal, public_key, inputs, cascade, executor=executor, batch=batch)
    tasks = []
    current = list(inputs)
    for stage in cascade.stages:
        tasks.append((elgamal, public_key, current, stage, batch))
        current = stage.outputs
    if not tasks:
        return True
    ex = resolve_executor(executor)
    ex.warm()
    verdicts: List[bool] = []

    def _stop_on_failure(shard: Shard) -> None:
        verdicts.extend(shard.items)
        if not all(shard.items):
            raise StopPipeline()

    # One shard per worker-complement of stages: the executor fans out within
    # a shard (full parallelism, like the serial verifier), cancellation cuts
    # between shards.
    shard_size = min(max(1, ex.num_workers), len(tasks))
    StreamPipeline(
        [MapStage(_verify_stage_args, executor=ex, name="verify-stage", chunksize=1)],
        queue_depth=spec.queue_depth,
        name="verify-cascade",
    ).run(iter_shards(tasks, shard_size), consume=_stop_on_failure)
    return len(verdicts) == len(tasks) and all(verdicts)
