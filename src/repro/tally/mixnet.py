"""Verifiable mixing of ciphertext tuples.

The tally mixes *pairs* — ``(encrypted vote, encrypted credential key)`` — so
the anonymizing permutation must be applied consistently across the tuple
while each component is independently re-encrypted.  This module generalizes
the shadow-mix proof of :mod:`repro.crypto.shuffle` from single ciphertexts to
fixed-arity tuples; the proof structure (commit to K shadow mixes, open the
input- or output-side mapping per Fiat–Shamir coin) is identical.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import GroupElement
from repro.crypto.hashing import sha256
from repro.crypto.shuffle import DEFAULT_SOUNDNESS_ROUNDS, random_permutation
from repro.errors import VerificationError

CiphertextTuple = Tuple[ElGamalCiphertext, ...]


@dataclass(frozen=True)
class TupleOpening:
    """A revealed half of one shadow round (permutation + per-component randomness)."""

    permutation: List[int]
    randomness: List[List[int]]  # randomness[i][k] refreshes component k of item i


@dataclass(frozen=True)
class TupleShadowRound:
    shadow: List[CiphertextTuple]
    opens_input_side: bool
    opening: TupleOpening


@dataclass(frozen=True)
class TupleShuffle:
    """A mixer's tuple shuffle with its shadow-mix proof."""

    outputs: List[CiphertextTuple]
    rounds: List[TupleShadowRound]


def _reencrypt_tuple(
    elgamal: ElGamal,
    public_key: GroupElement,
    item: CiphertextTuple,
    randomness: Sequence[int],
) -> CiphertextTuple:
    return tuple(
        elgamal.reencrypt(public_key, component, r) for component, r in zip(item, randomness)
    )


def _shuffle_once(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
) -> Tuple[List[CiphertextTuple], List[int], List[List[int]]]:
    n = len(inputs)
    arity = len(inputs[0]) if inputs else 0
    permutation = random_permutation(n)
    randomness = [[elgamal.group.random_scalar() for _ in range(arity)] for _ in range(n)]
    outputs = [
        _reencrypt_tuple(elgamal, public_key, inputs[source], randomness[position])
        for position, source in enumerate(permutation)
    ]
    return outputs, permutation, randomness


def _tuple_bytes(item: CiphertextTuple) -> bytes:
    return b"".join(component.to_bytes() for component in item)


def _challenge_bits(
    inputs: Sequence[CiphertextTuple],
    outputs: Sequence[CiphertextTuple],
    shadows: Sequence[Sequence[CiphertextTuple]],
) -> List[bool]:
    seed = sha256(
        b"tuple-shuffle-rounds",
        *[_tuple_bytes(item) for item in inputs],
        *[_tuple_bytes(item) for item in outputs],
        *[_tuple_bytes(item) for shadow in shadows for item in shadow],
    )
    bits: List[bool] = []
    counter = 0
    while len(bits) < len(shadows):
        block = sha256(seed, counter.to_bytes(4, "big"))
        for byte in block:
            for shift in range(8):
                bits.append(bool((byte >> shift) & 1))
                if len(bits) == len(shadows):
                    return bits
        counter += 1
    return bits


def shuffle_tuples_with_proof(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
) -> TupleShuffle:
    """Shuffle ciphertext tuples with a cut-and-choose proof."""
    outputs, permutation, randomness = _shuffle_once(elgamal, public_key, inputs)

    shadows: List[List[CiphertextTuple]] = []
    shadow_perms: List[List[int]] = []
    shadow_rands: List[List[List[int]]] = []
    for _ in range(rounds):
        shadow, perm, rand = _shuffle_once(elgamal, public_key, inputs)
        shadows.append(shadow)
        shadow_perms.append(perm)
        shadow_rands.append(rand)

    coins = _challenge_bits(inputs, outputs, shadows)
    order = elgamal.group.order
    arity = len(inputs[0]) if inputs else 0
    proof_rounds: List[TupleShadowRound] = []
    inverse_perms = []
    for perm in shadow_perms:
        inverse = [0] * len(perm)
        for position, source in enumerate(perm):
            inverse[source] = position
        inverse_perms.append(inverse)

    for index in range(rounds):
        if coins[index]:
            opening = TupleOpening(permutation=shadow_perms[index], randomness=shadow_rands[index])
        else:
            bridge = [inverse_perms[index][permutation[i]] for i in range(len(inputs))]
            delta = [
                [
                    (randomness[i][k] - shadow_rands[index][bridge[i]][k]) % order
                    for k in range(arity)
                ]
                for i in range(len(inputs))
            ]
            opening = TupleOpening(permutation=bridge, randomness=delta)
        proof_rounds.append(
            TupleShadowRound(shadow=shadows[index], opens_input_side=coins[index], opening=opening)
        )
    return TupleShuffle(outputs=outputs, rounds=proof_rounds)


def _check_mapping(
    elgamal: ElGamal,
    public_key: GroupElement,
    sources: Sequence[CiphertextTuple],
    targets: Sequence[CiphertextTuple],
    opening: TupleOpening,
) -> bool:
    if sorted(opening.permutation) != list(range(len(sources))):
        return False
    if len(opening.randomness) != len(sources) or len(targets) != len(sources):
        return False
    for position, source_index in enumerate(opening.permutation):
        expected = _reencrypt_tuple(elgamal, public_key, sources[source_index], opening.randomness[position])
        if expected != targets[position]:
            return False
    return True


def verify_tuple_shuffle(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    shuffle: TupleShuffle,
) -> bool:
    """Verify a tuple-shuffle proof."""
    shadows = [round_.shadow for round_ in shuffle.rounds]
    coins = _challenge_bits(inputs, shuffle.outputs, shadows)
    for index, round_ in enumerate(shuffle.rounds):
        if round_.opens_input_side != coins[index]:
            return False
        if round_.opens_input_side:
            ok = _check_mapping(elgamal, public_key, inputs, round_.shadow, round_.opening)
        else:
            ok = _check_mapping(elgamal, public_key, round_.shadow, shuffle.outputs, round_.opening)
        if not ok:
            return False
    return True


@dataclass(frozen=True)
class TupleCascade:
    """A cascade of tuple shuffles (one per tallier, the paper uses four)."""

    stages: List[TupleShuffle]

    @property
    def outputs(self) -> List[CiphertextTuple]:
        return self.stages[-1].outputs if self.stages else []


def tuple_mix_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    num_mixers: int,
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
) -> TupleCascade:
    stages: List[TupleShuffle] = []
    current = list(inputs)
    for _ in range(num_mixers):
        stage = shuffle_tuples_with_proof(elgamal, public_key, current, rounds=rounds)
        stages.append(stage)
        current = stage.outputs
    return TupleCascade(stages=stages)


def verify_tuple_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    cascade: TupleCascade,
) -> bool:
    current = list(inputs)
    for stage in cascade.stages:
        if not verify_tuple_shuffle(elgamal, public_key, current, stage):
            return False
        current = stage.outputs
    return True


def assert_valid_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextTuple],
    cascade: TupleCascade,
) -> None:
    if not verify_tuple_cascade(elgamal, public_key, inputs, cascade):
        raise VerificationError("tuple mix cascade failed verification")
