"""The cluster wire protocol: length-prefixed, versioned, typed frames.

Everything that crosses a machine boundary in :mod:`repro.cluster` is one
:class:`Frame` — a typed header plus a codec-encoded payload — sent over a
plain TCP socket.  The format is deliberately tiny:

    ``!4sBBI`` header: magic ``b"RPCL"``, protocol version, frame kind,
    payload length — followed by exactly that many payload bytes.

* **Typed frames.**  :class:`FrameKind` enumerates the whole vocabulary:
  ``CHALLENGE``/``HELLO``/``WELCOME`` for enrollment, ``TASK``/``RESULT``/
  ``ERROR`` for work, ``HEARTBEAT`` for liveness, ``SHUTDOWN`` for orderly
  exit.  An unknown kind byte is a protocol error, not a dispatch miss.
* **Version negotiation.**  Every header carries :data:`PROTOCOL_VERSION`;
  :func:`recv_frame` rejects mismatched frames immediately, and the
  enrollment handshake additionally exchanges versions in the payload so
  the *reject message* can name both sides' versions instead of dying on a
  framing error mid-stream.
* **Codec seam.**  Payload encoding is pluggable through :class:`Codec`;
  the default :class:`PickleCodec` is what lets arbitrary picklable work
  functions, group elements and ledger records travel.  Pickle over a
  socket is remote code execution by design — see :func:`hello_mac` and
  the README's security caveats: the enrollment MAC authenticates *who may
  speak*, it does not make the payloads themselves safe against a
  malicious peer.  Deployments that need a constrained vocabulary can
  install a different codec on both sides.
* **Signed hello.**  In the spirit of attested-runtime enrollment (WaTZ),
  a worker proves knowledge of the shared cluster secret by MACing the
  coordinator's challenge nonce together with its announced identity and
  protocol version (:func:`hello_mac`, HMAC-SHA256 via
  :mod:`repro.crypto.mac`).  No TEE, no key exchange — just enough that a
  stray process cannot enroll into a secret-bearing cluster by accident.
"""

from __future__ import annotations

import enum
import pickle
import socket
import struct
from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.mac import mac_sign, mac_verify
from repro.errors import ClusterError

#: Bump on any incompatible change to the frame format or handshake.
PROTOCOL_VERSION = 1

#: Frame magic: rejects cross-talk from non-cluster peers at the first read.
MAGIC = b"RPCL"

_HEADER = struct.Struct("!4sBBI")

#: Refuse to allocate unbounded buffers for a corrupt/hostile length field.
MAX_FRAME_BYTES = 512 * 1024 * 1024


class FrameKind(enum.IntEnum):
    """The complete frame vocabulary of protocol version 1."""

    CHALLENGE = 1  # coordinator → worker: enrollment nonce + version
    HELLO = 2      # worker → coordinator: identity, slots, nonce, MACed challenge
    WELCOME = 3    # coordinator → worker: enrollment accepted (+ MACed worker nonce)
    TASK = 4       # coordinator → worker: one work item (see TASK_TRACE_INDEX)
    RESULT = 5     # worker → coordinator: a task's return value
    ERROR = 6      # either direction: a task failure or a handshake reject
    HEARTBEAT = 7  # worker → coordinator: liveness (also the ready signal)
    SHUTDOWN = 8   # coordinator → worker: drain and exit
    WARM = 9       # coordinator → worker: post-auth precompute warm work


#: A ``TASK`` payload is ``(key, mode, fn, data)`` with one optional trailing
#: element at this index: the dispatching call's W3C-style traceparent string
#: (:func:`repro.telemetry.format_traceparent`).  Workers must accept both
#: lengths — the field is additive within protocol version 1, and a tracing
#: coordinator interoperates with workers that ignore it.
TASK_TRACE_INDEX = 4


@dataclass(frozen=True)
class Frame:
    """One protocol message: a typed kind plus its codec-decoded payload."""

    kind: FrameKind
    payload: Any = None


class ConnectionClosed(ClusterError):
    """The peer closed the connection (EOF mid-header or mid-payload)."""


class Codec:
    """The payload (de)serialization seam.

    Subclasses override :meth:`encode`/:meth:`decode`; both sides of a
    connection must agree on the codec (the protocol does not negotiate it —
    a codec mismatch surfaces as a decode error, caught and reported as a
    :class:`~repro.errors.ClusterError`).
    """

    name = "abstract"

    def encode(self, payload: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        raise NotImplementedError


class PickleCodec(Codec):
    """The default codec: pickle at the highest shared protocol.

    Pickle is what makes arbitrary (module-level) work functions and crypto
    objects transportable; it is also why the enrollment handshake exists.
    Never point a coordinator at an untrusted network without the shared
    secret, and never run a worker against an untrusted coordinator.
    """

    name = "pickle"

    def encode(self, payload: Any) -> bytes:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


#: The codec used when callers do not supply one.
PICKLE_CODEC = PickleCodec()


class _RestrictedUnpickler(pickle.Unpickler):
    """Refuses every global: only primitive containers can decode."""

    def find_class(self, module: str, name: str) -> Any:  # noqa: ARG002 - signature fixed by pickle
        raise pickle.UnpicklingError(
            f"handshake frames may not reference globals ({module}.{name})"
        )


class HandshakeCodec(PickleCodec):
    """Pickle limited to primitives, for *pre-authentication* frames.

    CHALLENGE and HELLO payloads are plain dicts of bytes/str/int/bool, so
    they decode without ``find_class`` — but a hostile peer could send a
    pickle whose deserialization itself executes code, *before* the MAC is
    ever checked.  Decoding the handshake with a globals-free unpickler
    closes that hole: the signed hello then genuinely gates everything the
    full codec is willing to execute.  (Encoding is unchanged — honest
    handshake payloads are primitives either way.)
    """

    name = "handshake"

    def decode(self, data: bytes) -> Any:
        import io

        return _RestrictedUnpickler(io.BytesIO(data)).load()


#: The pre-authentication codec both handshake sides decode with.
HANDSHAKE_CODEC = HandshakeCodec()


def handshake_codec(codec: Codec) -> Codec:
    """The codec to *decode* pre-auth frames with, given the session codec.

    Pickle sessions harden to :data:`HANDSHAKE_CODEC`; a custom codec is
    trusted to define its own safety story and is used as-is.
    """
    return HANDSHAKE_CODEC if isinstance(codec, PickleCodec) else codec


def send_frame(sock: socket.socket, frame: Frame, codec: Codec = PICKLE_CODEC) -> None:
    """Serialize and send one frame; raises :class:`ClusterError` on failure."""
    try:
        body = codec.encode(frame.payload)
    except Exception as exc:
        raise ClusterError(f"cannot encode {frame.kind.name} payload: {exc!r}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"{frame.kind.name} payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(frame.kind), len(body))
    sock.sendall(header + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, codec: Codec = PICKLE_CODEC) -> Frame:
    """Read exactly one frame; validates magic, version, kind and length."""
    header = _recv_exact(sock, _HEADER.size)
    magic, version, kind_byte, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ClusterError(f"bad frame magic {magic!r} (not a repro.cluster peer?)")
    if version != PROTOCOL_VERSION:
        raise ClusterError(
            f"peer speaks cluster protocol v{version}, this build speaks v{PROTOCOL_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise ClusterError(f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound")
    try:
        kind = FrameKind(kind_byte)
    except ValueError:
        raise ClusterError(f"unknown frame kind {kind_byte}") from None
    body = _recv_exact(sock, length)
    try:
        payload = codec.decode(body)
    except ConnectionClosed:
        raise
    except Exception as exc:
        raise ClusterError(f"cannot decode {kind.name} payload: {exc!r}") from exc
    return Frame(kind=kind, payload=payload)


def expect_frame(sock: socket.socket, kind: FrameKind, codec: Codec = PICKLE_CODEC) -> Frame:
    """Receive one frame and require it to be of ``kind``.

    An incoming ``ERROR`` frame is translated into a raised
    :class:`ClusterError` carrying the peer's message, so handshake rejects
    surface with their real reason instead of as an unexpected-kind error.
    """
    frame = recv_frame(sock, codec)
    if frame.kind is FrameKind.ERROR and kind is not FrameKind.ERROR:
        detail = frame.payload[1] if isinstance(frame.payload, tuple) else frame.payload
        raise ClusterError(f"peer reported an error during {kind.name.lower()}: {detail}")
    if frame.kind is not kind:
        raise ClusterError(f"expected a {kind.name} frame, received {frame.kind.name}")
    return frame


# ---------------------------------------------------------------------------
# The signed hello
# ---------------------------------------------------------------------------


def _hello_message(nonce: bytes, worker_id: str, slots: int) -> bytes:
    """The canonical byte string both sides MAC — one construction, no drift."""
    return b"|".join(
        [
            b"repro-cluster-hello",
            str(PROTOCOL_VERSION).encode(),
            nonce,
            worker_id.encode(),
            str(slots).encode(),
        ]
    )


def hello_mac(secret: bytes, nonce: bytes, worker_id: str, slots: int) -> bytes:
    """The worker's enrollment tag: HMAC over the challenge and its identity.

    Binding the announced ``worker_id``/``slots`` (not just the nonce) means
    a coordinator admitting the worker also authenticated what it claimed to
    be, and the fresh nonce makes every tag single-use — replaying a captured
    hello against a new connection fails its new challenge.
    """
    return mac_sign(secret, _hello_message(nonce, worker_id, slots))


def verify_hello(secret: bytes, nonce: bytes, worker_id: str, slots: int, tag: bytes) -> bool:
    """Constant-time check of a worker's enrollment tag."""
    return mac_verify(secret, _hello_message(nonce, worker_id, slots), tag)


def _welcome_message(worker_nonce: bytes, worker_id: str) -> bytes:
    return b"|".join(
        [
            b"repro-cluster-welcome",
            str(PROTOCOL_VERSION).encode(),
            worker_nonce,
            worker_id.encode(),
        ]
    )


def welcome_mac(secret: bytes, worker_nonce: bytes, worker_id: str) -> bytes:
    """The coordinator's half of mutual authentication.

    MACing the *worker's* fresh nonce (and the identity the coordinator is
    assigning) proves the coordinator knows the shared secret too, so a
    worker never accepts executable payloads — warm work, tasks — from a
    peer that merely squats on the right address.
    """
    return mac_sign(secret, _welcome_message(worker_nonce, worker_id))


def verify_welcome(secret: bytes, worker_nonce: bytes, worker_id: str, tag: bytes) -> bool:
    """Constant-time check of the coordinator's welcome tag."""
    return mac_verify(secret, _welcome_message(worker_nonce, worker_id), tag)


def parse_address(text: str) -> "tuple[str, int]":
    """Parse ``host:port`` (the worker CLI and spec-string address grammar)."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ClusterError(f"invalid cluster address {text!r}; expected host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterError(f"invalid port in cluster address {text!r}") from None
    if not 0 <= port <= 65535:
        raise ClusterError(f"port out of range in cluster address {text!r}")
    return host, port


def format_address(address: "tuple[str, int]") -> str:
    return f"{address[0]}:{address[1]}"


def decode_secret(text: Optional[str]) -> Optional[bytes]:
    """Decode the ``REPRO_CLUSTER_SECRET`` environment form (hex) to key bytes.

    Returns ``None`` for unset/empty values — the unauthenticated mode used
    by loopback test clusters that generate and pass their own secret.
    """
    if not text:
        return None
    try:
        return bytes.fromhex(text)
    except ValueError:
        # Tolerate raw (non-hex) secrets so hand-run deployments can use any string.
        return text.encode()
