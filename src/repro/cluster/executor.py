"""``RemoteExecutor``: the executor contract over a worker cluster.

This module adapts :class:`~repro.cluster.coordinator.ClusterCoordinator`
to the :class:`~repro.runtime.executor.Executor` surface, so
``executor_spec`` strings select multi-node execution exactly the way they
select thread or process pools — every ``parallel_map``/``parallel_starmap``
call site in the tally, mixnet, filter, decrypt and audit layers works
unchanged:

* ``"remote:host:port[,host:port…]"`` — listen on the given address(es) and
  dispatch to whatever worker daemons enroll
  (``python -m repro.cluster.worker --connect host:port`` on each machine,
  with ``REPRO_CLUSTER_SECRET`` shared out of band);
* ``"cluster:N"`` — loopback convenience for tests, CI and benchmarks: bind
  an ephemeral port, generate a fresh secret, and auto-spawn ``N`` local
  worker subprocesses that enroll against it.  Workers spawn lazily (on
  ``warm()`` or first dispatch), so config code can attach warm material —
  group factories, hot bases — before any worker enrolls.

Dispatch always goes through the coordinator, even with a single enrolled
worker: ``cluster:1`` measures true remoting overhead (the bench gate), and
"check shards executed on remote workers" means exactly that.  Order
preservation and worker-exception transparency are inherited from the
coordinator, so results stay bit-identical to the serial reference.
"""

from __future__ import annotations

import os
import secrets
import subprocess
import sys
import threading
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.coordinator import (
    DEFAULT_ENROLL_TIMEOUT,
    DEFAULT_TASK_TIMEOUT,
    ClusterCoordinator,
)
from repro.cluster.protocol import decode_secret, format_address, parse_address
from repro import telemetry
from repro.errors import ClusterError
from repro.runtime.executor import (
    Executor,
    _apply_chunk,
    _star_chunk,
    chunk_evenly,
)

#: Chunks handed out per worker slot; matches the in-process backends'
#: load-balancing granularity so chunk boundaries (and therefore nothing
#: observable) are the only difference between backends.
CHUNKS_PER_SLOT = 4


def spawn_local_worker(
    address: Tuple[str, int],
    secret: bytes,
    executor_spec: str = "serial",
    worker_id: Optional[str] = None,
) -> "subprocess.Popen[bytes]":
    """Spawn one worker daemon subprocess enrolled against ``address``.

    The child inherits the parent environment (so ``PYTHONPATH`` and
    ``REPRO_PRECOMPUTE_CACHE`` carry over) with the enrollment secret
    injected as hex through ``REPRO_CLUSTER_SECRET`` — via the environment,
    not argv, so it never shows up in process listings.
    """
    env = dict(os.environ)
    env["REPRO_CLUSTER_SECRET"] = secret.hex()
    # Workers must not inherit the parent's telemetry spec: a jsonl spec
    # would have every worker write the coordinator's trace file directly
    # (double-counting what the RESULT piggyback already merges).  The
    # coordinator's WELCOME flag turns worker-side buffering on instead.
    env.pop("REPRO_TELEMETRY", None)
    command = [
        sys.executable, "-m", "repro.cluster.worker",
        "--connect", format_address(address),
        "--executor", executor_spec,
    ]
    if worker_id:
        command += ["--id", worker_id]
    return subprocess.Popen(command, env=env)


class RemoteExecutor(Executor):
    """An :class:`Executor` whose workers live behind the wire protocol."""

    name = "remote"

    def __init__(
        self,
        coordinator: Optional[ClusterCoordinator] = None,
        listen: Sequence[Tuple[str, int]] = (("127.0.0.1", 0),),
        secret: Optional[bytes] = None,
        min_workers: int = 1,
        enroll_timeout: float = DEFAULT_ENROLL_TIMEOUT,
        rejoin_timeout: float = 10.0,
        spawn_workers: int = 0,
        worker_executor_spec: str = "serial",
        task_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT,
    ) -> None:
        if coordinator is None:
            coordinator = ClusterCoordinator(listen=listen, secret=secret, task_timeout=task_timeout)
        self.coordinator = coordinator
        self.min_workers = max(1, min_workers)
        self.enroll_timeout = enroll_timeout
        #: How long a fully-degraded cluster (every worker lost after a
        #: completed enrollment) waits for a re-enrollment before raising.
        self.rejoin_timeout = rejoin_timeout
        self._secret = secret
        self._spawn_workers = spawn_workers
        self._worker_executor_spec = worker_executor_spec
        self._spawn_lock = threading.Lock()
        self._spawned = False
        self._enrollment_complete = False
        #: The auto-spawned worker subprocesses (fault tests kill these).
        self.worker_processes: List["subprocess.Popen[bytes]"] = []

    # ------------------------------------------------------------------ lifecycle

    def _ensure_workers(self) -> None:
        """Spawn the local worker complement once (lazily, for cluster:N)."""
        if self._spawn_workers <= 0:
            return
        with self._spawn_lock:
            if self._spawned:
                return
            if self._secret is None:
                raise ClusterError("auto-spawned clusters require an enrollment secret")
            for index in range(self._spawn_workers):
                self.worker_processes.append(
                    spawn_local_worker(
                        self.coordinator.address,
                        self._secret,
                        executor_spec=self._worker_executor_spec,
                        worker_id=f"local-{index}",
                    )
                )
            self._spawned = True

    def warm(self) -> None:
        """Spawn (if configured) and block until the worker floor is enrolled.

        The remote analogue of pool pre-forking: the tally calls ``warm()``
        before starting pipeline stage threads, and here it doubles as the
        enrollment barrier — afterwards at least ``min_workers`` daemons
        have honoured their warm lists and sent the ready heartbeat.  The
        full floor is only demanded for the *first* barrier; once the
        cluster has been up, a degraded complement (workers died, shards
        reassigned) keeps dispatching on whoever is left rather than
        stalling for replacements that may never enroll.
        """
        self._ensure_workers()
        if not self._enrollment_complete:
            floor = max(self.min_workers, self._spawn_workers, 1)
            # The enrollment barrier is the remote analogue of pool spin-up;
            # the span makes cold-start cost visible next to executor.warm.
            with telemetry.span("cluster.warm", backend=self.name, workers=floor):
                self.coordinator.wait_for_workers(floor, timeout=self.enroll_timeout)
            self._enrollment_complete = True
            return
        if self.coordinator.num_workers > 0:
            return
        if (
            self._spawned
            and self.worker_processes
            and all(process.poll() is not None for process in self.worker_processes)
        ):
            raise ClusterError(
                "all cluster workers lost (every spawned worker subprocess exited)"
            )
        try:
            self.coordinator.wait_for_workers(1, timeout=self.rejoin_timeout)
        except ClusterError as exc:
            raise ClusterError(
                "all cluster workers lost and none re-enrolled within "
                f"{self.rejoin_timeout:.0f}s"
            ) from exc

    def close(self) -> None:
        self.coordinator.shutdown()
        for process in self.worker_processes:
            if process.poll() is None:
                process.terminate()
        for process in self.worker_processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait(timeout=10)
        self.worker_processes.clear()

    # ------------------------------------------------------------------ surface

    @property
    def num_workers(self) -> int:
        # Before enrollment (lazy spawn) report the configured complement so
        # shard-count heuristics (default_shards) plan for the real cluster.
        enrolled = self.coordinator.total_slots
        if enrolled:
            return enrolled
        return max(self.min_workers, self._spawn_workers, 1)

    def set_warm(self, groups: Optional[Sequence[Any]] = None, bases: Optional[Sequence[Any]] = None) -> None:
        """Advertise precompute warm work to workers (see coordinator docs)."""
        self.coordinator.set_warm(groups=groups, bases=bases)

    # ------------------------------------------------------------------ dispatch

    def _remote_fan_out(self, mode: str, fn: Callable, items: Any, chunksize: Optional[int]) -> List[Any]:
        work = list(items)
        if not work:
            return []
        self.warm()
        if chunksize is not None and chunksize > 0:
            num_chunks = (len(work) + chunksize - 1) // chunksize
        else:
            num_chunks = max(1, self.num_workers) * CHUNKS_PER_SLOT
        chunks = chunk_evenly(work, num_chunks)
        with telemetry.span(
            "executor.map", backend=self.name, op=mode, items=len(work), chunks=len(chunks)
        ):
            shard_results = self.coordinator.run_tasks([(mode, fn, chunk) for chunk in chunks])
        results: List[Any] = []
        for shard in shard_results:
            results.extend(shard)
        return results

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any], chunksize: Optional[int] = None
    ) -> List[Any]:
        return self._remote_fan_out("map", fn, items, chunksize)

    def starmap(
        self, fn: Callable[..., Any], items: Iterable[Any], chunksize: Optional[int] = None
    ) -> List[Any]:
        return self._remote_fan_out("star", fn, items, chunksize)

    def _run_chunks(
        self, applier: Callable[..., Any], fn: Callable[..., Any], chunks: Sequence[Any]
    ) -> List[Any]:
        # Reached only by callers bypassing map/starmap with a custom applier;
        # translate the two runtime appliers, ship anything else as a call.
        if applier is _apply_chunk:
            return self.coordinator.run_tasks([("map", fn, chunk) for chunk in chunks])
        if applier is _star_chunk:
            return self.coordinator.run_tasks([("star", fn, chunk) for chunk in chunks])
        return self.coordinator.run_tasks([("call", applier, (fn, chunk)) for chunk in chunks])

    def submit_calls(
        self,
        fn: Callable[..., Any],
        argument_tuples: Sequence[Tuple[Any, ...]],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """One remote invocation per argument tuple; results in input order.

        The cursor feeds' entry point: each ledger page (or audit check
        shard) becomes exactly one TASK frame, and ``on_result`` fires as
        results land so the feed can advance its ack watermark before the
        whole group completes.
        """
        self.warm()
        return self.coordinator.run_tasks(
            [("call", fn, tuple(args)) for args in argument_tuples], on_result=on_result
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteExecutor(address={format_address(self.coordinator.address)}, "
            f"workers={self.coordinator.num_workers}, slots={self.coordinator.total_slots})"
        )


# ---------------------------------------------------------------------------
# Spec parsing (the remote arm of executor_from_spec)
# ---------------------------------------------------------------------------


def remote_executor_from_spec(spec: str) -> RemoteExecutor:
    """Build a :class:`RemoteExecutor` from an ``executor_spec`` string.

    Accepted forms::

        "cluster:N"                   auto-spawn N loopback worker subprocesses
        "remote:host:port"            listen at host:port for worker enrollment
        "remote:h1:p1,h2:p2"          … on several interfaces/ports

    ``remote`` coordinators take their enrollment secret from
    ``REPRO_CLUSTER_SECRET`` (hex); ``cluster`` coordinators generate a
    fresh one per executor and hand it to their spawned workers through the
    environment.  Two more environment knobs tune spec-built executors:
    ``REPRO_CLUSTER_ENROLL_TIMEOUT`` (seconds to wait for the worker floor,
    default 120) and ``REPRO_CLUSTER_TASK_TIMEOUT`` (seconds an in-flight
    task may run before its worker is presumed stuck and the shard is
    reassigned; unset disables — a deadlocked work function keeps
    heartbeating, so only this timeout can unstick it).
    """
    text = (spec or "").strip()
    kind, _, rest = text.partition(":")
    kind = kind.lower()
    if kind == "cluster":
        try:
            count = int(rest)
        except ValueError:
            raise ValueError(f"invalid worker count in executor spec {spec!r}") from None
        if count < 1:
            raise ValueError("cluster worker count must be >= 1")
        secret = secrets.token_bytes(32)
        return RemoteExecutor(
            listen=(("127.0.0.1", 0),),
            secret=secret,
            min_workers=count,
            spawn_workers=count,
        )
    if kind == "remote":
        if not rest:
            raise ValueError(f"executor spec {spec!r} needs at least one host:port")
        try:
            addresses = tuple(parse_address(part) for part in rest.split(",") if part)
        except ClusterError as exc:
            raise ValueError(str(exc)) from None
        secret = decode_secret(os.environ.get("REPRO_CLUSTER_SECRET"))
        return RemoteExecutor(listen=addresses, secret=secret, min_workers=1)
    raise ValueError(f"unknown remote executor spec {spec!r}")
