"""Multi-node tally and audit: remote-worker executors fed by ledger cursors.

The last ROADMAP scaling item made concrete: :mod:`repro.runtime`'s
sharding layer is location-transparent, the ledger exposes cursor-paged
reads, and audit plans are picklable — this package adds the missing
piece, workers on other machines:

* :mod:`repro.cluster.protocol` — the length-prefixed, versioned wire
  format (typed frames, pluggable codec, signed-hello enrollment);
* :mod:`repro.cluster.coordinator` — enrollment, ordered dispatch with
  idempotent at-least-once reassignment, liveness reaping;
* :mod:`repro.cluster.executor` — :class:`RemoteExecutor` behind the
  ``executor_spec`` strings ``"remote:host:port[,…]"`` and ``"cluster:N"``;
* :mod:`repro.cluster.worker` — the daemon
  (``python -m repro.cluster.worker --connect host:port``) that warms
  precompute tables before serving shards on a local executor;
* :mod:`repro.cluster.feeds` — cursor-native work feeds (ledger pages as
  tasks, cumulative cursor acks).

Security model in one line: the signed hello keeps strangers out, but the
pickle codec trusts everyone inside — run clusters on trusted networks
only (see the README's multi-node section).
"""

from typing import Any

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.executor import RemoteExecutor, remote_executor_from_spec, spawn_local_worker
from repro.cluster.feeds import CursorAckTracker, cluster_valid_ballots, supports_cursor_tasks
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Codec,
    Frame,
    FrameKind,
    PickleCodec,
    recv_frame,
    send_frame,
)

def __getattr__(name: str) -> Any:
    # WorkerDaemon is resolved lazily: eagerly importing repro.cluster.worker
    # here would race ``python -m repro.cluster.worker`` (runpy warns when the
    # module to run is already in sys.modules via its package import).
    if name == "WorkerDaemon":
        from repro.cluster.worker import WorkerDaemon

        return WorkerDaemon
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ClusterCoordinator",
    "Codec",
    "CursorAckTracker",
    "Frame",
    "FrameKind",
    "PROTOCOL_VERSION",
    "PickleCodec",
    "RemoteExecutor",
    "WorkerDaemon",
    "cluster_valid_ballots",
    "recv_frame",
    "remote_executor_from_spec",
    "send_frame",
    "spawn_local_worker",
    "supports_cursor_tasks",
]
