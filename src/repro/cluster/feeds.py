"""Cursor-native work feeds: the ledger cursor API as a cluster work queue.

The ROADMAP's design point for the multi-node tally was that *board
sharding and worker placement stay independent*: the ledger's cursor-paged
``read_ballots(since, limit)`` reads are already the natural unit of
distribution, so a remote tally worker consumes exactly the shards any
local reader would — no board-side partitioning, no worker-side state.

This module supplies that feed:

* :class:`CursorAckTracker` — bookkeeping for at-least-once page dispatch:
  every page is keyed by the cursor region it covered, results may arrive
  out of order (or twice, after a reassignment), and the *acked cursor*
  watermark only advances over a contiguous prefix of completed pages.
  Everything at/before the watermark is durably processed; a coordinator
  restart could resume reading at ``acked_cursor`` without re-shipping
  completed work.
* :func:`cluster_valid_ballots` — the distributed twin of
  :meth:`repro.tally.pipeline.TallyPipeline._valid_ballots`: stream the
  ballot ledger page by page, ship each page as **one task** to a remote
  worker (batched signature verification runs worker-side), ack by cursor
  as results land, and hand back the valid records in ledger order for
  the caller to deduplicate.  Output is bit-identical to the local read:
  verification verdicts are deterministic and pages reassemble in cursor
  order regardless of completion order.

The audit layer's counterpart lives in :class:`repro.audit.api.
DistributedVerifier` — audit *plans* are picklable, so check shards ride
the same executor surface without a cursor (a plan is finite and ordered
already); this module stays ledger-specific.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.ledger.api import BoardView, Cursor, GENESIS_CURSOR
from repro.ledger.records import BallotRecord
from repro.runtime.batch import verify_signatures


def _check_page(records: Sequence[BallotRecord]) -> List[BallotRecord]:
    """Verify one ledger page's ballot signatures (runs on a worker).

    Module-level and deterministic: the RLC batch verifier's verdicts do
    not depend on its coefficients, so a reassigned page re-executes to
    the same record list and at-least-once delivery stays bit-identical.
    """
    from repro.tally.pipeline import _ballot_signature_items

    verdicts = verify_signatures(_ballot_signature_items(list(records)))
    return [record for record, ok in zip(records, verdicts) if ok]


class CursorAckTracker:
    """Contiguous-prefix acknowledgement over cursor-keyed pages.

    ``register`` declares the pages in read order (each with the cursor the
    *next* read would resume from); ``ack`` marks one complete.  The
    watermark :attr:`acked_cursor` is the resume cursor of the last page in
    the fully-acknowledged prefix — pages acked out of order park until the
    gap before them closes, exactly like TCP cumulative ACKs.
    """

    def __init__(self, start: Cursor = GENESIS_CURSOR) -> None:
        self._lock = threading.Lock()
        self._next_cursors: List[Cursor] = []
        self._acked: List[bool] = []
        self._prefix = 0
        self._start = start

    def register(self, next_cursor: Cursor) -> int:
        """Declare the next page (in read order); returns its page index."""
        with self._lock:
            self._next_cursors.append(next_cursor)
            self._acked.append(False)
            return len(self._next_cursors) - 1

    def ack(self, index: int) -> Cursor:
        """Mark page ``index`` processed; returns the (possibly advanced) watermark."""
        with self._lock:
            self._acked[index] = True
            while self._prefix < len(self._acked) and self._acked[self._prefix]:
                self._prefix += 1
            return self.acked_cursor_locked()

    def acked_cursor_locked(self) -> Cursor:
        return self._next_cursors[self._prefix - 1] if self._prefix else self._start

    @property
    def acked_cursor(self) -> Cursor:
        """Everything before this cursor has been processed (contiguously)."""
        with self._lock:
            return self.acked_cursor_locked()

    @property
    def num_pending(self) -> int:
        with self._lock:
            return len(self._acked) - sum(self._acked)


def cluster_valid_ballots(
    view: BoardView,
    election_id: str,
    executor: Any,
    page_size: int = 1024,
    since: Cursor = GENESIS_CURSOR,
    on_ack: Optional[Callable[[Cursor], None]] = None,
) -> Tuple[List[BallotRecord], CursorAckTracker]:
    """Signature-check the ballot ledger on remote workers, one task per page.

    Pages stream off the cursor API in read order and each becomes a single
    ``call`` task (so one ledger page maps to one wire frame and one
    worker-side batched verification).  Dispatch is **windowed and double
    buffered**: while one window of pages (a few per worker slot) verifies
    on the workers, the caller reads the next window off the cursor — reads
    overlap remote verification, and the coordinator's footprint stays
    proportional to two windows, not the ledger.
    ``on_ack`` observes the watermark as it advances.  Returns the valid
    records in ledger order — **not** deduplicated; the caller owns dedup
    exactly as on the local path — plus the tracker, whose final watermark
    equals the last page's resume cursor (guaranteed by the time this
    returns: result callbacks complete before each window's dispatch does).
    """
    tracker = CursorAckTracker(start=since)
    valid: List[BallotRecord] = []
    window = max(1, int(getattr(executor, "num_workers", 1) or 1)) * 4
    window_args: List[Tuple[Sequence[BallotRecord]]] = []
    window_indices: List[int] = []
    in_flight: Optional[Tuple[threading.Thread, dict]] = None

    def _dispatch(args: List[Tuple], indices: List[int]) -> Tuple[threading.Thread, dict]:
        """Ship one window from a helper thread (the coordinator multiplexes
        concurrent groups), so the caller keeps reading cursor pages while
        the previous window verifies on the workers — double buffering."""
        outcome: dict = {}

        def _on_result(position: int, _value: Any) -> None:
            watermark = tracker.ack(indices[position])
            if on_ack is not None:
                on_ack(watermark)

        def _run() -> None:
            try:
                outcome["results"] = executor.submit_calls(
                    _check_page, args, on_result=_on_result
                )
            except BaseException as exc:  # noqa: BLE001 - re-raised by _collect
                outcome["error"] = exc

        thread = threading.Thread(target=_run, name="cluster-feed-dispatch", daemon=True)
        thread.start()
        return thread, outcome

    def _collect(flight: Tuple[threading.Thread, dict]) -> None:
        thread, outcome = flight
        thread.join()
        if "error" in outcome:
            raise outcome["error"]
        for page_records in outcome["results"]:
            valid.extend(page_records)

    for page in view.iter_ballot_pages(election_id=election_id, page_size=page_size, since=since):
        window_indices.append(tracker.register(page.next_cursor))
        window_args.append((page.records,))
        if len(window_args) >= window:
            if in_flight is not None:
                _collect(in_flight)
            in_flight = _dispatch(window_args, window_indices)
            window_args, window_indices = [], []
    if in_flight is not None:
        _collect(in_flight)
    if window_args:
        _collect(_dispatch(window_args, window_indices))
    return valid, tracker


def supports_cursor_tasks(executor: Any) -> bool:
    """Does this executor dispatch cursor-page tasks (i.e. is it remote)?"""
    return callable(getattr(executor, "submit_calls", None))
