"""The remote worker daemon: ``python -m repro.cluster.worker --connect host:port``.

A worker dials the coordinator, proves knowledge of the shared cluster
secret (the signed hello, see :mod:`repro.cluster.protocol`), **warms
before it works**, and then executes ``TASK`` frames one at a time on a
local :class:`~repro.runtime.executor.Executor`:

* **Warm-before-TASK.**  Enrollment is only complete once the worker has
  honoured ``REPRO_PRECOMPUTE_CACHE`` (importing :mod:`repro.runtime.
  precompute` installs the disk cache from the environment, exactly as in
  the parent process), built or loaded the fixed-base tables the
  coordinator advertised in ``WELCOME`` (group generators and hot bases
  like the election public key), and pre-spawned its local executor pool
  (:meth:`~repro.runtime.executor.Executor.warm` — so a process-backed
  worker forks while still single-threaded).  The first ``HEARTBEAT`` it
  sends is the ready signal the coordinator gates dispatch on; a freshly
  spawned subprocess therefore never serves its first shard cold.
* **Local execution.**  ``"map"``/``"star"`` tasks run through the local
  executor (``--executor serial|thread[:N]|process[:N]``), so one daemon
  can fan a shard across a whole host's cores; ``"call"`` tasks invoke a
  single function (the cursor feeds use this, one call per ledger page).
* **Error transparency.**  A task exception is pickled back in an
  ``ERROR`` frame (falling back to a :class:`~repro.errors.ClusterError`
  carrying the repr when the exception itself will not pickle), so the
  coordinator re-raises what the work function actually raised.
* **Liveness.**  A background thread heartbeats on the interval the
  coordinator announced; the daemon exits on ``SHUTDOWN``, on EOF (the
  coordinator went away), or on SIGTERM.
"""

from __future__ import annotations

import argparse
import os
import secrets
import socket
import sys
import threading
from typing import Any, List, Optional, Tuple

# Importing the precompute module honours REPRO_PRECOMPUTE_CACHE at import
# time — the satellite portability contract for freshly spawned workers.
from repro import telemetry
from repro.runtime import precompute
from repro.runtime.executor import Executor, executor_from_spec
from repro.cluster.protocol import (
    PICKLE_CODEC,
    PROTOCOL_VERSION,
    Codec,
    ConnectionClosed,
    Frame,
    FrameKind,
    decode_secret,
    expect_frame,
    handshake_codec,
    hello_mac,
    parse_address,
    recv_frame,
    send_frame,
    verify_welcome,
)
from repro.errors import ClusterError

CONNECT_TIMEOUT_SECONDS = 30.0


class WorkerDaemon:
    """One coordinator connection plus the local executor that serves it."""

    def __init__(
        self,
        address: Tuple[str, int],
        secret: Optional[bytes] = None,
        executor: Optional[Executor] = None,
        worker_id: Optional[str] = None,
        codec: Codec = PICKLE_CODEC,
    ) -> None:
        self.address = address
        self.secret = secret
        self.executor = executor if executor is not None else executor_from_spec("serial")
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.codec = codec
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._telemetry = False
        self.tasks_served = 0

    # ------------------------------------------------------------------ plumbing

    def _send(self, frame: Frame) -> None:
        # Leaf lock: serializes frame writes from the serve and heartbeat
        # threads; nothing blocks under it but the socket write itself.
        with self._send_lock:  # repro: noqa[REP004]
            sock = self._sock
            if sock is None:
                # close() ran concurrently (e.g. the heartbeat thread lost
                # the race with shutdown); report it as a transport error.
                raise ClusterError("worker connection is closed")
            send_frame(sock, frame, self.codec)  # repro: noqa[REP004]

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self._send(Frame(FrameKind.HEARTBEAT))
            except (ClusterError, OSError):
                return

    # ------------------------------------------------------------------ enrollment

    def _enroll(self) -> float:
        """Dial, handshake, warm; returns the announced heartbeat interval."""
        sock = socket.create_connection(self.address, timeout=CONNECT_TIMEOUT_SECONDS)
        sock.settimeout(CONNECT_TIMEOUT_SECONDS)
        self._sock = sock
        # Everything before mutual authentication completes is decoded with
        # the restricted handshake codec: an impostor squatting on the
        # coordinator's address must not get code execution via a payload.
        pre_auth = handshake_codec(self.codec)
        challenge = expect_frame(sock, FrameKind.CHALLENGE, pre_auth).payload or {}
        version = challenge.get("protocol_version")
        if version != PROTOCOL_VERSION:
            raise ClusterError(
                f"coordinator speaks cluster protocol v{version}, "
                f"this worker speaks v{PROTOCOL_VERSION}"
            )
        if challenge.get("authenticated") and self.secret is None:
            raise ClusterError(
                "coordinator requires an enrollment secret "
                "(set REPRO_CLUSTER_SECRET for this worker)"
            )
        if self.secret is not None and not challenge.get("authenticated"):
            raise ClusterError(
                "this worker holds an enrollment secret but the coordinator "
                "does not authenticate — refusing to enroll"
            )
        nonce = challenge.get("nonce") or b""
        # Handshake nonces are key material: draw from the CSPRNG seam the
        # determinism rule (REP002) sanctions, not ambient os.urandom.
        my_nonce = secrets.token_bytes(16)
        slots = self.executor.num_workers
        hello = {
            "protocol_version": PROTOCOL_VERSION,
            "worker_id": self.worker_id,
            "slots": slots,
            "nonce": my_nonce,
        }
        if self.secret is not None:
            hello["mac"] = hello_mac(self.secret, nonce, self.worker_id, slots)
        self._send(Frame(FrameKind.HELLO, hello))
        welcome = expect_frame(sock, FrameKind.WELCOME, pre_auth).payload or {}
        assigned_id = str(welcome.get("worker_id", self.worker_id))
        if self.secret is not None:
            tag = welcome.get("mac")
            if not isinstance(tag, bytes) or not verify_welcome(
                self.secret, my_nonce, assigned_id, tag
            ):
                raise ClusterError(
                    "coordinator failed mutual authentication (bad WELCOME tag)"
                )
        self.worker_id = assigned_id
        # A telemetry-collecting coordinator asks workers to buffer spans in
        # memory and piggyback them on RESULT frames (one merged fleet
        # snapshot); propagate=False keeps the buffering local — a worker's
        # own subprocesses must not inherit the mem spec through the env.
        self._telemetry = bool(welcome.get("telemetry"))
        if self._telemetry:
            telemetry.configure("mem", propagate=False)

        # Only now — with the coordinator authenticated — accept the
        # arbitrary-picklable warm payload, and warm before any TASK:
        # precompute tables (disk-cached when REPRO_PRECOMPUTE_CACHE points
        # somewhere) and the local pool.
        warm = expect_frame(sock, FrameKind.WARM, self.codec).payload or {}
        for factory in warm.get("groups", ()):
            try:
                precompute.warm_fixed_base(factory().generator)
            except Exception:  # noqa: BLE001 - warm work is best-effort
                continue
        for base in warm.get("bases", ()):
            try:
                precompute.warm_fixed_base(base)
            except Exception:  # noqa: BLE001 - warm work is best-effort
                continue
        self.executor.warm()

        # The ready signal: dispatch is gated on this first heartbeat.
        self._send(Frame(FrameKind.HEARTBEAT))
        sock.settimeout(None)
        return float(welcome.get("heartbeat_interval", 2.0))

    # ------------------------------------------------------------------ serving

    def _execute(self, mode: str, fn: Any, data: Any) -> Any:
        if mode == "map":
            return self.executor.map(fn, data)
        if mode == "star":
            return self.executor.starmap(fn, data)
        if mode == "call":
            return fn(*data)
        raise ClusterError(f"unknown task mode {mode!r}")

    def _serve(self) -> None:
        sock = self._sock  # stable across a concurrent close()
        if sock is None:
            raise ClusterError("worker connection is closed")
        while not self._stop.is_set():
            frame = recv_frame(sock, self.codec)
            if frame.kind is FrameKind.TASK:
                key, mode, fn, data = frame.payload[:4]
                # Optional trailing element: the dispatching call's encoded
                # traceparent.  Attaching it parents this task's spans under
                # the coordinator-side dispatch span, so the events we
                # piggyback on RESULT frames land in the originating trace.
                carrier = frame.payload[4] if len(frame.payload) > 4 else ""
                context = telemetry.parse_traceparent(carrier) if carrier else None
                token = telemetry.attach(context) if context is not None else None
                try:
                    with telemetry.span("cluster.task", worker=self.worker_id, mode=mode, key=key):
                        value = self._execute(mode, fn, data)
                except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
                    # Prove the exception survives a *round trip* before
                    # shipping it: an exception that encodes but fails to
                    # decode (e.g. a required multi-arg __init__) would look
                    # like a transport error coordinator-side and get the
                    # worker retired instead of the error propagated.
                    try:
                        self.codec.decode(self.codec.encode((key, exc)))
                        payload = (key, exc)
                    except Exception:  # noqa: BLE001 - fall back to the repr
                        payload = (key, ClusterError(repr(exc)))
                    self._send(Frame(FrameKind.ERROR, payload))
                else:
                    if self._telemetry:
                        # Piggyback the spans and metric deltas this task
                        # produced as an optional third payload element; the
                        # coordinator ingests them under this worker's label.
                        self._send(Frame(FrameKind.RESULT, (key, value, telemetry.drain())))
                    else:
                        self._send(Frame(FrameKind.RESULT, (key, value)))
                    self.tasks_served += 1
                finally:
                    if token is not None:
                        telemetry.detach(token)
            elif frame.kind is FrameKind.HEARTBEAT:
                continue
            elif frame.kind is FrameKind.SHUTDOWN:
                return
            else:
                raise ClusterError(f"unexpected {frame.kind.name} frame from coordinator")

    def run(self) -> int:
        """Enroll and serve until shutdown; returns a process exit status."""
        try:
            interval = self._enroll()
        except (ClusterError, OSError) as exc:
            print(f"repro.cluster.worker: enrollment failed: {exc}", file=sys.stderr)
            self.close()
            return 1
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, args=(interval,),
            name="cluster-worker-heartbeat", daemon=True,
        )
        heartbeat.start()
        try:
            self._serve()
        except ConnectionClosed:
            pass  # coordinator went away: a clean end of service
        except (ClusterError, OSError) as exc:
            print(f"repro.cluster.worker: connection error: {exc}", file=sys.stderr)
            return 1
        finally:
            self.close()
        return 0

    def close(self) -> None:
        self._stop.set()
        with self._send_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self.executor.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Enroll this host as a repro.cluster tally/audit worker.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address to enroll with",
    )
    parser.add_argument(
        "--executor", default="serial",
        help="local executor spec for this worker's shards "
             "(serial, thread[:N] or process[:N]; default serial)",
    )
    parser.add_argument(
        "--id", default=None, help="worker identity (default hostname-pid)",
    )
    parser.add_argument(
        "--secret-env", default="REPRO_CLUSTER_SECRET", metavar="VAR",
        help="environment variable holding the hex enrollment secret "
             "(default REPRO_CLUSTER_SECRET; secrets never appear in argv)",
    )
    args = parser.parse_args(argv)
    if args.executor.strip().lower().partition(":")[0] in ("remote", "cluster"):
        parser.error("worker-local executors must be serial, thread[:N] or process[:N]")
    daemon = WorkerDaemon(
        address=parse_address(args.connect),
        secret=decode_secret(os.environ.get(args.secret_env)),
        executor=executor_from_spec(args.executor),
        worker_id=args.id,
    )
    return daemon.run()


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    raise SystemExit(main())
