"""The cluster coordinator: enrollment, dispatch, reassembly, reassignment.

:class:`ClusterCoordinator` owns the server side of the wire protocol.  It
listens on one or more addresses, runs the challenge/hello/welcome handshake
with every connecting worker daemon, and then schedules *tasks* — codec-
encoded ``(mode, fn, payload)`` triples — across the enrolled workers:

* **Contiguous, order-preserving dispatch.**  :meth:`run_tasks` accepts an
  ordered list of task payloads and returns their results in exactly that
  order, whatever the completion interleaving across workers — the same
  contract :class:`~repro.runtime.executor.Executor` backends honour, so
  distributed output stays bit-identical to the serial reference.
* **At-least-once with idempotent task keys.**  Every task gets a unique
  key; a worker death or timeout requeues its in-flight tasks onto the
  remaining workers.  Tasks may therefore execute more than once, but the
  first ``RESULT`` per key wins and duplicates are dropped — safe because
  every shard the tally and audit layers dispatch is a deterministic
  function of its payload (all output-shaping randomness is drawn
  coordinator-side, per the :mod:`repro.tally.mixnet` tape discipline).
* **Failure semantics.**  A *task* exception on a worker (an ``ERROR``
  frame) is an application error: it fails that :meth:`run_tasks` call and
  propagates to the caller unchanged, matching the in-process executors.
  A *transport* failure (socket death, missed heartbeats, task timeout) is
  a scheduling event: the worker is retired and its tasks reassigned.
  When the last live worker is lost with tasks outstanding, every waiting
  call fails with a :class:`~repro.errors.ClusterError` naming the cause.
* **Liveness.**  Workers heartbeat on an interval the coordinator announces
  in ``WELCOME``; a reaper thread retires workers whose last frame is older
  than ``heartbeat_timeout`` and (optionally) re-dispatches tasks stuck
  in flight longer than ``task_timeout``.

The coordinator never initiates work functions itself — it is transport and
scheduling only.  :class:`~repro.cluster.executor.RemoteExecutor` adapts it
to the executor contract; :mod:`repro.cluster.feeds` drives it directly with
cursor-keyed shards.
"""

from __future__ import annotations

import itertools
import logging
import os
import secrets
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.cluster.protocol import (
    PICKLE_CODEC,
    PROTOCOL_VERSION,
    Codec,
    Frame,
    FrameKind,
    expect_frame,
    handshake_codec,
    recv_frame,
    send_frame,
    verify_hello,
    welcome_mac,
)
from repro.errors import ClusterError

#: Module logger policy: per-task scheduling chatter (dispatch, result
#: delivery) stays at DEBUG; worker lifecycle that an operator must see —
#: reassignment, worker loss, rejected enrollments — logs at WARNING with
#: the worker identity and affected task keys.  Handshake fields adjacent to
#: the enrollment secret (nonce, MAC, the secret itself) are NEVER logged at
#: any level: a DEBUG log shipped off-box must not become an offline oracle
#: against the enrollment MAC.
logger = logging.getLogger(__name__)

#: How long the enrollment handshake may take before the connection is dropped.
HANDSHAKE_TIMEOUT_SECONDS = 30.0

#: How often enrolled workers are told to heartbeat.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: How stale a worker's last frame may be before it is declared dead.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Default bound on waiting for worker enrollment (overridable per call and,
#: fleet-wide, via the environment).  The single source of truth —
#: :mod:`repro.cluster.executor` imports this rather than re-reading the env.
DEFAULT_ENROLL_TIMEOUT = float(os.environ.get("REPRO_CLUSTER_ENROLL_TIMEOUT", "120"))

#: Default bound on one in-flight task before its worker is presumed stuck
#: (``None`` disables).  Spec-built executors read the environment knob
#: ``REPRO_CLUSTER_TASK_TIMEOUT`` (seconds).
DEFAULT_TASK_TIMEOUT: Optional[float] = (
    float(os.environ["REPRO_CLUSTER_TASK_TIMEOUT"])
    if os.environ.get("REPRO_CLUSTER_TASK_TIMEOUT")
    else None
)

#: How many times one task may be reassigned before its group fails — a
#: backstop against a poison shard that crashes every worker serving it,
#: which under supervised (auto-restarting) fleets would otherwise cycle
#: forever.  Generous: legitimate fault recovery uses one or two attempts.
MAX_TASK_ATTEMPTS = 16


class _Task:
    """One dispatchable unit: an idempotent key plus its payload and slot."""

    __slots__ = ("key", "payload", "group", "index", "done", "result",
                 "assigned_to", "dispatched_at", "attempts", "trace")

    def __init__(
        self, key: int, payload: Any, group: "_TaskGroup", index: int, trace: str = ""
    ) -> None:
        self.key = key
        self.payload = payload
        self.group = group
        self.index = index
        self.done = False
        self.result: Any = None
        self.assigned_to: Optional["_Worker"] = None
        self.dispatched_at: float = 0.0
        self.attempts = 0
        #: The dispatching call's encoded traceparent (``""`` when tracing is
        #: off); rides every TASK frame so worker-side spans — piggybacked
        #: back on RESULT frames — parent into the originating trace.
        self.trace = trace


class _TaskGroup:
    """One :meth:`ClusterCoordinator.run_tasks` call's tasks and outcome."""

    __slots__ = ("tasks", "remaining", "error", "on_result")

    def __init__(self, size: int, on_result: Optional[Callable[[int, Any], None]]) -> None:
        self.tasks: List[_Task] = []
        self.remaining = size
        self.error: Optional[BaseException] = None
        self.on_result = on_result


class _Worker:
    """Coordinator-side state for one enrolled worker connection."""

    __slots__ = ("worker_id", "conn", "address", "slots", "alive",
                 "last_seen", "last_result_at", "send_lock", "in_flight")

    def __init__(
        self, worker_id: str, conn: socket.socket, address: Tuple[str, int], slots: int
    ) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.address = address
        self.slots = max(1, slots)
        self.alive = True
        self.last_seen = time.monotonic()
        #: When this worker last returned a RESULT/ERROR frame — the clock
        #: the task timeout runs against (workers serve their in-flight
        #: queue sequentially, so dispatch age alone would count queue wait).
        self.last_result_at = time.monotonic()
        self.send_lock = threading.Lock()
        self.in_flight: Dict[int, _Task] = {}


class ClusterCoordinator:
    """Enrolls remote workers and schedules ordered task groups across them."""

    def __init__(
        self,
        listen: Sequence[Tuple[str, int]] = (("127.0.0.1", 0),),
        secret: Optional[bytes] = None,
        codec: Codec = PICKLE_CODEC,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        task_timeout: Optional[float] = DEFAULT_TASK_TIMEOUT,
        name: str = "cluster",
    ) -> None:
        self._secret = secret
        self._codec = codec
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._task_timeout = task_timeout
        self.name = name

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._workers: Dict[str, _Worker] = {}
        self._enrolling_ids: Set[str] = set()
        self._ever_enrolled = 0
        self._pending: "deque[_Task]" = deque()
        self._tasks: Dict[int, _Task] = {}
        self._task_keys = itertools.count()
        self._worker_ids = itertools.count()
        self._closed = False
        #: Warm work advertised to workers in WELCOME (group factories and
        #: fixed bases to precompute before the worker accepts TASK frames).
        self._warm_groups: List[Any] = []
        self._warm_bases: List[Any] = []

        # Pre-register the fleet counters at zero so a merged snapshot shows
        # "reassign 0" for a healthy run instead of omitting the series.
        # Unrolled to literal names: REP005 pins every telemetry name to
        # repro.telemetry.names so schedules keep identical series.
        if telemetry.enabled():
            telemetry.counter("cluster.enroll", 0)
            telemetry.counter("cluster.dispatch", 0)
            telemetry.counter("cluster.reassign", 0)
            telemetry.counter("cluster.worker.lost", 0)
            telemetry.counter("cluster.heartbeat.miss", 0)

        self._listeners: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        for host, port in listen:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen(64)
            self._listeners.append(sock)
            thread = threading.Thread(
                target=self._accept_loop, args=(sock,), name=f"{name}-accept", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        reaper = threading.Thread(target=self._reap_loop, name=f"{name}-reaper", daemon=True)
        reaper.start()
        self._threads.append(reaper)

    # ------------------------------------------------------------------ surface

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        """The bound listen addresses (ports resolved, for ``:0`` binds)."""
        return [sock.getsockname()[:2] for sock in self._listeners]

    @property
    def address(self) -> Tuple[str, int]:
        return self.addresses[0]

    @property
    def num_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    @property
    def total_slots(self) -> int:
        with self._lock:
            return sum(worker.slots for worker in self._workers.values())

    def worker_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._workers)

    def set_warm(self, groups: Optional[Sequence[Any]] = None, bases: Optional[Sequence[Any]] = None) -> None:
        """Advertise precompute warm work to *future* enrollments.

        ``groups`` are zero-argument group factories (workers warm each
        group's generator table); ``bases`` are group elements to warm
        directly (e.g. the election authority's public key).  Entries the
        codec cannot encode are dropped rather than poisoning every
        subsequent WELCOME frame.
        """
        def _encodable(items: Optional[Sequence[Any]]) -> List[Any]:
            kept = []
            for item in items or ():
                try:
                    self._codec.encode(item)
                except Exception:
                    continue
                kept.append(item)
            return kept

        with self._lock:
            if groups is not None:
                self._warm_groups = _encodable(groups)
            if bases is not None:
                self._warm_bases = _encodable(bases)

    def wait_for_workers(self, count: int = 1, timeout: float = DEFAULT_ENROLL_TIMEOUT) -> None:
        """Block until ``count`` workers are enrolled; :class:`ClusterError` on timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self._workers) < count:
                if self._closed:
                    raise ClusterError("coordinator is shut down")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ClusterError(
                        f"timed out waiting for {count} worker(s); "
                        f"{len(self._workers)} enrolled after {timeout:.0f}s"
                    )
                self._cond.wait(timeout=min(remaining, 0.25))

    # ------------------------------------------------------------------ enrollment

    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            try:
                conn, address = listener.accept()
            except OSError:
                return  # listener closed during shutdown
            if self._closed:
                conn.close()
                return
            threading.Thread(
                target=self._enroll, args=(conn, address),
                name=f"{self.name}-enroll", daemon=True,
            ).start()

    def _enroll(self, conn: socket.socket, address: Tuple[str, int]) -> None:
        """Run the challenge/hello/welcome handshake; admit or drop the peer."""
        worker_id = ""
        try:
            conn.settimeout(HANDSHAKE_TIMEOUT_SECONDS)
            nonce = secrets.token_bytes(16)
            send_frame(conn, Frame(FrameKind.CHALLENGE, {
                "nonce": nonce,
                "protocol_version": PROTOCOL_VERSION,
                "coordinator": self.name,
                "heartbeat_interval": self._heartbeat_interval,
                "authenticated": self._secret is not None,
            }), self._codec)
            # Decode the (pre-authentication) hello with the restricted
            # handshake codec: nothing an unauthenticated peer sends may
            # execute during deserialization — the MAC check below is what
            # admits a peer to the full task codec.
            hello = expect_frame(conn, FrameKind.HELLO, handshake_codec(self._codec))
            payload = hello.payload if isinstance(hello.payload, dict) else {}
            version = payload.get("protocol_version")
            worker_id = str(payload.get("worker_id") or f"worker-{next(self._worker_ids)}")
            try:
                slots = int(payload.get("slots") or 1)
            except (TypeError, ValueError):
                slots = 1
            if version != PROTOCOL_VERSION:
                self._reject(conn, f"protocol version mismatch: worker v{version}, coordinator v{PROTOCOL_VERSION}")
                return
            if self._secret is not None:
                tag = payload.get("mac")
                if not isinstance(tag, bytes):
                    tag = b""
                if not verify_hello(self._secret, nonce, worker_id, slots, tag):
                    self._reject(conn, "enrollment MAC verification failed")
                    return
            # Reserve the identity before WELCOME goes out: two concurrent
            # enrollments under the same name must not overwrite each other
            # in the registry (the loser gets a uniquified alias).
            with self._lock:
                while worker_id in self._workers or worker_id in self._enrolling_ids:
                    worker_id = f"{worker_id}#{next(self._worker_ids)}"
                self._enrolling_ids.add(worker_id)
            # WELCOME is primitives-only (the worker decodes it with the
            # restricted handshake codec) and carries the coordinator's half
            # of mutual authentication: a MAC over the worker's fresh nonce.
            welcome: Dict[str, Any] = {
                "worker_id": worker_id,
                "heartbeat_interval": self._heartbeat_interval,
                # Primitives-only flag (the worker decodes WELCOME with the
                # restricted codec): when the coordinator is collecting
                # telemetry, workers buffer spans in memory and piggyback
                # them on RESULT frames for one merged fleet snapshot.
                "telemetry": telemetry.enabled(),
            }
            if self._secret is not None:
                worker_nonce = payload.get("nonce")
                if not isinstance(worker_nonce, bytes):
                    worker_nonce = b""
                welcome["mac"] = welcome_mac(self._secret, worker_nonce, worker_id)
            send_frame(conn, Frame(FrameKind.WELCOME, welcome), self._codec)
            # Warm work (group factories, hot bases — arbitrary picklables)
            # only ships after both sides are authenticated.
            with self._lock:
                warm = {"groups": list(self._warm_groups), "bases": list(self._warm_bases)}
            send_frame(conn, Frame(FrameKind.WARM, warm), self._codec)
            # The worker warms its precompute tables and executor pool now;
            # its first HEARTBEAT is the ready signal that gates dispatch.
            expect_frame(conn, FrameKind.HEARTBEAT, self._codec)
            conn.settimeout(None)
        except Exception:  # noqa: BLE001 - any malformed pre-auth input
            # Enrollment failures are per-connection events, not cluster
            # failures; whatever a (pre-authentication!) peer sent, the only
            # response is to drop the connection — never to leak the fd or
            # kill the enroll thread with an unhandled traceback.
            with self._lock:
                self._enrolling_ids.discard(worker_id)
            try:
                conn.close()
            except OSError:
                pass
            return

        # Identity and address only — never the nonce, MAC, or secret the
        # handshake frames carried (see the module logger policy above).
        logger.info("worker %s enrolled from %s:%s (%d slot(s))",
                    worker_id, address[0], address[1], slots)
        telemetry.counter("cluster.enroll", worker=worker_id)
        worker = _Worker(worker_id, conn, address, slots)
        with self._cond:
            self._enrolling_ids.discard(worker_id)
            if self._closed:
                conn.close()
                return
            self._workers[worker_id] = worker
            self._ever_enrolled += 1
            self._cond.notify_all()
        # Reader threads are daemonic and exit with their connection; like
        # the enroll threads they are fire-and-forget (retaining one per
        # ever-enrolled worker would leak under churn).
        threading.Thread(
            target=self._read_loop, args=(worker,), name=f"{self.name}-read-{worker_id}", daemon=True
        ).start()
        self._pump()

    def _reject(self, conn: socket.socket, reason: str) -> None:
        # The reason strings name the failed check, not its inputs — no
        # nonce, MAC, or secret material ever reaches the log stream.
        logger.warning("rejecting enrollment: %s", reason)
        try:
            send_frame(conn, Frame(FrameKind.ERROR, (None, reason)), self._codec)
        except (ClusterError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ reading

    def _read_loop(self, worker: _Worker) -> None:
        try:
            while worker.alive:
                frame = recv_frame(worker.conn, self._codec)
                worker.last_seen = time.monotonic()
                if frame.kind is FrameKind.RESULT:
                    worker.last_result_at = worker.last_seen
                    # Telemetry-enabled workers piggyback their drained span
                    # and metric events as an optional third payload element.
                    payload = frame.payload
                    key, value = payload[0], payload[1]
                    if len(payload) > 2 and payload[2]:
                        telemetry.ingest(payload[2], worker=worker.worker_id)
                    logger.debug("result for task %s from worker %s", key, worker.worker_id)
                    self._complete(key, value)
                elif frame.kind is FrameKind.ERROR:
                    worker.last_result_at = worker.last_seen
                    key, error = frame.payload
                    self._fail(key, error)
                elif frame.kind is FrameKind.HEARTBEAT:
                    continue
                elif frame.kind is FrameKind.SHUTDOWN:
                    break  # worker is draining out voluntarily
                else:
                    raise ClusterError(f"unexpected {frame.kind.name} frame from worker")
        except (ClusterError, OSError):
            pass
        finally:
            self._retire(worker, "connection lost")

    def _complete(self, key: int, value: Any) -> None:
        with self._cond:
            task = self._tasks.pop(key, None)
            if task is None or task.done:
                return  # duplicate delivery after a reassignment: first wins
            task.done = True
            task.result = value
            if task.assigned_to is not None:
                task.assigned_to.in_flight.pop(key, None)
                task.assigned_to = None
            group = task.group
            callback = group.on_result
        # The callback runs outside the lock but *before* the group's
        # remaining-count drops: run_tasks only returns once every delivered
        # result's callback has finished (a feed's final cursor ack must be
        # visible when the call returns).  A raising callback is a caller
        # bug, charged to the caller's group — never to the worker whose
        # read loop happened to deliver the result.
        if callback is not None:
            try:
                callback(task.index, value)
            except BaseException as exc:  # noqa: BLE001 - surfaced to run_tasks
                self._cancel_group(group, exc)
                self._pump()
                return
        with self._cond:
            group.remaining -= 1
            self._cond.notify_all()
        self._pump()

    def _cancel_group(self, group: "_TaskGroup", exc: BaseException) -> None:
        """Fail a whole group: first error wins, siblings are abandoned."""
        with self._cond:
            if group.error is None:
                group.error = exc
            for sibling in group.tasks:
                if not sibling.done:
                    sibling.done = True
                    self._tasks.pop(sibling.key, None)
                    if sibling.assigned_to is not None:
                        sibling.assigned_to.in_flight.pop(sibling.key, None)
                        sibling.assigned_to = None
            self._pending = deque(t for t in self._pending if t.group is not group)
            group.remaining = 0
            self._cond.notify_all()

    def _fail(self, key: Optional[int], error: Any) -> None:
        """An application-level task failure: propagate to the waiting caller."""
        exc = error if isinstance(error, BaseException) else ClusterError(str(error))
        with self._cond:
            task = self._tasks.pop(key, None) if key is not None else None
            if task is None or task.done:
                return
            task.done = True
            if task.assigned_to is not None:
                task.assigned_to.in_flight.pop(task.key, None)
                task.assigned_to = None
            group = task.group
        # Cancel the group's other tasks: drop pending ones, forget
        # in-flight ones (late results for them are ignored idempotently).
        self._cancel_group(group, exc)
        self._pump()

    def _retire(self, worker: _Worker, reason: str) -> None:
        """Drop a dead worker and requeue its in-flight tasks (at-least-once)."""
        poisoned: List[_Task] = []
        requeued: List[int] = []
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.worker_id, None)
            orphans = sorted(worker.in_flight.values(), key=lambda task: task.index)
            worker.in_flight.clear()
            # Requeued ahead of fresh work, in index order (appendleft of the
            # reversed list keeps the lowest index at the queue front), so a
            # reassigned early shard does not wait behind the whole backlog.
            for task in reversed(orphans):
                if task.done:
                    continue
                task.assigned_to = None
                task.attempts += 1
                if task.attempts >= MAX_TASK_ATTEMPTS:
                    poisoned.append(task)
                else:
                    self._pending.appendleft(task)
                    requeued.append(task.key)
            if not self._workers and self._tasks:
                lost = ClusterError(
                    f"all cluster workers lost ({reason}); "
                    f"{len(self._tasks)} shard(s) outstanding"
                )
                for task in list(self._tasks.values()):
                    if task.group.error is None:
                        task.group.error = lost
                    task.group.remaining = 0
                    task.done = True
                self._tasks.clear()
                self._pending.clear()
            self._cond.notify_all()
        # Orderly teardown retires every worker; that is routine (DEBUG).
        # Losing a worker mid-run is an operator-visible event (WARNING),
        # logged with the identity and exactly which task keys moved.
        if reason == "coordinator shutdown":
            logger.debug("worker %s retired (%s)", worker.worker_id, reason)
        else:
            logger.warning(
                "worker %s lost (%s); requeued task key(s) %s",
                worker.worker_id, reason, sorted(requeued) or "none",
            )
            telemetry.counter("cluster.worker.lost", worker=worker.worker_id, reason=reason)
            if reason == "heartbeat timeout":
                telemetry.counter("cluster.heartbeat.miss", worker=worker.worker_id)
            if requeued:
                telemetry.counter("cluster.reassign", len(requeued), worker=worker.worker_id)
        for task in poisoned:
            self._cancel_group(
                task.group,
                ClusterError(
                    f"shard {task.index} was reassigned {task.attempts} times "
                    f"(last worker loss: {reason}); giving it up as poisoned"
                ),
            )
        try:
            worker.conn.close()
        except OSError:
            pass
        self._pump()

    # ------------------------------------------------------------------ dispatch

    def _assign(self) -> List[Tuple[_Worker, _Task]]:
        """Pair pending tasks with free worker slots (called under the lock)."""
        assignments: List[Tuple[_Worker, _Task]] = []
        if not self._pending:
            return assignments
        workers = [w for w in self._workers.values() if w.alive]
        if not workers:
            return assignments
        # Least-loaded first keeps shard latency flat across heterogeneous
        # workers; ties break on enrollment order (dict order).
        while self._pending:
            workers.sort(key=lambda w: len(w.in_flight) / w.slots)
            target = workers[0]
            if len(target.in_flight) >= target.slots:
                break
            task = self._pending.popleft()
            if task.done:
                continue
            task.assigned_to = target
            task.dispatched_at = time.monotonic()
            target.in_flight[task.key] = task
            assignments.append((target, task))
        return assignments

    def _pump(self) -> None:
        """Move pending tasks onto free workers; retire workers whose send fails."""
        while True:
            with self._lock:
                assignments = self._assign()
            if not assignments:
                return
            dead: List[_Worker] = []
            for worker, task in assignments:
                # The optional trailing traceparent keeps the frame layout
                # backward compatible: workers accept 4- or 5-element tasks.
                if task.trace:
                    frame = Frame(FrameKind.TASK, (task.key, *task.payload, task.trace))
                else:
                    frame = Frame(FrameKind.TASK, (task.key, *task.payload))
                try:
                    # Leaf lock: held only for this one frame write, taken
                    # after every coordinator lock is released, and nothing
                    # blocks under it but the socket itself.
                    with worker.send_lock:
                        send_frame(worker.conn, frame, self._codec)  # repro: noqa[REP004]
                except (ClusterError, OSError):
                    if worker not in dead:
                        dead.append(worker)
                else:
                    logger.debug("dispatched task %s to worker %s", task.key, worker.worker_id)
                    telemetry.counter("cluster.dispatch", worker=worker.worker_id)
            for worker in dead:
                self._retire(worker, "send failed")
            if not dead:
                return

    def run_tasks(
        self,
        payloads: Sequence[Tuple[Any, ...]],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Execute ``payloads`` across the cluster; results in payload order.

        Each payload is a ``(mode, fn, data)`` triple as understood by the
        worker daemon (``"map"``/``"star"`` run ``data`` through the
        worker's local executor; ``"call"`` invokes ``fn(*data)`` once).
        ``on_result`` is invoked as ``on_result(index, value)`` when a
        task's first result arrives — out of index order, from coordinator
        threads — which is how cursor feeds ack shards as they land.

        Raises the first task exception unchanged (matching the in-process
        executor contract) or :class:`ClusterError` when the cluster cannot
        finish the group (all workers lost, or shutdown mid-run).
        """
        payloads = list(payloads)
        if not payloads:
            return []
        # Capture the calling thread's trace context once per group: every
        # shard of this call belongs to the dispatch span active here (e.g.
        # RemoteExecutor's executor.map), so worker spans parent under it.
        context = telemetry.current_context() if telemetry.enabled() else None
        trace = context.to_traceparent() if context is not None else ""
        group = _TaskGroup(len(payloads), on_result)
        with self._cond:
            if self._closed:
                raise ClusterError("coordinator is shut down")
            for index, payload in enumerate(payloads):
                task = _Task(next(self._task_keys), tuple(payload), group, index, trace)
                group.tasks.append(task)
                self._tasks[task.key] = task
                self._pending.append(task)
        self._pump()
        with self._cond:
            while group.remaining > 0:
                self._cond.wait(timeout=0.25)
                if self._closed and group.remaining > 0 and group.error is None:
                    group.error = ClusterError("coordinator shut down with shards outstanding")
                    break
        if group.error is not None:
            raise group.error
        return [task.result for task in group.tasks]

    # ------------------------------------------------------------------ liveness

    def _reap_loop(self) -> None:
        interval = max(0.05, min(self._heartbeat_interval, 1.0) / 2)
        while not self._closed:
            time.sleep(interval)
            now = time.monotonic()
            stale: List[Tuple[_Worker, str]] = []
            with self._lock:
                for worker in self._workers.values():
                    if now - worker.last_seen > self._heartbeat_timeout:
                        stale.append((worker, "heartbeat timeout"))
                    elif self._task_timeout is not None and worker.in_flight:
                        # Workers serve in-flight tasks sequentially, so the
                        # currently-executing task started at its dispatch or
                        # at the worker's previous result — whichever is
                        # later.  Timing from dispatch alone would charge
                        # queued tasks their predecessors' runtimes and
                        # retire perfectly healthy workers.
                        oldest = min(task.dispatched_at for task in worker.in_flight.values())
                        if now - max(oldest, worker.last_result_at) > self._task_timeout:
                            stale.append((worker, "task timeout"))
            for worker, reason in stale:
                self._retire(worker, reason)

    # ------------------------------------------------------------------ lifecycle

    def shutdown(self) -> None:
        """Stop accepting, tell workers to exit, fail anything outstanding."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._cond.notify_all()
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:
                pass
        for worker in workers:
            try:
                # Same leaf send-lock as _pump: serializes one frame write.
                with worker.send_lock:
                    send_frame(  # repro: noqa[REP004]
                        worker.conn, Frame(FrameKind.SHUTDOWN), self._codec
                    )
            except (ClusterError, OSError):
                pass
            self._retire(worker, "coordinator shutdown")
        with self._cond:
            self._cond.notify_all()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterCoordinator(addresses={self.addresses}, "
            f"workers={self.num_workers}, slots={self.total_slots})"
        )
