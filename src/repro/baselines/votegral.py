"""TRIP-Core / Votegral as a cryptographic cost kernel.

"TRIP-Core" is the paper's name for the registration protocol with all
QR/peripheral I/O stripped out, leaving only the cryptographic path (§7.3) —
which is what makes it comparable with the other systems' registration.
The per-phase kernels below mirror the real implementation in
:mod:`repro.registration` and :mod:`repro.tally`:

* **Registration** — credential key generation, the ElGamal encryption that
  forms the public credential tag, the interactive Chaum–Pedersen commit and
  response, and three kiosk signatures (≈1.2 ms/voter on the paper's
  hardware; an order of magnitude faster than Swiss Post because there are
  no per-control-component derivations).
* **Voting** — ballot encryption, the OR well-formedness proof, the key
  proof and the credential signature (≈1 ms).
* **Tally** — four verifiable mixes over (vote, credential) pairs plus the
  deterministic-tagging exponentiations and threshold decryption, linear per
  ballot (≈14 h at 10⁶ ballots — half Swiss Post, slower than VoteAgain,
  astronomically faster than Civitas).
"""

from __future__ import annotations

from repro.baselines.base import VotingSystemBaseline
from repro.crypto.group import Group


class TripCoreSystem(VotingSystemBaseline):
    """Votegral with TRIP-Core registration (crypto path only)."""

    name = "TRIP-Core"
    num_talliers = 4
    quadratic_tally = False

    def __init__(self, group: Group, num_options: int = 2):
        super().__init__(group, num_options)

    def register_one(self) -> None:
        # Credential keygen (1), ElGamal encryption of c_pk (2), Chaum–Pedersen
        # commit (2) + response (0 exps, scalar arithmetic), three Schnorr
        # signatures (3): the kiosk's per-credential work.  Issuing one fake
        # credential adds a simulated transcript (4) and two signatures (2).
        self._exp(1 + 2 + 2 + 3)
        self._exp(4 + 2)

    def vote_one(self, choice: int) -> None:
        # Exponential-ElGamal encryption (2), OR proof over the options
        # (≈2 per option), key proof (1) and credential signature (1).
        self._encrypt(1)
        self._exp(2 * self.num_options + 2)

    def tally_prepare(self, num_ballots: int) -> None:
        # Tagging-key commitments and mix setup.
        self._exp(2 * self.num_talliers)

    def tally_per_ballot(self) -> None:
        # Per mixer: re-encrypt the (vote, credential) pair (4 exps) and its
        # shuffle-argument share (≈2); plus the deterministic tagging
        # exponentiations and the threshold decryption shares.
        self._exp(6 * self.num_talliers)
        self._exp(2 * self.num_talliers)
