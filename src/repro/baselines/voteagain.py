"""VoteAgain as a cryptographic cost kernel.

VoteAgain (Lueks et al., USENIX Security 2020) achieves coercion resistance
through *deniable re-voting*: voters may overwrite coerced ballots, and a
tally server pads and shuffles ballots so an observer cannot tell who
re-voted.  Its cost profile in the paper's evaluation:

* **Registration** — essentially free (≈0.1 ms/voter): the registrar simply
  signs the voter's key; no fake credentials, no per-voter proofs.
* **Voting** — comparable to Swiss Post (≈10 ms): encrypt + proofs.
* **Tally** — the fastest of the compared systems (≈3 h for 10⁶ ballots):
  dummy-ballot padding and a hierarchical deduplication that is
  quasi-linear; we charge a small per-ballot constant.

The price is a stronger trust assumption: a trusted registration authority
that will not impersonate voters and a central service for coercion
resistance — which is why the paper treats its speed as bought with trust.
"""

from __future__ import annotations

from repro.baselines.base import VotingSystemBaseline
from repro.crypto.group import Group


class VoteAgainSystem(VotingSystemBaseline):
    """Coercion resistance via deniable re-voting (trusted registrar)."""

    name = "VoteAgain"
    num_talliers = 4
    quadratic_tally = False

    def __init__(self, group: Group, num_options: int = 2):
        super().__init__(group, num_options)

    def register_one(self) -> None:
        # The registrar signs the voter's public key — one exponentiation.
        self._exp(1)

    def vote_one(self, choice: int) -> None:
        # Encrypt the vote and the voter pseudonym, prove well-formedness.
        self._encrypt(2)
        self._exp(66)

    def tally_prepare(self, num_ballots: int) -> None:
        # Dummy-ballot padding setup by the tally server.
        self._exp(self.num_talliers)

    def tally_per_ballot(self) -> None:
        # Hierarchical dedup + one mixing pass + threshold decryption share;
        # quasi-linear with a small constant (the 3 h @ 10⁶ figure).
        self._exp(2 * self.num_talliers)
