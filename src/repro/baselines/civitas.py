"""Civitas (JCJ) as a cryptographic cost kernel.

Civitas (Clarkson, Chong, Myers, S&P 2008) is the canonical fake-credential
coercion-resistant system.  Two properties dominate its cost in the paper's
evaluation:

* it uses **large-modulus** discrete-log primitives (we run its kernel over
  the 2048-bit mod-p group, roughly three orders of magnitude slower per
  exponentiation than the 256-bit groups used by the other systems — the gap
  §7.3 attributes to group choice);
* its tally runs **pairwise plaintext-equivalence tests** for duplicate
  elimination and for matching ballots against the credential roster, which
  is quadratic in the number of ballots — the reason the paper extrapolates
  its tally to ≈1,768 years at one million ballots.

The kernels below mirror the protocol's structure: multi-teller credential
issuance with designated-verifier proofs at registration, encrypted
credential + vote with proofs at ballot casting, and per-pair PETs plus mixing
at tally time.
"""

from __future__ import annotations

from repro.baselines.base import VotingSystemBaseline
from repro.crypto.group import Group
from repro.crypto.modp_group import modp_group_2048


class CivitasSystem(VotingSystemBaseline):
    """JCJ/Civitas: fake credentials, multiple registration tellers, quadratic tally."""

    name = "Civitas"
    num_talliers = 4
    num_registration_tellers = 4
    quadratic_tally = True

    def __init__(self, group: Group | None = None, num_options: int = 2):
        # Civitas defaults to the large-modulus group regardless of what the
        # other systems use; callers may override for unit tests.
        super().__init__(group if group is not None else modp_group_2048(), num_options)

    def register_one(self) -> None:
        # Each registration teller generates a credential share, encrypts it,
        # and produces a designated-verifier reencryption proof for the voter.
        per_teller = 2 + 2 + 4
        self._exp(per_teller * self.num_registration_tellers)

    def vote_one(self, choice: int) -> None:
        # Encrypt credential and choice, prove knowledge of both and ballot
        # well-formedness (1-out-of-L reencryption proof).
        self._encrypt(2)
        self._exp(6 + 2 * self.num_options)

    def tally_prepare(self, num_ballots: int) -> None:
        # Tabulation tellers' mix setup.
        self._exp(2 * self.num_talliers)

    def tally_per_ballot(self) -> None:
        # Mixing each ballot through the teller cascade with proofs.
        self._exp(4 * self.num_talliers)

    def tally_per_pair(self) -> None:
        # One PET between a ballot pair (duplicate elimination) or between a
        # ballot and a roster entry (credential check): each teller raises the
        # quotient to a secret exponent with a proof, then joint decryption.
        self._exp(2 * self.num_talliers)
