"""Baseline e-voting systems used in the paper's evaluation (§7.3–7.4).

The paper compares Votegral/TRIP against three systems:

* **Swiss Post** — end-to-end verifiable, *not* coercion resistant; four
  "control components" mix and decrypt ballots.
* **VoteAgain** — coercion resistant via deniable re-voting; very cheap
  registration, efficient tally, but stronger trust assumptions.
* **Civitas** — the JCJ-lineage coercion-resistant system with fake
  credentials; large-modulus primitives and a *quadratic* PET-based tally.

Each baseline is implemented as a cryptographic cost kernel: the actual group
operations each protocol performs per voter/ballot in each phase, over the
appropriate group (a 256-bit group standing in for elliptic curves, the
2048-bit group for Civitas' large-modulus setting).  That mirrors how the
paper itself evaluates ("simulates each phase of an e-voting system, focusing
on the cryptographic operations"), and preserves the relative ordering and
scaling shapes of Figures 5a/5b.
"""

from repro.baselines.base import PhaseName, PhaseMeasurement, VotingSystemBaseline
from repro.baselines.swisspost import SwissPostSystem
from repro.baselines.voteagain import VoteAgainSystem
from repro.baselines.civitas import CivitasSystem
from repro.baselines.votegral import TripCoreSystem

ALL_SYSTEMS = {
    "SwissPost": SwissPostSystem,
    "VoteAgain": VoteAgainSystem,
    "TRIP-Core": TripCoreSystem,
    "Civitas": CivitasSystem,
}

__all__ = [
    "PhaseName",
    "PhaseMeasurement",
    "VotingSystemBaseline",
    "SwissPostSystem",
    "VoteAgainSystem",
    "CivitasSystem",
    "TripCoreSystem",
    "ALL_SYSTEMS",
]
