"""Common interface and measurement machinery for the baseline systems."""

from __future__ import annotations

import abc
import enum
import time
from dataclasses import dataclass
from typing import Dict

from repro.crypto.elgamal import ElGamal
from repro.crypto.group import Group


class PhaseName(enum.Enum):
    """The election phases Figure 5 reports."""

    REGISTRATION = "Registration"
    VOTING = "Voting"
    TALLY = "Tally"


@dataclass
class PhaseMeasurement:
    """Measured cost of one phase for a given voter population."""

    system: str
    phase: PhaseName
    num_voters: int
    wall_seconds: float
    extrapolated: bool = False

    @property
    def per_voter_seconds(self) -> float:
        return self.wall_seconds / max(1, self.num_voters)


@dataclass
class CostModel:
    """Asymptotic cost model fitted from a measurement, used for extrapolation.

    ``per_voter`` covers the linear part and ``per_pair`` the quadratic part
    (Civitas' pairwise PETs); other systems leave ``per_pair`` at zero.
    """

    per_voter_seconds: float
    per_pair_seconds: float = 0.0
    fixed_seconds: float = 0.0

    def predict(self, num_voters: int) -> float:
        pairs = num_voters * (num_voters - 1) / 2
        return self.fixed_seconds + self.per_voter_seconds * num_voters + self.per_pair_seconds * pairs


class VotingSystemBaseline(abc.ABC):
    """A baseline e-voting system expressed as per-phase crypto kernels.

    Subclasses implement the per-voter / per-ballot cryptographic work of each
    phase; this base class provides timing, per-voter aggregation and the
    quadratic/linear extrapolation used to extend measured populations to the
    paper's 10⁶-voter configurations.
    """

    name: str = "baseline"
    #: Number of talliers / mixers / control components (the paper uses four).
    num_talliers: int = 4
    #: Whether the tally is quadratic in the number of ballots (Civitas).
    quadratic_tally: bool = False

    def __init__(self, group: Group, num_options: int = 2):
        self.group = group
        self.num_options = num_options
        self.elgamal = ElGamal(group)
        self._model_cache: Dict[tuple, CostModel] = {}

    # ----------------------------------------------------------------- kernels

    @abc.abstractmethod
    def register_one(self) -> None:
        """The registration-phase crypto for a single voter."""

    @abc.abstractmethod
    def vote_one(self, choice: int) -> None:
        """The voting-phase crypto for a single ballot."""

    @abc.abstractmethod
    def tally_prepare(self, num_ballots: int) -> None:
        """Fixed tally work that does not scale with the ballots (e.g. key ceremonies)."""

    @abc.abstractmethod
    def tally_per_ballot(self) -> None:
        """Linear tally work for one ballot (mixing, proofs, decryption shares)."""

    def tally_per_pair(self) -> None:
        """Quadratic tally work for one ballot pair (PETs); default none."""

    # ---------------------------------------------------------------- measurement

    def measure_phase(self, phase: PhaseName, num_voters: int) -> PhaseMeasurement:
        start = time.perf_counter()
        if phase is PhaseName.REGISTRATION:
            for _ in range(num_voters):
                self.register_one()
        elif phase is PhaseName.VOTING:
            for index in range(num_voters):
                self.vote_one(index % self.num_options)
        else:
            self.tally_prepare(num_voters)
            for _ in range(num_voters):
                self.tally_per_ballot()
            if self.quadratic_tally:
                # One PET per ballot pair; measured directly for small n.
                for left in range(num_voters):
                    for _ in range(left + 1, num_voters):
                        self.tally_per_pair()
        elapsed = time.perf_counter() - start
        return PhaseMeasurement(system=self.name, phase=phase, num_voters=num_voters, wall_seconds=elapsed)

    def fit_cost_model(self, phase: PhaseName, sample_voters: int = 50) -> CostModel:
        """Measure a small population and fit the per-voter / per-pair constants."""
        measurement = self.measure_phase(phase, sample_voters)
        if phase is PhaseName.TALLY and self.quadratic_tally:
            # Separate the linear and quadratic parts with two samples.
            small = self.measure_phase(phase, max(4, sample_voters // 4))
            n1, t1 = small.num_voters, small.wall_seconds
            n2, t2 = measurement.num_voters, measurement.wall_seconds
            pairs1 = n1 * (n1 - 1) / 2
            pairs2 = n2 * (n2 - 1) / 2
            denominator = pairs2 * n1 - pairs1 * n2
            if denominator <= 0:
                return CostModel(per_voter_seconds=t2 / n2)
            per_pair = (t2 * n1 - t1 * n2) / denominator
            per_voter = (t1 - per_pair * pairs1) / n1
            return CostModel(per_voter_seconds=max(per_voter, 0.0), per_pair_seconds=max(per_pair, 0.0))
        return CostModel(per_voter_seconds=measurement.per_voter_seconds)

    def estimate_phase(self, phase: PhaseName, num_voters: int, sample_voters: int = 50) -> PhaseMeasurement:
        """Measure directly when feasible, otherwise extrapolate from a sample.

        Fitted cost models are cached per (phase, sample size) so sweeping a
        population range re-measures each phase only once.
        """
        if num_voters <= sample_voters and not (self.quadratic_tally and phase is PhaseName.TALLY and num_voters > 200):
            return self.measure_phase(phase, num_voters)
        cache_key = (phase, sample_voters)
        if cache_key not in self._model_cache:
            self._model_cache[cache_key] = self.fit_cost_model(phase, sample_voters)
        model = self._model_cache[cache_key]
        return PhaseMeasurement(
            system=self.name,
            phase=phase,
            num_voters=num_voters,
            wall_seconds=model.predict(num_voters),
            extrapolated=True,
        )

    # ---------------------------------------------------------------- op helpers

    def _exp(self, count: int = 1) -> None:
        """Perform ``count`` modular exponentiations (the dominant cost unit)."""
        for _ in range(count):
            self.group.power(self.group.random_scalar())

    def _encrypt(self, count: int = 1) -> None:
        for _ in range(count):
            self.elgamal.encrypt(self._public_key(), self.group.generator)

    def _public_key(self):
        if not hasattr(self, "_cached_public_key"):
            self._cached_public_key = self.group.power(self.group.random_scalar())
        return self._cached_public_key
