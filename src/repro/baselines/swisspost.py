"""The Swiss Post e-voting system as a cryptographic cost kernel.

Swiss Post's system (the federally approved protocol the paper benchmarks
against) is end-to-end verifiable but not coercion resistant.  Its structure,
for our cost purposes:

* **Registration / setup per voter** — the print office and the four control
  components derive the voter's verification-card material: per-choice return
  codes and the ballot-casting key, each requiring exponentiations by every
  control component (we charge 3 exponentiations per control component plus a
  constant, matching its measured ≈13 ms/voter position between VoteAgain and
  Civitas in Fig. 5a).
* **Voting per ballot** — the client encrypts the vote, computes partial
  choice return codes (one exponentiation per option per control component on
  the server side) and the accompanying zero-knowledge proofs (≈10 ms).
* **Tally per ballot** — each of the four control components re-encrypts the
  ballot in its mix with a Bayer–Groth proof share and produces a verifiable
  partial decryption; Swiss Post's tally is linear but with a larger constant
  than Votegral (≈27 h vs ≈14 h at 10⁶ ballots in Fig. 5b).
"""

from __future__ import annotations

from repro.baselines.base import VotingSystemBaseline
from repro.crypto.group import Group


class SwissPostSystem(VotingSystemBaseline):
    """Verifiable secret-ballot system of the Swiss Post (no coercion resistance)."""

    name = "SwissPost"
    num_talliers = 4
    quadratic_tally = False

    def __init__(self, group: Group, num_options: int = 2):
        super().__init__(group, num_options)

    def register_one(self) -> None:
        # Verification-card generation: voter key pair, per-control-component
        # contribution to the return-code derivation, and the card signature.
        self._exp(2)
        self._exp(24 * self.num_talliers)

    def vote_one(self, choice: int) -> None:
        # Encrypt the vote, prove well-formedness (exponentiation proof +
        # plaintext-equality proof), and compute partial choice return codes.
        self._encrypt(1)
        self._exp(64)
        self._exp(self.num_options)
        self._exp(self.num_talliers)

    def tally_prepare(self, num_ballots: int) -> None:
        # Mixing key ceremony across the control components.
        self._exp(2 * self.num_talliers)

    def tally_per_ballot(self) -> None:
        # Per control component: re-encryption (2 exps), shuffle-argument share
        # (≈4 exps) and verifiable partial decryption (2 exps).
        self._exp(16 * self.num_talliers)
