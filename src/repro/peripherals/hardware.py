"""Hardware profiles for the four evaluation platforms of §7.1.

The paper measures TRIP on:

* **L1** — Point-of-Sale kiosk (quad-core Cortex-A17, 2 GB RAM), the slowest
  platform at 19.7 s total voter-observable latency;
* **L2** — Raspberry Pi 4 (Cortex-A72, 4 GB RAM);
* **H1** — MacBook Pro M1 Max VM, the fastest platform at 15.8 s;
* **H2** — Beelink GTR7 (Ryzen 7840HS).

All platforms drive the same EPSON TM-T20III receipt printer and a Bluetooth
QR scanner, so the *mechanical* latencies are similar across platforms, while
CPU-bound work (crypto, QR encode/decode, print-job rendering) is up to 260 %
slower on the L-class devices, and print rendering specifically ≈380 % slower
(§7.2).  Each profile therefore carries:

* ``cpu_multiplier`` — scales measured Python CPU time for crypto/QR work;
* ``print_render_multiplier`` — extra CPU factor for print-job rendering;
* ``print_seconds_per_line`` / ``print_fixed_seconds`` — the thermal printer's
  mechanical speed;
* ``scan_seconds_per_byte`` / ``scan_fixed_seconds`` — the Bluetooth transfer
  cost that makes each QR scan ≈0.95 s on average.

The multipliers are calibrated against the published medians, not measured on
the original hardware; DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class HardwareProfile:
    """A simulated deployment platform."""

    key: str
    name: str
    description: str
    resource_constrained: bool
    cpu_multiplier: float
    print_render_multiplier: float
    print_fixed_seconds: float
    print_seconds_per_line: float
    scan_fixed_seconds: float
    scan_seconds_per_byte: float

    def crypto_scale(self) -> float:
        return self.cpu_multiplier

    def scan_seconds(self, wire_bytes: int) -> float:
        """Mechanical + transfer latency for scanning one code."""
        return self.scan_fixed_seconds + self.scan_seconds_per_byte * wire_bytes

    def print_seconds(self, lines: int) -> float:
        """Mechanical latency for printing ``lines`` of receipt content."""
        return self.print_fixed_seconds + self.print_seconds_per_line * lines

    def print_cpu_seconds(self, lines: int) -> float:
        """CPU time spent rendering the print job (CUPS pipeline in the paper)."""
        base = 0.02 + 0.008 * lines
        return base * self.print_render_multiplier


HARDWARE_PROFILES: Dict[str, HardwareProfile] = {
    "L1": HardwareProfile(
        key="L1",
        name="Point-of-Sale Kiosk",
        description="Quad-core Cortex-A17, 2 GB RAM, Linaro",
        resource_constrained=True,
        cpu_multiplier=3.6,
        print_render_multiplier=7.0,
        print_fixed_seconds=0.42,
        print_seconds_per_line=0.125,
        scan_fixed_seconds=0.55,
        scan_seconds_per_byte=0.0010,
    ),
    "L2": HardwareProfile(
        key="L2",
        name="Raspberry Pi 4",
        description="Quad-core Cortex-A72, 4 GB RAM, Raspberry Pi OS",
        resource_constrained=True,
        cpu_multiplier=2.6,
        print_render_multiplier=5.2,
        print_fixed_seconds=0.41,
        print_seconds_per_line=0.123,
        scan_fixed_seconds=0.52,
        scan_seconds_per_byte=0.0010,
    ),
    "H1": HardwareProfile(
        key="H1",
        name="MacBook Pro (M1 Max VM)",
        description="Parallels VM, 4 cores, 8 GB RAM, Ubuntu 22.04",
        resource_constrained=False,
        cpu_multiplier=1.0,
        print_render_multiplier=1.0,
        print_fixed_seconds=0.40,
        print_seconds_per_line=0.12,
        scan_fixed_seconds=0.49,
        scan_seconds_per_byte=0.0010,
    ),
    "H2": HardwareProfile(
        key="H2",
        name="Beelink GTR7",
        description="AMD Ryzen 7840HS, 32 GB RAM, Ubuntu 22.04",
        resource_constrained=False,
        cpu_multiplier=1.1,
        print_render_multiplier=1.1,
        print_fixed_seconds=0.40,
        print_seconds_per_line=0.121,
        scan_fixed_seconds=0.50,
        scan_seconds_per_byte=0.0010,
    ),
}


def hardware_profile(key: str) -> HardwareProfile:
    """Look up a profile by its key (L1, L2, H1, H2)."""
    try:
        return HARDWARE_PROFILES[key]
    except KeyError as exc:
        raise KeyError(f"unknown hardware profile {key!r}; choose from {sorted(HARDWARE_PROFILES)}") from exc
