"""The barcode/QR scanner model.

§7.2 reports that scanning a QR code takes ≈948 ms on average across devices,
dominated by transferring the 13–356 byte payload from the Bluetooth scanner
to the host — not by decoding.  The scanner model therefore charges a fixed
per-scan cost plus a per-wire-byte transfer cost (both from the hardware
profile), records it as the *QR Scan* component, and then performs the actual
payload decode (checksum verification), recording that much smaller cost as
*QR Read/Write*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.errors import ProtocolError
from repro.peripherals.clock import Component, LatencyLedger
from repro.peripherals.hardware import HardwareProfile
from repro.peripherals.qr import Barcode, QRCode

ScannableCode = Union[QRCode, Barcode]


@dataclass
class CodeScanner:
    """A simulated handheld/embedded code scanner."""

    profile: HardwareProfile
    ledger: LatencyLedger
    scans: List[ScannableCode] = field(default_factory=list)

    def scan(self, code: ScannableCode, label: str = "") -> ScannableCode:
        """Scan a physical code: transfer its wire bytes, then decode them."""
        if code is None:
            raise ProtocolError("nothing to scan")
        wire = code.encoded
        transfer_wall = self.profile.scan_seconds(len(wire))
        self.ledger.record(
            Component.QR_SCAN,
            wall_seconds=transfer_wall,
            cpu_user_seconds=transfer_wall * 0.02,
            cpu_system_seconds=transfer_wall * 0.03,
            label=label or "scan",
        )
        decode_scale = self.profile.cpu_multiplier
        with self.ledger.measure(Component.QR_READ_WRITE, label=f"{label or 'scan'}:decode", cpu_scale=decode_scale):
            decoded = type(code).decode(wire, label=getattr(code, "label", ""))
        if decoded.payload != code.payload:
            raise ProtocolError("scanned payload does not match the printed payload")
        self.scans.append(code)
        return decoded

    @property
    def total_scans(self) -> int:
        return len(self.scans)
