"""The receipt printer model.

The kiosk prints the TRIP receipt incrementally (commit code, then — after
the envelope scan — the check-out ticket and response code).  Printing is the
single largest latency component in Fig. 4a; the EPSON TM-T20III thermal
printer advances the paper at a roughly constant rate, so print time is
modelled as a fixed setup cost plus a per-line cost, and the CPU cost of
rendering the job (the CUPS pipeline the paper instruments) scales with the
hardware profile's ``print_render_multiplier``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.peripherals.clock import Component, LatencyLedger
from repro.peripherals.hardware import HardwareProfile
from repro.peripherals.qr import Barcode, QRCode

PrintableCode = Union[QRCode, Barcode]

# A printed QR code occupies a number of receipt lines that grows with its
# version (physical size); text labels occupy one line.
_LINES_PER_QR_VERSION = 0.45
_LINES_BASE_QR = 3.0


def _lines_for(code: PrintableCode) -> float:
    if isinstance(code, QRCode):
        return _LINES_BASE_QR + _LINES_PER_QR_VERSION * code.version
    return 2.0  # a 1-D barcode is short


@dataclass
class PrintJob:
    """A batch of codes and text emitted in one print call."""

    codes: List[PrintableCode] = field(default_factory=list)
    text_lines: int = 0

    @property
    def total_lines(self) -> float:
        return self.text_lines + sum(_lines_for(code) for code in self.codes)


@dataclass
class ReceiptPrinter:
    """A simulated thermal receipt printer attached to one hardware profile."""

    profile: HardwareProfile
    ledger: LatencyLedger
    jobs: List[PrintJob] = field(default_factory=list)

    def print_codes(self, *codes: PrintableCode, text_lines: int = 1, label: str = "") -> PrintJob:
        """Print a batch of codes; records QR Print latency on the ledger."""
        job = PrintJob(codes=list(codes), text_lines=text_lines)
        self.jobs.append(job)
        lines = int(round(job.total_lines))
        mechanical = self.profile.print_seconds(lines)
        render_cpu = self.profile.print_cpu_seconds(lines)
        # The job is rendered (CPU-bound, serialized before the paper advances)
        # and then printed mechanically; on the resource-constrained devices the
        # render step is ≈380 % slower, which is why their print wall-clock is
        # visibly higher even though the printer hardware is identical (Fig. 4).
        self.ledger.record(
            Component.QR_PRINT,
            wall_seconds=mechanical + render_cpu,
            cpu_user_seconds=render_cpu * 0.7,
            cpu_system_seconds=render_cpu * 0.3,
            label=label or "print",
        )
        return job

    @property
    def total_jobs(self) -> int:
        return len(self.jobs)
