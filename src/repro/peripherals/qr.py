"""QR-code and barcode payload model.

TRIP materializes protocol messages as machine-readable codes: the check-in
ticket is a barcode (limited capacity, hence a MAC rather than a signature),
and the receipt and envelope carry QR codes of 13–356 bytes (§7.2).  We do
not rasterize actual QR images — the protocol only cares about the payload
bytes and the code's size class, which drives the print and scan latency
models — but we do model QR versioning (capacity per version) and perform a
real encode/decode round-trip (base64 framing with a checksum) so that
corrupted payloads are detected, mirroring what gozxing does for the Go
prototype.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

from repro.crypto.hashing import sha256
from repro.errors import ProtocolError

# Approximate binary capacity (bytes) of QR versions 1-16 at error-correction
# level M.  Enough for TRIP's 13-356 byte payloads.
_QR_CAPACITY_BYTES = [
    14, 26, 42, 62, 84, 106, 122, 152, 180, 213, 251, 287, 331, 362, 412, 450,
]

_MAX_BARCODE_BYTES = 48  # Code-128 practical payload limit for a check-in ticket.


def qr_version_for(payload_length: int) -> int:
    """The smallest QR version (1-based) that can hold ``payload_length`` bytes."""
    for version, capacity in enumerate(_QR_CAPACITY_BYTES, start=1):
        if payload_length <= capacity:
            return version
    raise ProtocolError(f"payload of {payload_length} bytes exceeds supported QR capacity")


def _frame(payload: bytes) -> bytes:
    """Encode payload with a 4-byte checksum, as the wire representation."""
    return base64.b64encode(sha256(payload)[:4] + payload)


def _unframe(data: bytes) -> bytes:
    raw = base64.b64decode(data, validate=True)
    checksum, payload = raw[:4], raw[4:]
    if sha256(payload)[:4] != checksum:
        raise ProtocolError("QR payload checksum mismatch (scan error or tampering)")
    return payload


@dataclass(frozen=True)
class QRCode:
    """A QR code carrying an opaque binary payload."""

    payload: bytes
    label: str = ""

    @property
    def version(self) -> int:
        return qr_version_for(len(self.payload))

    @property
    def encoded(self) -> bytes:
        """The framed wire bytes actually transferred by a scanner."""
        return _frame(self.payload)

    @property
    def wire_length(self) -> int:
        return len(self.encoded)

    @classmethod
    def decode(cls, encoded: bytes, label: str = "") -> "QRCode":
        """Reconstruct a QR code from scanned wire bytes (checksum-verified)."""
        return cls(payload=_unframe(encoded), label=label)


@dataclass(frozen=True)
class Barcode:
    """A 1-D barcode (check-in tickets); much smaller capacity than a QR code."""

    payload: bytes
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.payload) > _MAX_BARCODE_BYTES:
            raise ProtocolError(
                f"barcode payload of {len(self.payload)} bytes exceeds the "
                f"{_MAX_BARCODE_BYTES}-byte capacity; use a QR code instead"
            )

    @property
    def encoded(self) -> bytes:
        return _frame(self.payload)

    @property
    def wire_length(self) -> int:
        return len(self.encoded)

    @classmethod
    def decode(cls, encoded: bytes, label: str = "") -> "Barcode":
        return cls(payload=_unframe(encoded), label=label)
