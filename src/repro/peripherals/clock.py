"""Latency accounting for the simulated registration pipeline.

Figure 4 of the paper decomposes each TRIP registration phase (CheckIn,
Authorization, RealToken, FakeToken, CheckOut, Activation) into four
components: *Crypto & Logic*, *QR Read/Write*, *QR Scan* and *QR Print*,
reporting both wall-clock and CPU medians.  The :class:`LatencyLedger`
collects exactly that decomposition: protocol code opens a phase, and every
peripheral / crypto call records a :class:`TimedSpan` with its component,
simulated wall-clock seconds and simulated CPU (user/system) seconds.
"""

from __future__ import annotations

import enum
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class Component(enum.Enum):
    """The latency components of Fig. 4."""

    CRYPTO = "Crypto & Logic"
    QR_READ_WRITE = "QR Read/Write"
    QR_SCAN = "QR Scan"
    QR_PRINT = "QR Print"


@dataclass(frozen=True)
class TimedSpan:
    """One timed operation inside a registration phase."""

    phase: str
    component: Component
    wall_seconds: float
    cpu_user_seconds: float
    cpu_system_seconds: float
    label: str = ""

    @property
    def cpu_seconds(self) -> float:
        return self.cpu_user_seconds + self.cpu_system_seconds


@dataclass
class LatencyLedger:
    """Accumulates timed spans and aggregates them per phase/component."""

    spans: List[TimedSpan] = field(default_factory=list)
    _current_phase: Optional[str] = None

    # Phase management -----------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope all spans recorded inside the block to phase ``name``."""
        previous = self._current_phase
        self._current_phase = name
        try:
            yield
        finally:
            self._current_phase = previous

    @property
    def current_phase(self) -> str:
        return self._current_phase or "Unscoped"

    # Recording -------------------------------------------------------------------

    def record(
        self,
        component: Component,
        wall_seconds: float,
        cpu_user_seconds: float = 0.0,
        cpu_system_seconds: float = 0.0,
        label: str = "",
        phase: Optional[str] = None,
    ) -> TimedSpan:
        span = TimedSpan(
            phase=phase or self.current_phase,
            component=component,
            wall_seconds=wall_seconds,
            cpu_user_seconds=cpu_user_seconds,
            cpu_system_seconds=cpu_system_seconds,
            label=label,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def measure(self, component: Component, label: str = "", cpu_scale: float = 1.0) -> Iterator[None]:
        """Measure real Python wall-clock/CPU time for the enclosed block.

        ``cpu_scale`` lets hardware profiles slow down the measured crypto time
        to model weaker CPUs (the L1/L2 devices of the paper).
        """
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            wall = (time.perf_counter() - wall_start) * cpu_scale
            cpu = (time.process_time() - cpu_start) * cpu_scale
            self.record(component, wall, cpu_user_seconds=cpu, label=label)

    # Aggregation -----------------------------------------------------------------

    def wall_by_phase_component(self) -> Dict[str, Dict[Component, float]]:
        """Total simulated wall-clock seconds per phase and component."""
        table: Dict[str, Dict[Component, float]] = {}
        for span in self.spans:
            table.setdefault(span.phase, {}).setdefault(span.component, 0.0)
            table[span.phase][span.component] += span.wall_seconds
        return table

    def cpu_by_phase_component(self) -> Dict[str, Dict[Component, float]]:
        """Total simulated CPU seconds (user+system) per phase and component."""
        table: Dict[str, Dict[Component, float]] = {}
        for span in self.spans:
            table.setdefault(span.phase, {}).setdefault(span.component, 0.0)
            table[span.phase][span.component] += span.cpu_seconds
        return table

    def total_wall_seconds(self) -> float:
        return sum(span.wall_seconds for span in self.spans)

    def total_cpu_seconds(self) -> float:
        return sum(span.cpu_seconds for span in self.spans)

    def wall_seconds_for(self, component: Component) -> float:
        return sum(span.wall_seconds for span in self.spans if span.component == component)

    def phase_wall_seconds(self, phase: str) -> float:
        return sum(span.wall_seconds for span in self.spans if span.phase == phase)

    def phases(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.phase not in seen:
                seen.append(span.phase)
        return seen

    def merge(self, other: "LatencyLedger") -> None:
        self.spans.extend(other.spans)
