"""Simulated kiosk peripherals and hardware profiles.

The paper evaluates TRIP's *voter-observable* latency on four hardware setups
(§7.1–7.2): a Point-of-Sale kiosk (L1), a Raspberry Pi 4 (L2), a MacBook Pro
VM (H1) and a Beelink mini-PC (H2), each driving an EPSON receipt printer and
a Bluetooth barcode/QR scanner.  Since we have none of that hardware, this
package provides a calibrated simulation:

* :mod:`repro.peripherals.qr` models QR/barcode payloads (capacity, byte
  size, encode/decode work);
* :mod:`repro.peripherals.printer` and :mod:`repro.peripherals.scanner` model
  the mechanical latencies (print time proportional to printed length, the
  ≈948 ms average QR scan transfer the paper measures);
* :mod:`repro.peripherals.hardware` defines the L1/L2/H1/H2 profiles with CPU
  multipliers calibrated so the crypto/QR/print/scan split of Figures 4a/4b
  is reproduced;
* :mod:`repro.peripherals.clock` accumulates simulated wall-clock and CPU
  time per registration phase and component, which is exactly the data the
  Figure 4 benchmarks need.
"""

from repro.peripherals.clock import LatencyLedger, Component, TimedSpan
from repro.peripherals.hardware import HardwareProfile, HARDWARE_PROFILES, hardware_profile
from repro.peripherals.qr import QRCode, Barcode, qr_version_for
from repro.peripherals.printer import ReceiptPrinter
from repro.peripherals.scanner import CodeScanner

__all__ = [
    "LatencyLedger",
    "Component",
    "TimedSpan",
    "HardwareProfile",
    "HARDWARE_PROFILES",
    "hardware_profile",
    "QRCode",
    "Barcode",
    "qr_version_for",
    "ReceiptPrinter",
    "CodeScanner",
]
