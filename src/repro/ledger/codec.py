"""Byte codecs for persisting ledger records.

The persistent backend stores records column-wise as their canonical byte
encodings (``GroupElement.to_bytes`` is fixed-length per group, scalars are
big-endian).  Decoding needs the election :class:`~repro.crypto.group.Group`
to re-instantiate elements, which is why persistent backends take ``group``
at construction: a verifier re-opening someone else's board database brings
the group description, exactly as protocol messages do.

Encoding is lossless: ``decode_*(group, encode_*(record))`` reproduces a
record whose :meth:`payload` — and therefore its position in the hash chain —
is byte-identical.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.group import Group
from repro.crypto.hashing import scalar_bytes
from repro.crypto.schnorr import SchnorrSignature
from repro.ledger.records import (
    BallotRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    RegistrationRecord,
)


def element_width(group: Group) -> int:
    """The fixed byte width of this group's canonical element encoding."""
    return len(group.generator.to_bytes())


def encode_signature(signature: SchnorrSignature) -> bytes:
    return signature.to_bytes()


def decode_signature(group: Group, data: bytes) -> SchnorrSignature:
    width = element_width(group)
    commitment = group.element_from_bytes(data[:width])
    response = int.from_bytes(data[width:], "big")
    return SchnorrSignature(commitment=commitment, response=response)


#: Scalars persist in their canonical transcript encoding (one source of truth).
encode_scalar = scalar_bytes


def decode_scalar(data: bytes) -> int:
    return int.from_bytes(data, "big")


# ---------------------------------------------------------------------- records


def encode_registration(record: RegistrationRecord) -> Tuple[str, bytes, bytes, bytes, bytes, bytes, bytes]:
    return (
        record.voter_id,
        record.public_credential_c1.to_bytes(),
        record.public_credential_c2.to_bytes(),
        record.kiosk_public_key.to_bytes(),
        encode_signature(record.kiosk_signature),
        record.official_public_key.to_bytes(),
        encode_signature(record.official_signature),
    )


def decode_registration(group: Group, row: Tuple) -> RegistrationRecord:
    voter_id, c1, c2, kiosk_pk, kiosk_sig, official_pk, official_sig = row
    return RegistrationRecord(
        voter_id=voter_id,
        public_credential_c1=group.element_from_bytes(bytes(c1)),
        public_credential_c2=group.element_from_bytes(bytes(c2)),
        kiosk_public_key=group.element_from_bytes(bytes(kiosk_pk)),
        kiosk_signature=decode_signature(group, bytes(kiosk_sig)),
        official_public_key=group.element_from_bytes(bytes(official_pk)),
        official_signature=decode_signature(group, bytes(official_sig)),
    )


def encode_envelope_commitment(record: EnvelopeCommitmentRecord) -> Tuple[bytes, bytes, bytes]:
    return (
        record.printer_public_key.to_bytes(),
        record.challenge_hash,
        encode_signature(record.printer_signature),
    )


def decode_envelope_commitment(group: Group, row: Tuple) -> EnvelopeCommitmentRecord:
    printer_pk, challenge_hash, printer_sig = row
    return EnvelopeCommitmentRecord(
        printer_public_key=group.element_from_bytes(bytes(printer_pk)),
        challenge_hash=bytes(challenge_hash),
        printer_signature=decode_signature(group, bytes(printer_sig)),
    )


def encode_envelope_usage(record: EnvelopeUsageRecord) -> Tuple[bytes, bytes]:
    return (encode_scalar(record.challenge), record.challenge_hash)


def decode_envelope_usage(row: Tuple) -> EnvelopeUsageRecord:
    challenge, challenge_hash = row
    return EnvelopeUsageRecord(
        challenge=decode_scalar(bytes(challenge)), challenge_hash=bytes(challenge_hash)
    )


def encode_ballot(record: BallotRecord) -> Tuple[str, bytes, bytes, bytes, bytes]:
    return (
        record.election_id,
        record.credential_public_key.to_bytes(),
        record.ciphertext_c1.to_bytes(),
        record.ciphertext_c2.to_bytes(),
        encode_signature(record.signature),
    )


def decode_ballot(group: Group, row: Tuple) -> BallotRecord:
    election_id, credential_pk, c1, c2, signature = row
    return BallotRecord(
        election_id=election_id,
        credential_public_key=group.element_from_bytes(bytes(credential_pk)),
        ciphertext_c1=group.element_from_bytes(bytes(c1)),
        ciphertext_c2=group.element_from_bytes(bytes(c2)),
        signature=decode_signature(group, bytes(signature)),
    )
