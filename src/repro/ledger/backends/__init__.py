"""Concrete :class:`repro.ledger.api.LedgerBackend` implementations.

* :mod:`~repro.ledger.backends.memory` — the thread-safe in-process store
  (the reference semantics every other backend must reproduce bit-for-bit);
* :mod:`~repro.ledger.backends.sqlite` — write-through persistence on SQLite;
* :mod:`~repro.ledger.backends.batched` — a write-behind ingestion decorator
  coalescing appends into hash-chained batches, with an asyncio front-end.
"""

from repro.ledger.backends.batched import AsyncIngestionFrontend, BatchedBoard, BatchSummary
from repro.ledger.backends.memory import MemoryBackend
from repro.ledger.backends.sqlite import SQLiteBackend

__all__ = [
    "AsyncIngestionFrontend",
    "BatchedBoard",
    "BatchSummary",
    "MemoryBackend",
    "SQLiteBackend",
]
