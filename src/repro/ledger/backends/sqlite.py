"""A persistent ledger backend on SQLite.

Write-through design: every accepted append command lands in the in-memory
store (inherited from :class:`~repro.ledger.backends.memory.MemoryBackend`,
so reads stay index-fast and semantics stay bit-identical) *and* in a SQLite
row inside the same lock, committed before the append returns.  Reopening a
database replays the persisted commands through the in-memory store, which
rebuilds the exact same hash chains — an auditor who kept an earlier head can
check consistency across restarts.

``path=":memory:"`` gives a private, non-persistent database — useful for
exercising the full SQL path in tests without touching disk.
"""

from __future__ import annotations

import sqlite3
from typing import Any, List, Optional, Sequence, Tuple

from repro.crypto.group import Group
from repro.errors import LedgerError
from repro.ledger import codec
from repro.ledger.backends.memory import MemoryBackend
from repro.ledger.records import (
    BallotRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    RegistrationRecord,
)

# Every row carries ``commit_seq`` — the board-wide commit position — because
# the hash chains commit to the *interleaving* of streams (roll entries and
# registrations share L_R; commitments and usages share L_E).  Restore replays
# rows in commit_seq order so reopened chains are bit-identical to the
# pre-restart ones.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY, value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS roll (
    commit_seq INTEGER PRIMARY KEY, seq INTEGER NOT NULL, voter_id TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS registrations (
    commit_seq INTEGER PRIMARY KEY, seq INTEGER NOT NULL, voter_id TEXT NOT NULL,
    credential_c1 BLOB NOT NULL, credential_c2 BLOB NOT NULL,
    kiosk_pk BLOB NOT NULL, kiosk_sig BLOB NOT NULL,
    official_pk BLOB NOT NULL, official_sig BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_registrations_voter ON registrations (voter_id);
CREATE TABLE IF NOT EXISTS envelope_commitments (
    commit_seq INTEGER PRIMARY KEY, seq INTEGER NOT NULL, printer_pk BLOB NOT NULL,
    challenge_hash BLOB NOT NULL, printer_sig BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS envelope_usages (
    commit_seq INTEGER PRIMARY KEY, seq INTEGER NOT NULL,
    challenge BLOB NOT NULL, challenge_hash BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS ballots (
    commit_seq INTEGER PRIMARY KEY, seq INTEGER NOT NULL, election_id TEXT NOT NULL,
    credential_pk BLOB NOT NULL, ciphertext_c1 BLOB NOT NULL,
    ciphertext_c2 BLOB NOT NULL, signature BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_ballots_election ON ballots (election_id);
"""


class SQLiteBackend(MemoryBackend):
    """Write-through persistence over the in-memory reference semantics."""

    #: Attributes the inherited ledger.read / ledger.append telemetry series
    #: to this backend instead of the in-memory parent.
    backend_name = "sqlite"

    def __init__(self, path: str = ":memory:", group: Optional[Group] = None) -> None:
        super().__init__()
        self._path = path
        self._group = group
        # The backend lock (not SQLite's) serializes access; the connection
        # may then be shared across ingestion threads safely.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._restoring = False
        self._commit_seq = 0
        self._restore()

    def _next_commit_seq(self) -> int:
        seq = self._commit_seq
        self._commit_seq = seq + 1
        return seq

    # ------------------------------------------------------------- restore

    def _restore(self) -> None:
        commands: List[Tuple[int, str, Tuple[Any, ...]]] = []
        for row in self._conn.execute("SELECT commit_seq, voter_id FROM roll"):
            commands.append((row[0], "roll", row[1:]))
        for row in self._conn.execute(
            "SELECT commit_seq, voter_id, credential_c1, credential_c2, kiosk_pk, kiosk_sig, "
            "official_pk, official_sig FROM registrations"
        ):
            commands.append((row[0], "registration", row[1:]))
        for row in self._conn.execute(
            "SELECT commit_seq, printer_pk, challenge_hash, printer_sig FROM envelope_commitments"
        ):
            commands.append((row[0], "commitment", row[1:]))
        for row in self._conn.execute(
            "SELECT commit_seq, challenge, challenge_hash FROM envelope_usages"
        ):
            commands.append((row[0], "usage", row[1:]))
        for row in self._conn.execute(
            "SELECT commit_seq, election_id, credential_pk, ciphertext_c1, ciphertext_c2, "
            "signature FROM ballots"
        ):
            commands.append((row[0], "ballot", row[1:]))
        if not commands:
            return
        if self._group is None:
            raise LedgerError(
                f"board database {self._path!r} holds records; pass the election "
                "group so they can be decoded"
            )
        group = self._group
        commands.sort(key=lambda command: command[0])
        self._restoring = True
        try:
            for _, kind, row in commands:
                if kind == "roll":
                    self.publish_electoral_roll([row[0]])
                elif kind == "registration":
                    self.append_registration(codec.decode_registration(group, row))
                elif kind == "commitment":
                    self.append_envelope_commitment(codec.decode_envelope_commitment(group, row))
                elif kind == "usage":
                    self.append_envelope_usage(codec.decode_envelope_usage(row))
                else:
                    self.append_ballot(codec.decode_ballot(group, row))
        finally:
            self._restoring = False
        self._commit_seq = commands[-1][0] + 1

    # ------------------------------------------------------------- writes

    def publish_electoral_roll(self, voter_ids: Sequence[str]) -> None:
        with self._lock:
            base = len(self.eligible_voters())
            super().publish_electoral_roll(voter_ids)
            if self._restoring:
                return
            self._conn.executemany(
                "INSERT INTO roll (commit_seq, seq, voter_id) VALUES (?, ?, ?)",
                [
                    (self._next_commit_seq(), base + offset, voter_id)
                    for offset, voter_id in enumerate(voter_ids)
                ],
            )
            self._conn.commit()

    def append_registration(self, record: RegistrationRecord) -> int:
        with self._lock:
            seq = super().append_registration(record)
            if not self._restoring:
                self._conn.execute(
                    "INSERT INTO registrations (commit_seq, seq, voter_id, credential_c1, "
                    "credential_c2, kiosk_pk, kiosk_sig, official_pk, official_sig) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (self._next_commit_seq(), seq) + codec.encode_registration(record),
                )
                self._conn.commit()
            return seq

    def append_envelope_commitment(self, record: EnvelopeCommitmentRecord) -> int:
        with self._lock:
            seq = super().append_envelope_commitment(record)
            if not self._restoring:
                self._conn.execute(
                    "INSERT INTO envelope_commitments (commit_seq, seq, printer_pk, "
                    "challenge_hash, printer_sig) VALUES (?, ?, ?, ?, ?)",
                    (self._next_commit_seq(), seq) + codec.encode_envelope_commitment(record),
                )
                self._conn.commit()
            return seq

    def append_envelope_usage(self, record: EnvelopeUsageRecord) -> int:
        with self._lock:
            seq = super().append_envelope_usage(record)
            if not self._restoring:
                self._conn.execute(
                    "INSERT INTO envelope_usages (commit_seq, seq, challenge, challenge_hash) "
                    "VALUES (?, ?, ?, ?)",
                    (self._next_commit_seq(), seq) + codec.encode_envelope_usage(record),
                )
                self._conn.commit()
            return seq

    def append_ballot(self, record: BallotRecord) -> int:
        with self._lock:
            seq = super().append_ballot(record)
            if not self._restoring:
                self._conn.execute(
                    "INSERT INTO ballots (commit_seq, seq, election_id, credential_pk, "
                    "ciphertext_c1, ciphertext_c2, signature) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (self._next_commit_seq(), seq) + codec.encode_ballot(record),
                )
                self._conn.commit()
            return seq

    def append_ballots(
        self, records: Sequence[BallotRecord], payloads: Optional[Sequence[bytes]] = None
    ) -> List[int]:
        if not records:
            return []
        with self._lock:
            seqs = super().append_ballots(records, payloads=payloads)
            if not self._restoring:
                self._conn.executemany(
                    "INSERT INTO ballots (commit_seq, seq, election_id, credential_pk, "
                    "ciphertext_c1, ciphertext_c2, signature) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [
                        (self._next_commit_seq(), seq) + codec.encode_ballot(record)
                        for seq, record in zip(seqs, records)
                    ],
                )
                self._conn.commit()
            return seqs

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        with self._lock:
            # sqlite3 connections close idempotently, so repeated close()
            # calls (the LedgerBackend contract) need no sentinel dance.
            self._conn.close()
