"""Write-behind batching for ballot ingestion.

:class:`BatchedBoard` decorates any :class:`~repro.ledger.api.LedgerBackend`:
append commands return after a cheap buffer push, and buffered commands are
flushed to the inner backend in **hash-chained batches** — each flush commits
to its records and to the previous batch digest, so the ingestion front-end
is tamper-evident even before records reach the inner chains.  Flushes
trigger by size (``batch_size`` buffered commands), by interval (a daemon
flusher thread, when ``flush_interval`` is set), on any read (a read barrier
guaranteeing read-your-writes — the semantics every other backend has), or
explicitly via :meth:`flush`.

Because the inner backend receives the exact same command sequence, a flushed
``BatchedBoard`` is bit-for-bit identical to an unbatched board: same records,
same hash chains, same heads.  What batching buys is ingestion latency — the
per-append work drops to a lock-protected list push, with payload hashing and
chain extension amortized over whole batches (see
``benchmarks/bench_board_ingestion.py``).

Validation stays eager where deferral would change observable behavior:
ineligible registrations and duplicate envelope challenges raise at append
time, checked against the inner state *plus* the pending buffer.

:class:`AsyncIngestionFrontend` adapts a board for asyncio casting clients:
concurrent tasks post without blocking the event loop on chaining, and
``flush``/``drain`` off-load the heavy work to a thread.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, cast

from repro import telemetry
from repro.crypto.hashing import sha256
from repro.errors import LedgerError
from repro.ledger.api import BallotPage, Cursor, GENESIS_CURSOR, LedgerBackend
from repro.ledger.log import AppendOnlyLog
from repro.ledger.records import (
    BallotRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    LedgerRecord,
    RegistrationRecord,
)

_GENESIS_BATCH = b"\x00" * 32

# Command kinds in the pending buffer.
_REGISTRATION = 0
_ENVELOPE_COMMITMENT = 1
_ENVELOPE_USAGE = 2
_BALLOT = 3


@dataclass(frozen=True)
class BatchSummary:
    """One flushed batch: its position, size and chained digest."""

    index: int
    num_records: int
    previous_digest: bytes
    digest: bytes

    @staticmethod
    def compute_digest(index: int, previous_digest: bytes, payloads: Sequence[bytes]) -> bytes:
        return sha256(b"ingest-batch", index.to_bytes(8, "big"), previous_digest, *payloads)


def verify_batch_chain(batches: Sequence[BatchSummary]) -> bool:
    """Check the batch digests chain correctly (digest recomputation needs the
    records and happens in the equivalence tests; this checks the linkage)."""
    previous = _GENESIS_BATCH
    for index, batch in enumerate(batches):
        if batch.index != index or batch.previous_digest != previous:
            return False
        previous = batch.digest
    return True


class BatchedBoard(LedgerBackend):
    """A write-behind decorator coalescing appends into hash-chained batches."""

    DEFAULT_BATCH_SIZE = 256

    def __init__(
        self,
        inner: LedgerBackend,
        batch_size: int = DEFAULT_BATCH_SIZE,
        flush_interval: Optional[float] = None,
    ) -> None:
        if batch_size < 1:
            raise LedgerError(f"batch size must be positive, got {batch_size}")
        self.inner = inner
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self._lock = threading.RLock()
        self._pending: List[Tuple[int, LedgerRecord]] = []
        self._pending_challenges: Set[bytes] = set()
        self._pending_active: Dict[str, RegistrationRecord] = {}
        self._batches: List[BatchSummary] = []
        self._batch_digest = _GENESIS_BATCH
        # Stream counts = inner counts + buffered, so provisional sequence
        # numbers equal the ones the inner backend will assign at flush.
        self._counts = {
            _REGISTRATION: len(inner.registration_records()),
            _ENVELOPE_COMMITMENT: inner.num_envelope_commitments,
            _ENVELOPE_USAGE: inner.num_challenges_used,
            _BALLOT: inner.num_ballots,
        }
        self._flusher: Optional[threading.Thread] = None
        self._stop_flusher = threading.Event()

    # ------------------------------------------------------------- flushing

    def _start_flusher_locked(self) -> None:
        if self.flush_interval is None or self._flusher is not None:
            return
        self._flusher = threading.Thread(
            target=self._flush_periodically, name="repro-ledger-flusher", daemon=True
        )
        self._flusher.start()

    def _flush_periodically(self) -> None:
        while not self._stop_flusher.wait(self.flush_interval):
            self.flush()

    def flush(self) -> None:
        """Drain the pending buffer into the inner backend as one chained batch.

        Failure-safe: the buffer is cleared and the batch digest committed
        only after the inner replay fully succeeds.  If an inner append
        raises (I/O error, locked database), the unapplied suffix stays
        buffered — clients' receipts remain valid and a later flush retries
        it.  (Validation errors cannot surface here: eligibility and
        duplicate-challenge checks run eagerly at append time, so flush-time
        failures are storage failures.)
        """
        with self._lock:
            pending = self._pending
            if not pending:
                return
            # Flush-size distribution: how well ingestion amortizes chaining.
            telemetry.histogram("ledger.flush.records", len(pending), backend="batched")
            with telemetry.span("ledger.flush", backend="batched", records=len(pending)):
                self._flush_locked(pending)

    def _flush_locked(self, pending: List[Tuple[int, LedgerRecord]]) -> None:
        payloads = [record.payload() for _, record in pending]
        # Replay in order; runs of consecutive ballots take the bulk path,
        # reusing the payloads the batch digest will hash below.
        applied = 0
        run: List[BallotRecord] = []
        run_payloads: List[bytes] = []
        try:
            for (kind, record), payload in zip(pending, payloads):
                # The kind tag (set by the typed append commands) identifies
                # the union member, which mypy cannot narrow from — hence the
                # casts.
                if kind == _BALLOT:
                    run.append(cast(BallotRecord, record))
                    run_payloads.append(payload)
                    continue
                if run:
                    self.inner.append_ballots(run, payloads=run_payloads)
                    applied += len(run)
                    run, run_payloads = [], []
                if kind == _REGISTRATION:
                    self.inner.append_registration(cast(RegistrationRecord, record))
                elif kind == _ENVELOPE_COMMITMENT:
                    self.inner.append_envelope_commitment(
                        cast(EnvelopeCommitmentRecord, record)
                    )
                else:
                    self.inner.append_envelope_usage(cast(EnvelopeUsageRecord, record))
                applied += 1
            if run:
                self.inner.append_ballots(run, payloads=run_payloads)
                applied += len(run)
            self.inner.flush()
        except BaseException:
            self._pending = pending[applied:]
            self._rebuild_pending_caches()
            if applied:
                # The applied prefix reached the inner ledger; keep the
                # batch audit chain covering exactly what landed.
                self._commit_batch(payloads[:applied])
            raise
        self._pending = []
        self._pending_challenges.clear()
        self._pending_active.clear()
        self._commit_batch(payloads)

    def _commit_batch(self, payloads: Sequence[bytes]) -> None:
        digest = BatchSummary.compute_digest(len(self._batches), self._batch_digest, payloads)
        self._batches.append(
            BatchSummary(
                index=len(self._batches),
                num_records=len(payloads),
                previous_digest=self._batch_digest,
                digest=digest,
            )
        )
        self._batch_digest = digest

    def _rebuild_pending_caches(self) -> None:
        """Recompute the eager-validation caches from the surviving buffer."""
        self._pending_challenges = {
            cast(EnvelopeUsageRecord, record).challenge_hash
            for kind, record in self._pending
            if kind == _ENVELOPE_USAGE
        }
        self._pending_active = {
            cast(RegistrationRecord, record).voter_id: cast(RegistrationRecord, record)
            for kind, record in self._pending
            if kind == _REGISTRATION
        }

    def _buffer(self, kind: int, record: LedgerRecord) -> int:
        seq = self._counts[kind]
        self._counts[kind] = seq + 1
        self._pending.append((kind, record))
        self._start_flusher_locked()
        if len(self._pending) >= self.batch_size:
            self.flush()
        return seq

    @property
    def batches(self) -> List[BatchSummary]:
        """The hash-chained flush history (ingestion-side audit trail)."""
        with self._lock:
            return list(self._batches)

    @property
    def num_pending(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------- electoral roll

    def publish_electoral_roll(self, voter_ids: Sequence[str]) -> None:
        with self._lock:
            self.flush()  # keep roll entries ordered before later records
            self.inner.publish_electoral_roll(voter_ids)

    def eligible_voters(self) -> List[str]:
        return self.inner.eligible_voters()

    def is_eligible(self, voter_id: str) -> bool:
        return self.inner.is_eligible(voter_id)

    # ------------------------------------------------------------- append commands

    def append_registration(self, record: RegistrationRecord) -> int:
        with self._lock:
            if not self.inner.is_eligible(record.voter_id):
                raise LedgerError(f"voter {record.voter_id} is not on the electoral roll")
            self._pending_active[record.voter_id] = record
            return self._buffer(_REGISTRATION, record)

    def append_envelope_commitment(self, record: EnvelopeCommitmentRecord) -> int:
        with self._lock:
            return self._buffer(_ENVELOPE_COMMITMENT, record)

    def append_envelope_usage(self, record: EnvelopeUsageRecord) -> int:
        with self._lock:
            if (
                record.challenge_hash in self._pending_challenges
                or self.inner.is_challenge_used(record.challenge_hash)
            ):
                raise LedgerError("envelope challenge already used: possible duplicate envelopes")
            self._pending_challenges.add(record.challenge_hash)
            return self._buffer(_ENVELOPE_USAGE, record)

    def append_ballot(self, record: BallotRecord) -> int:
        with self._lock:
            return self._buffer(_BALLOT, record)

    def append_ballots(
        self, records: Sequence[BallotRecord], payloads: Optional[Sequence[bytes]] = None
    ) -> List[int]:
        with self._lock:
            return [self._buffer(_BALLOT, record) for record in records]

    def try_append_ballots(self, records: Sequence[BallotRecord]) -> Optional[List[int]]:
        """Buffer ``records`` only if that is guaranteed cheap: the lock is
        free right now and the appends cannot trip the size-triggered flush.
        Returns ``None`` otherwise — callers (the asyncio front-end) then
        route the append to a worker thread instead of risking a blocking
        flush on their thread."""
        if not self._lock.acquire(blocking=False):
            return None
        try:
            if len(self._pending) + len(records) >= self.batch_size:
                return None
            return [self._buffer(_BALLOT, record) for record in records]
        finally:
            self._lock.release()

    # ------------------------------------------------------------- reads (barrier)

    def registration_for(self, voter_id: str) -> Optional[RegistrationRecord]:
        with self._lock:
            # Fast path: a buffered registration is the freshest record.
            buffered = self._pending_active.get(voter_id)
            if buffered is not None:
                return buffered
            return self.inner.registration_for(voter_id)

    def registration_history(self, voter_id: str) -> List[RegistrationRecord]:
        with self._lock:
            self.flush()
            return self.inner.registration_history(voter_id)

    def registration_records(self) -> List[RegistrationRecord]:
        with self._lock:
            self.flush()
            return self.inner.registration_records()

    def active_registrations(self) -> List[RegistrationRecord]:
        with self._lock:
            self.flush()
            return self.inner.active_registrations()

    @property
    def num_registered(self) -> int:
        with self._lock:
            self.flush()
            return self.inner.num_registered

    def envelope_commitment(self, challenge_hash: bytes) -> Optional[EnvelopeCommitmentRecord]:
        with self._lock:
            self.flush()
            return self.inner.envelope_commitment(challenge_hash)

    def envelope_commitments(self) -> Dict[bytes, EnvelopeCommitmentRecord]:
        with self._lock:
            self.flush()
            return self.inner.envelope_commitments()

    def is_challenge_used(self, challenge_hash: bytes) -> bool:
        with self._lock:
            if challenge_hash in self._pending_challenges:
                return True
            return self.inner.is_challenge_used(challenge_hash)

    def used_challenges(self) -> Dict[bytes, EnvelopeUsageRecord]:
        with self._lock:
            self.flush()
            return self.inner.used_challenges()

    @property
    def num_envelope_commitments(self) -> int:
        with self._lock:
            self.flush()
            return self.inner.num_envelope_commitments

    @property
    def num_challenges_used(self) -> int:
        with self._lock:
            self.flush()
            return self.inner.num_challenges_used

    def read_ballots(
        self,
        since: Cursor = GENESIS_CURSOR,
        limit: Optional[int] = None,
        election_id: Optional[str] = None,
    ) -> BallotPage:
        with self._lock:
            self.flush()
            return self.inner.read_ballots(since=since, limit=limit, election_id=election_id)

    @property
    def num_ballots(self) -> int:
        with self._lock:
            self.flush()
            return self.inner.num_ballots

    # ------------------------------------------------------------- logs + audit

    @property
    def registration_log(self) -> AppendOnlyLog:
        with self._lock:
            self.flush()
            return self.inner.registration_log

    @property
    def envelope_log(self) -> AppendOnlyLog:
        with self._lock:
            self.flush()
            return self.inner.envelope_log

    @property
    def ballot_log(self) -> AppendOnlyLog:
        with self._lock:
            self.flush()
            return self.inner.ballot_log

    def verify_all_chains(self) -> bool:
        # Delegates the sub-ledger walk to the inner backend (which reuses the
        # shared ``verify_chained_logs`` helper) and adds the ingestion-batch
        # chain this decorator maintains on top.
        with self._lock:
            self.flush()
            return self.inner.verify_all_chains() and verify_batch_chain(self._batches)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        with self._lock:
            self.flush()
        self._stop_flusher.set()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
            self._flusher = None
        self.inner.close()


class AsyncIngestionFrontend:
    """asyncio adapter for concurrent ballot casting against any board backend.

    Appends that are plain buffer pushes run inline on the event loop; any
    append that would do real chaining work — a :class:`BatchedBoard` append
    about to hit its size trigger, or any append on an unbatched backend —
    is off-loaded to a worker thread, so the loop never blocks on hashing or
    I/O.
    """

    def __init__(self, board: LedgerBackend) -> None:
        self._board = board

    async def post_ballot(self, record: BallotRecord) -> int:
        if isinstance(self._board, BatchedBoard):
            # try_append checks lock availability and the flush trigger
            # atomically, so the inline path can neither block on a running
            # flush nor start one on the event loop.
            seqs = self._board.try_append_ballots([record])
            if seqs is not None:
                return seqs[0]
        return await asyncio.to_thread(self._board.append_ballot, record)

    async def post_ballots(self, records: Sequence[BallotRecord]) -> List[int]:
        if isinstance(self._board, BatchedBoard):
            seqs = self._board.try_append_ballots(records)
            if seqs is not None:
                return seqs
        return await asyncio.to_thread(self._board.append_ballots, records)

    async def flush(self) -> None:
        await asyncio.to_thread(self._board.flush)

    async def drain(self) -> None:
        """Flush and wait until every buffered record reached the inner board."""
        await self.flush()
