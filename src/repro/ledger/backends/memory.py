"""The thread-safe in-memory ledger backend.

This is the refactored descendant of the original concrete ``BulletinBoard``
store: the same three hash-chained logs and typed record collections, now

* behind the :class:`~repro.ledger.api.LedgerBackend` contract,
* guarded by a re-entrant lock so casting clients can append concurrently
  (appends are totally ordered by lock acquisition; the hash chains commit
  to that order), and
* indexed — ballots by ``election_id`` and registrations by voter — so the
  cursor reads and `registration_history()` the tally/verify paths hammer
  stop rescanning full lists.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Set

from repro import telemetry
from repro.crypto.hashing import sha256
from repro.errors import LedgerError
from repro.ledger.api import (
    BallotPage,
    Cursor,
    GENESIS_CURSOR,
    LedgerBackend,
    verify_chained_logs,
)
from repro.ledger.log import AppendOnlyLog
from repro.ledger.records import (
    BallotRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    RegistrationRecord,
)


class MemoryBackend(LedgerBackend):
    """The ledger ``L`` with its three sub-ledgers, held in process memory."""

    #: Telemetry label; subclasses (sqlite) override so the shared read/append
    #: instrumentation below attributes latency to the right backend.
    backend_name = "memory"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._registration_log = AppendOnlyLog("L_R")
        self._envelope_log = AppendOnlyLog("L_E")
        self._ballot_log = AppendOnlyLog("L_V")

        self._eligible: List[str] = []
        self._eligible_set: Set[str] = set()

        self._registrations: List[RegistrationRecord] = []
        self._registrations_by_voter: Dict[str, List[RegistrationRecord]] = {}
        self._active_registration: Dict[str, RegistrationRecord] = {}

        self._envelope_commitments: Dict[bytes, EnvelopeCommitmentRecord] = {}
        self._used_challenges: Dict[bytes, EnvelopeUsageRecord] = {}

        self._ballots: List[BallotRecord] = []
        # Per-election parallel lists of (ascending seq, record), so filtered
        # cursor reads bisect instead of scanning the full ballot list.
        self._ballots_by_election: Dict[str, List[BallotRecord]] = {}
        self._ballot_seqs_by_election: Dict[str, List[int]] = {}

    # ------------------------------------------------------------- electoral roll

    def publish_electoral_roll(self, voter_ids: Sequence[str]) -> None:
        with self._lock:
            # Validate the whole batch before mutating anything, so a
            # duplicate cannot leave a half-applied roll (or, in persistent
            # subclasses, a memory/database divergence).
            seen = set(self._eligible_set)
            for voter_id in voter_ids:
                if voter_id in seen:
                    raise LedgerError(f"duplicate voter identifier on the roll: {voter_id}")
                seen.add(voter_id)
            for voter_id in voter_ids:
                self._eligible.append(voter_id)
                self._eligible_set.add(voter_id)
                self._registration_log.append(sha256(b"eligible-voter", voter_id.encode()))

    def eligible_voters(self) -> List[str]:
        with self._lock:
            return list(self._eligible)

    def is_eligible(self, voter_id: str) -> bool:
        with self._lock:
            return voter_id in self._eligible_set

    # ------------------------------------------------------------- append commands

    def append_registration(self, record: RegistrationRecord) -> int:
        with self._lock:
            if record.voter_id not in self._eligible_set:
                raise LedgerError(f"voter {record.voter_id} is not on the electoral roll")
            seq = len(self._registrations)
            self._registration_log.append(record.payload())
            self._registrations.append(record)
            self._registrations_by_voter.setdefault(record.voter_id, []).append(record)
            self._active_registration[record.voter_id] = record
            return seq

    def append_envelope_commitment(self, record: EnvelopeCommitmentRecord) -> int:
        with self._lock:
            seq = len(self._envelope_commitments)
            self._envelope_log.append(record.payload())
            self._envelope_commitments[record.challenge_hash] = record
            return seq

    def append_envelope_usage(self, record: EnvelopeUsageRecord) -> int:
        with self._lock:
            if record.challenge_hash in self._used_challenges:
                raise LedgerError("envelope challenge already used: possible duplicate envelopes")
            seq = len(self._used_challenges)
            self._envelope_log.append(record.payload())
            self._used_challenges[record.challenge_hash] = record
            return seq

    def _index_ballot(self, seq: int, record: BallotRecord) -> None:
        self._ballots.append(record)
        self._ballots_by_election.setdefault(record.election_id, []).append(record)
        self._ballot_seqs_by_election.setdefault(record.election_id, []).append(seq)

    def append_ballot(self, record: BallotRecord) -> int:
        with self._lock:
            seq = len(self._ballots)
            self._ballot_log.append(record.payload())
            self._index_ballot(seq, record)
        # Counter only (no span object) on the single-append hot path: this
        # is the casting client's per-ballot ingestion latency.
        telemetry.counter("ledger.append.ballots", backend=self.backend_name)
        return seq

    def append_ballots(
        self, records: Sequence[BallotRecord], payloads: Optional[Sequence[bytes]] = None
    ) -> List[int]:
        """Bulk append under one lock acquisition and one chain walk."""
        if not records:
            return []
        if payloads is None:
            payloads = [record.payload() for record in records]
        with telemetry.span("ledger.append", backend=self.backend_name, items=len(records)):
            with self._lock:
                first = len(self._ballots)
                self._ballot_log.append_many(payloads)
                for offset, record in enumerate(records):
                    self._index_ballot(first + offset, record)
                seqs = list(range(first, first + len(records)))
        telemetry.counter("ledger.append.ballots", len(records), backend=self.backend_name)
        return seqs

    # ------------------------------------------------------------- registration reads

    def registration_for(self, voter_id: str) -> Optional[RegistrationRecord]:
        with self._lock:
            return self._active_registration.get(voter_id)

    def registration_history(self, voter_id: str) -> List[RegistrationRecord]:
        with self._lock:
            return list(self._registrations_by_voter.get(voter_id, []))

    def registration_records(self) -> List[RegistrationRecord]:
        with self._lock:
            return list(self._registrations)

    def active_registrations(self) -> List[RegistrationRecord]:
        with self._lock:
            return list(self._active_registration.values())

    @property
    def num_registered(self) -> int:
        with self._lock:
            return len(self._active_registration)

    # ------------------------------------------------------------- envelope reads

    def envelope_commitment(self, challenge_hash: bytes) -> Optional[EnvelopeCommitmentRecord]:
        with self._lock:
            return self._envelope_commitments.get(challenge_hash)

    def envelope_commitments(self) -> Dict[bytes, EnvelopeCommitmentRecord]:
        with self._lock:
            return dict(self._envelope_commitments)

    def is_challenge_used(self, challenge_hash: bytes) -> bool:
        with self._lock:
            return challenge_hash in self._used_challenges

    def used_challenges(self) -> Dict[bytes, EnvelopeUsageRecord]:
        with self._lock:
            return dict(self._used_challenges)

    @property
    def num_envelope_commitments(self) -> int:
        with self._lock:
            return len(self._envelope_commitments)

    @property
    def num_challenges_used(self) -> int:
        with self._lock:
            return len(self._used_challenges)

    # ------------------------------------------------------------- ballot reads

    def read_ballots(
        self,
        since: Cursor = GENESIS_CURSOR,
        limit: Optional[int] = None,
        election_id: Optional[str] = None,
    ) -> BallotPage:
        if since < 0:
            raise LedgerError(f"ballot cursor must be non-negative, got {since}")
        with telemetry.span("ledger.read", backend=self.backend_name, since=since), self._lock:
            total = len(self._ballots)
            start = min(since, total)
            if election_id is None:
                end = total if limit is None else min(start + max(0, limit), total)
                records = self._ballots[start:end]
                return BallotPage(records=records, next_cursor=end, has_more=end < total)
            indexed = self._ballots_by_election.get(election_id, [])
            seqs = self._ballot_seqs_by_election.get(election_id, [])
            # First index entry with seq >= since (seqs are ascending).
            position = bisect_left(seqs, start)
            stop = len(indexed) if limit is None else min(position + max(0, limit), len(indexed))
            has_more = stop < len(indexed)
            # Advance past everything scanned: the last matched record if
            # another page remains, the end of the whole stream once the
            # filter is exhausted — and no progress at all when nothing was
            # read but matches remain (limit=0), so no ballot is ever skipped.
            if stop > position:
                next_cursor = (seqs[stop - 1] + 1) if has_more else total
            else:
                next_cursor = start if has_more else total
            return BallotPage(
                records=indexed[position:stop],
                next_cursor=next_cursor,
                has_more=has_more,
            )

    @property
    def num_ballots(self) -> int:
        with self._lock:
            return len(self._ballots)

    # ------------------------------------------------------------- logs + audit

    @property
    def registration_log(self) -> AppendOnlyLog:
        return self._registration_log

    @property
    def envelope_log(self) -> AppendOnlyLog:
        return self._envelope_log

    @property
    def ballot_log(self) -> AppendOnlyLog:
        return self._ballot_log

    def verify_all_chains(self) -> bool:
        # The shared chain walk, under this backend's append lock.
        with self._lock:
            return verify_chained_logs(self)
