"""The public bulletin board (ledger) substrate.

Votegral's backend includes a ledger ``L`` — an append-only, always-available,
publicly-readable data structure — split into three sub-ledgers (Appendix D.1):

* ``L_R`` the **registration ledger** (one active record per voter identity),
* ``L_E`` the **envelope commitment ledger** (hashes of envelope challenges
  published by the printers, plus challenges consumed at activation),
* ``L_V`` the **ballot ledger** (encrypted ballots).

The paper idealizes the ledger as tamper-evident with a globally consistent
view.  We implement it as a hash-chained append-only log with inclusion
proofs, behind the versioned :class:`~repro.ledger.api.LedgerBackend`
contract (:mod:`repro.ledger.api`): producers issue typed append commands,
consumers stream cursor-based reads through a
:class:`~repro.ledger.api.BoardView`, and the storage backend — thread-safe
in-memory, SQLite-persistent, or write-behind batched — is selected with
:func:`~repro.ledger.api.board_from_spec`.
"""

from repro.ledger.api import (
    BallotPage,
    BoardView,
    Cursor,
    GENESIS_CURSOR,
    LEDGER_API_VERSION,
    LedgerBackend,
    as_board_view,
    board_from_spec,
    chain_logs,
    verify_chained_logs,
)
from repro.ledger.backends import (
    AsyncIngestionFrontend,
    BatchedBoard,
    BatchSummary,
    MemoryBackend,
    SQLiteBackend,
)
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.log import AppendOnlyLog, InclusionProof, LogEntry, LogHead
from repro.ledger.records import (
    BallotRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    RegistrationRecord,
)

__all__ = [
    "AppendOnlyLog",
    "LogEntry",
    "LogHead",
    "InclusionProof",
    "BulletinBoard",
    "RegistrationRecord",
    "EnvelopeCommitmentRecord",
    "EnvelopeUsageRecord",
    "BallotRecord",
    "LEDGER_API_VERSION",
    "LedgerBackend",
    "BoardView",
    "BallotPage",
    "Cursor",
    "GENESIS_CURSOR",
    "as_board_view",
    "board_from_spec",
    "chain_logs",
    "verify_chained_logs",
    "MemoryBackend",
    "SQLiteBackend",
    "BatchedBoard",
    "BatchSummary",
    "AsyncIngestionFrontend",
]
