"""The public bulletin board (ledger) substrate.

Votegral's backend includes a ledger ``L`` — an append-only, always-available,
publicly-readable data structure — split into three sub-ledgers (Appendix D.1):

* ``L_R`` the **registration ledger** (one active record per voter identity),
* ``L_E`` the **envelope commitment ledger** (hashes of envelope challenges
  published by the printers, plus challenges consumed at activation),
* ``L_V`` the **ballot ledger** (encrypted ballots).

The paper idealizes the ledger as tamper-evident with a globally consistent
view.  We implement it as a hash-chained append-only log with inclusion
proofs, which makes tampering detectable by any auditor who retains an earlier
head — the property the idealization stands in for.
"""

from repro.ledger.log import AppendOnlyLog, LogEntry, LogHead, InclusionProof
from repro.ledger.bulletin_board import (
    BulletinBoard,
    RegistrationRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    BallotRecord,
)

__all__ = [
    "AppendOnlyLog",
    "LogEntry",
    "LogHead",
    "InclusionProof",
    "BulletinBoard",
    "RegistrationRecord",
    "EnvelopeCommitmentRecord",
    "EnvelopeUsageRecord",
    "BallotRecord",
]
