"""The Votegral bulletin board: the typed facade over a pluggable backend.

The bulletin board stores structured records for:

* **registration sessions** — ``L_R[V_id] = (c_pc, K_pk, σ_kot, O_pk, σ_o)``
  (Fig. 10); a new record for the same voter identity supersedes all prior
  ones, so there is at most one *active* registration per voter;
* **envelope commitments** — ``(P_pk, H(e), σ_p)`` published by the envelope
  printers at setup (Fig. 7), plus the challenges revealed at activation so
  duplicate-envelope attacks are detectable (Appendix F.3.5);
* **ballots** — encrypted ballots signed by a credential key pair.

Storage lives behind the versioned :class:`repro.ledger.api.LedgerBackend`
contract — thread-safe in-memory by default, SQLite-persistent or
write-behind batched via ``ElectionConfig.board_spec`` /
:func:`repro.ledger.api.board_from_spec`.  Records are serialized and
appended to hash-chained logs, so all the tamper-evidence and
inclusion-proof machinery of :class:`repro.ledger.log.AppendOnlyLog` applies
identically on every backend.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.ledger.api import (
    BallotPage,
    BoardView,
    Cursor,
    GENESIS_CURSOR,
    LedgerBackend,
)
from repro.ledger.log import AppendOnlyLog

# Re-exported for compatibility: these records historically lived here and
# most of the codebase imports them from this module.
from repro.ledger.records import (
    BallotRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    RegistrationRecord,
)

__all__ = [
    "BulletinBoard",
    "RegistrationRecord",
    "EnvelopeCommitmentRecord",
    "EnvelopeUsageRecord",
    "BallotRecord",
]

#: Legacy private attributes, now backend state.  Accessing them on the
#: facade returns a snapshot and warns once per attribute per process.
_DEPRECATED_INTERNALS: Dict[str, Callable[[LedgerBackend], Any]] = {
    "_ballots": lambda backend: list(backend.read_ballots().records),
    "_registrations": lambda backend: backend.registration_records(),
    "_active_registration": lambda backend: {
        record.voter_id: record for record in backend.active_registrations()
    },
    "_eligible_voters": lambda backend: backend.eligible_voters(),
    "_envelope_commitments": lambda backend: backend.envelope_commitments(),
    "_used_challenges": lambda backend: backend.used_challenges(),
}
_warned_internals: Set[str] = set()


class BulletinBoard:
    """The ledger ``L`` with its three sub-ledgers and typed accessors.

    A thin facade: every method is a typed append command or read delegated
    to the configured :class:`~repro.ledger.api.LedgerBackend`.  Constructing
    one with no arguments keeps the historical behavior (a fresh in-memory
    store).
    """

    def __init__(self, backend: Optional[LedgerBackend] = None) -> None:
        if backend is None:
            from repro.ledger.backends.memory import MemoryBackend

            backend = MemoryBackend()
        self._backend = backend

    @property
    def backend(self) -> LedgerBackend:
        return self._backend

    def view(self) -> BoardView:
        """The read-only facade tally/audit stages should hold."""
        return BoardView(self._backend)

    # Deprecation shim ----------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name != "_backend" and name in _DEPRECATED_INTERNALS:
            if name not in _warned_internals:
                _warned_internals.add(name)
                warnings.warn(
                    f"BulletinBoard.{name} is backend state now; use the "
                    "LedgerBackend/BoardView read API instead (this returns a snapshot)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return _DEPRECATED_INTERNALS[name](self.__dict__["_backend"])
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name: str, value: Any) -> None:
        # Reads of legacy internals get a warning + snapshot; writes would
        # silently shadow the shim with a stale list, so they are refused.
        if name in _DEPRECATED_INTERNALS:
            raise AttributeError(
                f"BulletinBoard.{name} is backend state; mutate the board through "
                "its append commands (post_ballot, post_registration, ...)"
            )
        super().__setattr__(name, value)

    # Electoral roll ------------------------------------------------------------

    def publish_electoral_roll(self, voter_ids: Sequence[str]) -> None:
        """Populate ``L_R`` with the eligible voters' identifiers (Fig. 7, line 4)."""
        self._backend.publish_electoral_roll(voter_ids)

    @property
    def eligible_voters(self) -> List[str]:
        return self._backend.eligible_voters()

    def is_eligible(self, voter_id: str) -> bool:
        return self._backend.is_eligible(voter_id)

    # Registration ledger L_R ----------------------------------------------------

    def post_registration(self, record: RegistrationRecord) -> int:
        """Record a completed check-out; supersedes any prior record for the voter."""
        return self._backend.append_registration(record)

    def registration_for(self, voter_id: str) -> Optional[RegistrationRecord]:
        """The currently-active registration record for ``voter_id``, if any."""
        return self._backend.registration_for(voter_id)

    def registration_history(self, voter_id: str) -> List[RegistrationRecord]:
        return self._backend.registration_history(voter_id)

    def active_registrations(self) -> List[RegistrationRecord]:
        """One active record per registered voter (the tally input roster)."""
        return self._backend.active_registrations()

    @property
    def num_registered(self) -> int:
        return self._backend.num_registered

    # Envelope ledger L_E ----------------------------------------------------------

    def post_envelope_commitment(self, record: EnvelopeCommitmentRecord) -> int:
        return self._backend.append_envelope_commitment(record)

    def envelope_commitment(self, challenge_hash: bytes) -> Optional[EnvelopeCommitmentRecord]:
        return self._backend.envelope_commitment(challenge_hash)

    def post_envelope_usage(self, record: EnvelopeUsageRecord) -> int:
        """Reveal a consumed challenge at activation time.

        Raises :class:`repro.errors.LedgerError` if the same challenge was
        already revealed — the duplicate-envelope detection of Appendix F.3.5.
        """
        return self._backend.append_envelope_usage(record)

    def is_challenge_used(self, challenge_hash: bytes) -> bool:
        return self._backend.is_challenge_used(challenge_hash)

    @property
    def num_envelope_commitments(self) -> int:
        return self._backend.num_envelope_commitments

    @property
    def num_challenges_used(self) -> int:
        """Aggregate count of activated credentials (what a coercer can see)."""
        return self._backend.num_challenges_used

    # Ballot ledger L_V -------------------------------------------------------------

    def post_ballot(self, record: BallotRecord) -> int:
        return self._backend.append_ballot(record)

    def post_ballots(self, records: Sequence[BallotRecord]) -> List[int]:
        return self._backend.append_ballots(records)

    def read_ballots(
        self,
        since: Cursor = GENESIS_CURSOR,
        limit: Optional[int] = None,
        election_id: Optional[str] = None,
    ) -> BallotPage:
        """Cursor-based range read over the ballot stream (see :mod:`repro.ledger.api`)."""
        return self._backend.read_ballots(since=since, limit=limit, election_id=election_id)

    def ballots(self, election_id: Optional[str] = None) -> List[BallotRecord]:
        return self.view().ballots(election_id)

    @property
    def num_ballots(self) -> int:
        return self._backend.num_ballots

    # Logs ----------------------------------------------------------------------------

    @property
    def registration_log(self) -> AppendOnlyLog:
        return self._backend.registration_log

    @property
    def envelope_log(self) -> AppendOnlyLog:
        return self._backend.envelope_log

    @property
    def ballot_log(self) -> AppendOnlyLog:
        return self._backend.ballot_log

    # Audit ----------------------------------------------------------------------------

    def verify_all_chains(self) -> bool:
        """Verify the hash chains of all three sub-ledgers."""
        return self._backend.verify_all_chains()

    # Lifecycle ------------------------------------------------------------------------

    def flush(self) -> None:
        """Force any write-behind buffers down to the backend chains."""
        self._backend.flush()

    def close(self) -> None:
        """Release backend resources (flusher threads, database connections)."""
        self._backend.close()

    def __enter__(self) -> "BulletinBoard":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
