"""The Votegral bulletin board: typed views over the three sub-ledgers.

The bulletin board stores structured records for:

* **registration sessions** — ``L_R[V_id] = (c_pc, K_pk, σ_kot, O_pk, σ_o)``
  (Fig. 10); a new record for the same voter identity supersedes all prior
  ones, so there is at most one *active* registration per voter;
* **envelope commitments** — ``(P_pk, H(e), σ_p)`` published by the envelope
  printers at setup (Fig. 7), plus the challenges revealed at activation so
  duplicate-envelope attacks are detectable (Appendix F.3.5);
* **ballots** — encrypted ballots signed by a credential key pair.

Records are serialized and appended to the underlying hash-chained logs, so
all the tamper-evidence and inclusion-proof machinery of
:class:`repro.ledger.log.AppendOnlyLog` applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.group import GroupElement
from repro.crypto.hashing import scalar_bytes, sha256
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import LedgerError
from repro.ledger.log import AppendOnlyLog


@dataclass(frozen=True)
class RegistrationRecord:
    """An entry of the registration ledger ``L_R`` (check-out, Fig. 10)."""

    voter_id: str
    public_credential_c1: GroupElement
    public_credential_c2: GroupElement
    kiosk_public_key: GroupElement
    kiosk_signature: SchnorrSignature
    official_public_key: GroupElement
    official_signature: SchnorrSignature

    def payload(self) -> bytes:
        return sha256(
            b"registration-record",
            self.voter_id.encode(),
            self.public_credential_c1.to_bytes(),
            self.public_credential_c2.to_bytes(),
            self.kiosk_public_key.to_bytes(),
            self.kiosk_signature.to_bytes(),
            self.official_public_key.to_bytes(),
            self.official_signature.to_bytes(),
        )


@dataclass(frozen=True)
class EnvelopeCommitmentRecord:
    """An entry of the envelope ledger ``L_E``: printer key, H(e), signature."""

    printer_public_key: GroupElement
    challenge_hash: bytes
    printer_signature: SchnorrSignature

    def payload(self) -> bytes:
        return sha256(
            b"envelope-commitment",
            self.printer_public_key.to_bytes(),
            self.challenge_hash,
            self.printer_signature.to_bytes(),
        )


@dataclass(frozen=True)
class EnvelopeUsageRecord:
    """A challenge revealed at activation time (duplicate detection)."""

    challenge: int
    challenge_hash: bytes

    def payload(self) -> bytes:
        return sha256(b"envelope-usage", scalar_bytes(self.challenge), self.challenge_hash)


@dataclass(frozen=True)
class BallotRecord:
    """An entry of the ballot ledger ``L_V``.

    ``credential_public_key`` is the key the ballot was cast with (real or
    fake — indistinguishable on the ledger); the ciphertext is the encrypted
    vote; the signature binds the two.
    """

    credential_public_key: GroupElement
    ciphertext_c1: GroupElement
    ciphertext_c2: GroupElement
    signature: SchnorrSignature
    election_id: str = "default"

    def payload(self) -> bytes:
        return sha256(
            b"ballot-record",
            self.election_id.encode(),
            self.credential_public_key.to_bytes(),
            self.ciphertext_c1.to_bytes(),
            self.ciphertext_c2.to_bytes(),
            self.signature.to_bytes(),
        )


class BulletinBoard:
    """The ledger ``L`` with its three sub-ledgers and typed accessors."""

    def __init__(self) -> None:
        self.registration_log = AppendOnlyLog("L_R")
        self.envelope_log = AppendOnlyLog("L_E")
        self.ballot_log = AppendOnlyLog("L_V")

        self._registrations: List[RegistrationRecord] = []
        self._active_registration: Dict[str, RegistrationRecord] = {}
        self._eligible_voters: List[str] = []

        self._envelope_commitments: Dict[bytes, EnvelopeCommitmentRecord] = {}
        self._used_challenges: Dict[bytes, EnvelopeUsageRecord] = {}

        self._ballots: List[BallotRecord] = []

    # Electoral roll ------------------------------------------------------------

    def publish_electoral_roll(self, voter_ids: List[str]) -> None:
        """Populate ``L_R`` with the eligible voters' identifiers (Fig. 7, line 4)."""
        for voter_id in voter_ids:
            if voter_id in self._eligible_voters:
                raise LedgerError(f"duplicate voter identifier on the roll: {voter_id}")
            self._eligible_voters.append(voter_id)
            self.registration_log.append(sha256(b"eligible-voter", voter_id.encode()))

    @property
    def eligible_voters(self) -> List[str]:
        return list(self._eligible_voters)

    def is_eligible(self, voter_id: str) -> bool:
        return voter_id in self._eligible_voters

    # Registration ledger L_R ----------------------------------------------------

    def post_registration(self, record: RegistrationRecord) -> None:
        """Record a completed check-out; supersedes any prior record for the voter."""
        if not self.is_eligible(record.voter_id):
            raise LedgerError(f"voter {record.voter_id} is not on the electoral roll")
        self.registration_log.append(record.payload())
        self._registrations.append(record)
        self._active_registration[record.voter_id] = record

    def registration_for(self, voter_id: str) -> Optional[RegistrationRecord]:
        """The currently-active registration record for ``voter_id``, if any."""
        return self._active_registration.get(voter_id)

    def registration_history(self, voter_id: str) -> List[RegistrationRecord]:
        return [record for record in self._registrations if record.voter_id == voter_id]

    def active_registrations(self) -> List[RegistrationRecord]:
        """One active record per registered voter (the tally input roster)."""
        return list(self._active_registration.values())

    @property
    def num_registered(self) -> int:
        return len(self._active_registration)

    # Envelope ledger L_E ----------------------------------------------------------

    def post_envelope_commitment(self, record: EnvelopeCommitmentRecord) -> None:
        self.envelope_log.append(record.payload())
        self._envelope_commitments[record.challenge_hash] = record

    def envelope_commitment(self, challenge_hash: bytes) -> Optional[EnvelopeCommitmentRecord]:
        return self._envelope_commitments.get(challenge_hash)

    def post_envelope_usage(self, record: EnvelopeUsageRecord) -> None:
        """Reveal a consumed challenge at activation time.

        Raises :class:`LedgerError` if the same challenge was already revealed —
        the duplicate-envelope detection of Appendix F.3.5.
        """
        if record.challenge_hash in self._used_challenges:
            raise LedgerError("envelope challenge already used: possible duplicate envelopes")
        self.envelope_log.append(record.payload())
        self._used_challenges[record.challenge_hash] = record

    def is_challenge_used(self, challenge_hash: bytes) -> bool:
        return challenge_hash in self._used_challenges

    @property
    def num_envelope_commitments(self) -> int:
        return len(self._envelope_commitments)

    @property
    def num_challenges_used(self) -> int:
        """Aggregate count of activated credentials (what a coercer can see)."""
        return len(self._used_challenges)

    # Ballot ledger L_V -------------------------------------------------------------

    def post_ballot(self, record: BallotRecord) -> None:
        self.ballot_log.append(record.payload())
        self._ballots.append(record)

    def ballots(self, election_id: Optional[str] = None) -> List[BallotRecord]:
        if election_id is None:
            return list(self._ballots)
        return [b for b in self._ballots if b.election_id == election_id]

    @property
    def num_ballots(self) -> int:
        return len(self._ballots)

    # Audit ----------------------------------------------------------------------------

    def verify_all_chains(self) -> bool:
        """Verify the hash chains of all three sub-ledgers."""
        return (
            self.registration_log.verify_chain()
            and self.envelope_log.verify_chain()
            and self.ballot_log.verify_chain()
        )
