"""The versioned, backend-pluggable bulletin-board API.

The paper idealizes the ledger ``L`` as an append-only, always-available,
publicly-readable structure.  This module makes that idealization an explicit
contract — :class:`LedgerBackend` — so ballot ingestion can scale
independently of tallying:

* **Typed append commands.**  Every write is one of the four record types in
  :mod:`repro.ledger.records`; ``append_*`` returns the record's monotonic
  **sequence number** in its stream (0, 1, 2, … in commit order).
* **Cursor-based reads.**  ``read_ballots(since=cursor, limit=n)`` returns a
  :class:`BallotPage`; tally stages stream shards instead of materializing
  the full ballot list.  A cursor is just the next unread sequence number,
  so resuming a read is ``read_ballots(since=page.next_cursor)``.
* **A read facade.**  :class:`BoardView` exposes exactly the read surface
  the tally pipeline, universal verification and the coercion adversary
  consume — no append methods, no backend internals.
* **Pluggable backends.**  :func:`board_from_spec` mirrors
  ``executor_from_spec`` from :mod:`repro.runtime`: ``"memory"`` (thread-safe
  in-process store), ``"sqlite[:path]"`` (persistent), and
  ``"batched[:size[:inner-spec]]"`` (write-behind ingestion decorator,
  :class:`repro.ledger.backends.batched.BatchedBoard`).

Every backend must be observationally equivalent: the same sequence of
accepted append commands yields bit-identical hash chains and identical read
results.  The concurrency tests in ``tests/ledger`` pin this down for
threaded and asyncio ingestion.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from repro.audit.api import AuditReport

from repro.errors import LedgerError
from repro.ledger.log import AppendOnlyLog
from repro.ledger.records import (
    BallotRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    RegistrationRecord,
)

#: The ledger API version this module defines.  Backends advertise the
#: version they implement via :attr:`LedgerBackend.api_version`; consumers
#: that need a newer surface can check before use instead of failing deep
#: inside a phase.
LEDGER_API_VERSION = 1

#: A cursor into the ballot stream: the sequence number of the next unread
#: record.  ``GENESIS_CURSOR`` starts a read at the beginning of the stream.
Cursor = int
GENESIS_CURSOR: Cursor = 0


@dataclass(frozen=True)
class BallotPage:
    """One shard of a cursor-based ballot read.

    ``records`` holds the matching ballots in ledger order; ``next_cursor``
    resumes the read after the region this page covered (it advances past
    non-matching records too, so filtered reads make progress); ``has_more``
    says whether another page would return records.
    """

    records: List[BallotRecord]
    next_cursor: Cursor
    has_more: bool


class LedgerBackend(abc.ABC):
    """The bulletin board's storage contract (version :data:`LEDGER_API_VERSION`).

    Implementations must be thread-safe: appends may arrive concurrently from
    casting clients while tally stages read.  Appends are totally ordered per
    stream (the returned sequence numbers are exactly 0, 1, 2, … in commit
    order) and the underlying hash chains commit to that order.
    """

    api_version: int = LEDGER_API_VERSION

    # ------------------------------------------------------------- electoral roll

    @abc.abstractmethod
    def publish_electoral_roll(self, voter_ids: Sequence[str]) -> None:
        """Populate ``L_R`` with the eligible voters' identifiers (Fig. 7, line 4)."""

    @abc.abstractmethod
    def eligible_voters(self) -> List[str]: ...

    @abc.abstractmethod
    def is_eligible(self, voter_id: str) -> bool: ...

    # ------------------------------------------------------------- append commands

    @abc.abstractmethod
    def append_registration(self, record: RegistrationRecord) -> int:
        """Record a completed check-out; supersedes any prior record for the voter."""

    @abc.abstractmethod
    def append_envelope_commitment(self, record: EnvelopeCommitmentRecord) -> int: ...

    @abc.abstractmethod
    def append_envelope_usage(self, record: EnvelopeUsageRecord) -> int:
        """Reveal a consumed challenge; raises :class:`LedgerError` on reuse."""

    @abc.abstractmethod
    def append_ballot(self, record: BallotRecord) -> int: ...

    def append_ballots(
        self, records: Sequence[BallotRecord], payloads: Optional[Sequence[bytes]] = None
    ) -> List[int]:
        """Bulk ballot append; backends may override with a batched fast path.

        ``payloads`` optionally supplies the records' precomputed canonical
        payloads (a pure optimization hint — flush paths that already hashed
        the records for a batch digest avoid hashing them twice).
        """
        return [self.append_ballot(record) for record in records]

    # ------------------------------------------------------------- registration reads

    @abc.abstractmethod
    def registration_for(self, voter_id: str) -> Optional[RegistrationRecord]: ...

    @abc.abstractmethod
    def registration_history(self, voter_id: str) -> List[RegistrationRecord]: ...

    @abc.abstractmethod
    def registration_records(self) -> List[RegistrationRecord]:
        """Every registration record ever posted, superseded ones included."""

    @abc.abstractmethod
    def active_registrations(self) -> List[RegistrationRecord]:
        """One active record per registered voter (the tally input roster)."""

    @property
    @abc.abstractmethod
    def num_registered(self) -> int: ...

    # ------------------------------------------------------------- envelope reads

    @abc.abstractmethod
    def envelope_commitment(self, challenge_hash: bytes) -> Optional[EnvelopeCommitmentRecord]: ...

    @abc.abstractmethod
    def envelope_commitments(self) -> Dict[bytes, EnvelopeCommitmentRecord]: ...

    @abc.abstractmethod
    def is_challenge_used(self, challenge_hash: bytes) -> bool: ...

    @abc.abstractmethod
    def used_challenges(self) -> Dict[bytes, EnvelopeUsageRecord]: ...

    @property
    @abc.abstractmethod
    def num_envelope_commitments(self) -> int: ...

    @property
    @abc.abstractmethod
    def num_challenges_used(self) -> int: ...

    # ------------------------------------------------------------- ballot reads

    @abc.abstractmethod
    def read_ballots(
        self,
        since: Cursor = GENESIS_CURSOR,
        limit: Optional[int] = None,
        election_id: Optional[str] = None,
    ) -> BallotPage:
        """Read up to ``limit`` ballots at/after ``since``, optionally filtered."""

    @property
    @abc.abstractmethod
    def num_ballots(self) -> int: ...

    # ------------------------------------------------------------- logs + audit

    @property
    @abc.abstractmethod
    def registration_log(self) -> AppendOnlyLog: ...

    @property
    @abc.abstractmethod
    def envelope_log(self) -> AppendOnlyLog: ...

    @property
    @abc.abstractmethod
    def ballot_log(self) -> AppendOnlyLog: ...

    def verify_all_chains(self) -> bool:
        """Verify the hash chains of all three sub-ledgers.

        The default walks :func:`chain_logs`; backends override only to add
        locking or extra chains (e.g. the write-behind batch chain), and they
        reuse :func:`verify_chained_logs` rather than re-implementing the walk.
        """
        return verify_chained_logs(self)

    # ------------------------------------------------------------- lifecycle

    def flush(self) -> None:
        """Force any write-behind buffers down to durable/chained storage."""

    def close(self) -> None:
        """Release backend resources (connections, flusher threads)."""

    def __enter__(self) -> "LedgerBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def chain_logs(backend: "LedgerBackend") -> List[Tuple[str, AppendOnlyLog]]:
    """The named hash-chained sub-ledgers every backend exposes.

    The single source of truth for "which chains does a board have" — the
    chain-walk in :func:`verify_chained_logs`, every backend's
    ``verify_all_chains`` and the audit layer's per-chain ``Check`` builders
    all iterate this list instead of hand-rolling their own walk.
    """
    return [
        ("registration", backend.registration_log),
        ("envelope", backend.envelope_log),
        ("ballot", backend.ballot_log),
    ]


def verify_chained_logs(backend: "LedgerBackend") -> bool:
    """Chain-walk all sub-ledgers of ``backend``; True iff every chain verifies."""
    return all(log.verify_chain() for _, log in chain_logs(backend))


class BoardView:
    """The read-only facade tally and audit stages consume.

    Wraps any :class:`LedgerBackend` (or a :class:`~repro.ledger.bulletin_board.
    BulletinBoard` facade) and exposes reads only, so a stage that holds a
    view provably cannot write.  Constructed via :func:`as_board_view`, which
    is idempotent — pipeline entry points accept boards, backends or views.
    """

    __slots__ = ("_backend",)

    def __init__(self, backend: LedgerBackend) -> None:
        if backend.api_version > LEDGER_API_VERSION:
            raise LedgerError(
                f"backend speaks ledger API v{backend.api_version}, "
                f"this build understands v{LEDGER_API_VERSION}"
            )
        self._backend = backend

    # Roll / registration ------------------------------------------------------

    def eligible_voters(self) -> List[str]:
        return self._backend.eligible_voters()

    def is_eligible(self, voter_id: str) -> bool:
        return self._backend.is_eligible(voter_id)

    def registration_for(self, voter_id: str) -> Optional[RegistrationRecord]:
        return self._backend.registration_for(voter_id)

    def registration_history(self, voter_id: str) -> List[RegistrationRecord]:
        return self._backend.registration_history(voter_id)

    def active_registrations(self) -> List[RegistrationRecord]:
        return self._backend.active_registrations()

    @property
    def num_registered(self) -> int:
        return self._backend.num_registered

    # Envelope aggregates (what a coercer can see) ------------------------------

    @property
    def num_envelope_commitments(self) -> int:
        return self._backend.num_envelope_commitments

    @property
    def num_challenges_used(self) -> int:
        return self._backend.num_challenges_used

    # Ballots ------------------------------------------------------------------

    def read_ballots(
        self,
        since: Cursor = GENESIS_CURSOR,
        limit: Optional[int] = None,
        election_id: Optional[str] = None,
    ) -> BallotPage:
        return self._backend.read_ballots(since=since, limit=limit, election_id=election_id)

    def iter_ballot_pages(
        self,
        election_id: Optional[str] = None,
        page_size: int = 1024,
        since: Cursor = GENESIS_CURSOR,
    ) -> Iterator[BallotPage]:
        """Stream the ballot ledger as shards of at most ``page_size`` records."""
        cursor = since
        while True:
            page = self.read_ballots(since=cursor, limit=page_size, election_id=election_id)
            if page.records:
                yield page
            cursor = page.next_cursor
            if not page.has_more:
                return

    def ballots(self, election_id: Optional[str] = None) -> List[BallotRecord]:
        """Materialize the (filtered) ballot list via cursor pagination."""
        records: List[BallotRecord] = []
        for page in self.iter_ballot_pages(election_id=election_id):
            records.extend(page.records)
        return records

    @property
    def num_ballots(self) -> int:
        return self._backend.num_ballots

    # Audit --------------------------------------------------------------------

    @property
    def registration_log(self) -> AppendOnlyLog:
        return self._backend.registration_log

    @property
    def envelope_log(self) -> AppendOnlyLog:
        return self._backend.envelope_log

    @property
    def ballot_log(self) -> AppendOnlyLog:
        return self._backend.ballot_log

    def audit_chains(self) -> "AuditReport":
        """Audit every hash chain; returns an :class:`~repro.audit.api.AuditReport`.

        One ``ledger-chain`` check per sub-ledger (plus the ingest-batch
        chain on write-behind boards), each named so a broken chain reports
        its locus (e.g. ``ledger.ballot-chain``) instead of a bare ``False``.
        """
        from repro.audit.api import AuditPlan, EagerVerifier
        from repro.audit.checks import chain_checks

        return EagerVerifier().run(AuditPlan(chain_checks(self)))

    def verify_all_chains(self) -> bool:
        """Verify the hash chains of all sub-ledgers (bool shim over the audit API)."""
        return self.audit_chains().ok


def as_board_view(board: Union["BoardView", LedgerBackend, object]) -> BoardView:
    """Normalize a board-ish object (view, backend or facade) to a :class:`BoardView`."""
    if isinstance(board, BoardView):
        return board
    if isinstance(board, LedgerBackend):
        return BoardView(board)
    backend = getattr(board, "backend", None)
    if isinstance(backend, LedgerBackend):
        return BoardView(backend)
    raise LedgerError(f"cannot derive a BoardView from {type(board).__name__}")


def board_from_spec(spec: str, group: Optional[Any] = None) -> LedgerBackend:
    """Build a ledger backend from a config string (mirrors ``executor_from_spec``).

    Accepted forms::

        "memory"                    thread-safe in-process store (the default)
        "sqlite"                    SQLite backend on a private in-memory database
        "sqlite:/path/to/board.db"  SQLite backend persisted at the given path
        "batched"                   write-behind decorator over a memory backend
        "batched:256"               … flushing every 256 buffered records
        "batched:256:sqlite:/p.db"  … over any inner backend spec

    ``group`` is the election group, required by the SQLite backend to decode
    persisted records when reopening an existing database.
    """
    from repro.ledger.backends.batched import BatchedBoard
    from repro.ledger.backends.memory import MemoryBackend
    from repro.ledger.backends.sqlite import SQLiteBackend

    text = (spec or "").strip()
    kind, _, rest = text.partition(":")
    kind = kind.lower()
    if kind == "memory":
        if rest:
            raise LedgerError(f"memory board takes no parameters: {spec!r}")
        return MemoryBackend()
    if kind == "sqlite":
        return SQLiteBackend(path=rest or ":memory:", group=group)
    if kind == "batched":
        size_text, _, inner_spec = rest.partition(":")
        try:
            batch_size = int(size_text) if size_text else BatchedBoard.DEFAULT_BATCH_SIZE
        except ValueError:
            raise LedgerError(f"bad batch size in board spec {spec!r}") from None
        inner = board_from_spec(inner_spec or "memory", group=group)
        return BatchedBoard(inner, batch_size=batch_size)
    raise LedgerError(
        f"unknown board spec {spec!r} (expected memory, sqlite[:path] or batched[:N[:inner]])"
    )
