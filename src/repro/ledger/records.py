"""Typed ledger records — the append *commands* of the bulletin-board API.

Every write to the board is one of four typed records, mirroring the paper's
three sub-ledgers (Appendix D.1):

* :class:`RegistrationRecord` → the registration ledger ``L_R`` (Fig. 10);
* :class:`EnvelopeCommitmentRecord` / :class:`EnvelopeUsageRecord` → the
  envelope ledger ``L_E`` (commitments at setup, challenges consumed at
  activation — Appendix F.3.5);
* :class:`BallotRecord` → the ballot ledger ``L_V``.

A record's :meth:`payload` is its canonical hash — the bytes that enter the
underlying hash chain — so two backends that accept the same record sequence
produce bit-identical logs regardless of how they store the records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.crypto.group import GroupElement
from repro.crypto.hashing import scalar_bytes, sha256
from repro.crypto.schnorr import SchnorrSignature


@dataclass(frozen=True)
class RegistrationRecord:
    """An entry of the registration ledger ``L_R`` (check-out, Fig. 10)."""

    voter_id: str
    public_credential_c1: GroupElement
    public_credential_c2: GroupElement
    kiosk_public_key: GroupElement
    kiosk_signature: SchnorrSignature
    official_public_key: GroupElement
    official_signature: SchnorrSignature

    def payload(self) -> bytes:
        return sha256(
            b"registration-record",
            self.voter_id.encode(),
            self.public_credential_c1.to_bytes(),
            self.public_credential_c2.to_bytes(),
            self.kiosk_public_key.to_bytes(),
            self.kiosk_signature.to_bytes(),
            self.official_public_key.to_bytes(),
            self.official_signature.to_bytes(),
        )


@dataclass(frozen=True)
class EnvelopeCommitmentRecord:
    """An entry of the envelope ledger ``L_E``: printer key, H(e), signature."""

    printer_public_key: GroupElement
    challenge_hash: bytes
    printer_signature: SchnorrSignature

    def payload(self) -> bytes:
        return sha256(
            b"envelope-commitment",
            self.printer_public_key.to_bytes(),
            self.challenge_hash,
            self.printer_signature.to_bytes(),
        )


@dataclass(frozen=True)
class EnvelopeUsageRecord:
    """A challenge revealed at activation time (duplicate detection)."""

    challenge: int
    challenge_hash: bytes

    def payload(self) -> bytes:
        return sha256(b"envelope-usage", scalar_bytes(self.challenge), self.challenge_hash)


@dataclass(frozen=True)
class BallotRecord:
    """An entry of the ballot ledger ``L_V``.

    ``credential_public_key`` is the key the ballot was cast with (real or
    fake — indistinguishable on the ledger); the ciphertext is the encrypted
    vote; the signature binds the two.
    """

    credential_public_key: GroupElement
    ciphertext_c1: GroupElement
    ciphertext_c2: GroupElement
    signature: SchnorrSignature
    election_id: str = "default"

    def payload(self) -> bytes:
        return sha256(
            b"ballot-record",
            self.election_id.encode(),
            self.credential_public_key.to_bytes(),
            self.ciphertext_c1.to_bytes(),
            self.ciphertext_c2.to_bytes(),
            self.signature.to_bytes(),
        )


#: Any append command the board accepts — what write-behind buffers hold.
LedgerRecord = Union[
    RegistrationRecord,
    EnvelopeCommitmentRecord,
    EnvelopeUsageRecord,
    BallotRecord,
]
