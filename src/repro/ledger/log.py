"""A tamper-evident, hash-chained append-only log.

Each entry commits to its payload and to the previous entry's hash, so the
head hash commits to the entire history.  Any attempt to delete, modify or
reorder entries changes every later head, which an auditor holding an earlier
head detects immediately — the "tamper-evident log" abstraction the paper's
ledger idealization relies on (Crosby–Wallach style, simplified to a hash
chain with Merkle-free linear inclusion proofs, which is sufficient at the
scales we simulate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.crypto.hashing import sha256
from repro.errors import LedgerError

_GENESIS = b"\x00" * 32


@dataclass(frozen=True)
class LogEntry:
    """One appended record: sequence number, payload, and chained hash."""

    index: int
    payload: bytes
    previous_hash: bytes
    entry_hash: bytes

    @staticmethod
    def compute_hash(index: int, payload: bytes, previous_hash: bytes) -> bytes:
        return sha256(b"log-entry", index.to_bytes(8, "big"), payload, previous_hash)


@dataclass(frozen=True)
class LogHead:
    """A signed-off snapshot of the log: its size and the latest entry hash."""

    size: int
    head_hash: bytes


@dataclass(frozen=True)
class InclusionProof:
    """Proof that an entry is included under a (later) head.

    For the hash chain this is the list of subsequent entries' (index,
    payload) pairs, enough to recompute the head from the claimed entry.
    """

    entry: LogEntry
    subsequent: List[LogEntry]
    head: LogHead


class AppendOnlyLog:
    """An append-only log with hash chaining and audit helpers."""

    def __init__(self, name: str = "ledger") -> None:
        self.name = name
        self._entries: List[LogEntry] = []
        self._observers: List[Callable[[LogEntry], None]] = []

    # Append / read ------------------------------------------------------------

    def append(self, payload: bytes) -> LogEntry:
        previous_hash = self._entries[-1].entry_hash if self._entries else _GENESIS
        index = len(self._entries)
        entry = LogEntry(
            index=index,
            payload=payload,
            previous_hash=previous_hash,
            entry_hash=LogEntry.compute_hash(index, payload, previous_hash),
        )
        self._entries.append(entry)
        for observer in self._observers:
            observer(entry)
        return entry

    def append_many(self, payloads: Iterable[bytes]) -> List[LogEntry]:
        """Append ``payloads`` in order, producing the same entries (and the
        same head) as repeated :meth:`append` calls — the bulk path write-behind
        flushes take, kept tight by hoisting the chain state into locals."""
        entries = self._entries
        observers = self._observers
        previous_hash = entries[-1].entry_hash if entries else _GENESIS
        index = len(entries)
        appended: List[LogEntry] = []
        compute = LogEntry.compute_hash
        for payload in payloads:
            entry_hash = compute(index, payload, previous_hash)
            entry = LogEntry(
                index=index, payload=payload, previous_hash=previous_hash, entry_hash=entry_hash
            )
            entries.append(entry)
            appended.append(entry)
            previous_hash = entry_hash
            index += 1
            for observer in observers:
                observer(entry)
        return appended

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entry(self, index: int) -> LogEntry:
        if not 0 <= index < len(self._entries):
            raise LedgerError(f"no entry at index {index}")
        return self._entries[index]

    def entries(self) -> List[LogEntry]:
        return list(self._entries)

    def head(self) -> LogHead:
        head_hash = self._entries[-1].entry_hash if self._entries else _GENESIS
        return LogHead(size=len(self._entries), head_hash=head_hash)

    # Observation ---------------------------------------------------------------

    def subscribe(self, observer: Callable[[LogEntry], None]) -> None:
        """Register a callback invoked on every append (VSD ledger monitoring)."""
        self._observers.append(observer)

    # Audit ----------------------------------------------------------------------

    def verify_chain(self) -> bool:
        """Recompute every hash in the chain; True iff the log is internally consistent."""
        return AppendOnlyLog.verify_entries(self._entries)

    @staticmethod
    def verify_entries(entries: Sequence[LogEntry]) -> bool:
        """Chain-walk a snapshot of entries (what :meth:`verify_chain` checks).

        Static so auditors can verify an exported entry list — e.g. an audit
        ``Check`` carrying a ledger snapshot — without holding the live log.
        """
        previous_hash = _GENESIS
        for index, entry in enumerate(entries):
            if entry.index != index or entry.previous_hash != previous_hash:
                return False
            if entry.entry_hash != LogEntry.compute_hash(index, entry.payload, previous_hash):
                return False
            previous_hash = entry.entry_hash
        return True

    def inclusion_proof(self, index: int, head: Optional[LogHead] = None) -> InclusionProof:
        """Produce an inclusion proof for ``index`` under ``head`` (default: current head)."""
        head = head if head is not None else self.head()
        if head.size > len(self._entries):
            raise LedgerError("head is ahead of the log")
        entry = self.entry(index)
        if index >= head.size:
            raise LedgerError("entry is newer than the head")
        return InclusionProof(entry=entry, subsequent=self._entries[index + 1 : head.size], head=head)

    @staticmethod
    def verify_inclusion(proof: InclusionProof) -> bool:
        """Check an inclusion proof without access to the full log."""
        entry = proof.entry
        if entry.entry_hash != LogEntry.compute_hash(entry.index, entry.payload, entry.previous_hash):
            return False
        running = entry.entry_hash
        expected_index = entry.index + 1
        for later in proof.subsequent:
            if later.index != expected_index or later.previous_hash != running:
                return False
            if later.entry_hash != LogEntry.compute_hash(later.index, later.payload, later.previous_hash):
                return False
            running = later.entry_hash
            expected_index += 1
        return running == proof.head.head_hash and expected_index == proof.head.size

    @staticmethod
    def verify_consistency(older: LogHead, newer: LogHead, entries: List[LogEntry]) -> bool:
        """Check that ``newer`` extends ``older`` given the intermediate entries."""
        if newer.size < older.size:
            return False
        running = older.head_hash
        index = older.size
        for entry in entries:
            if entry.index != index or entry.previous_hash != running:
                return False
            if entry.entry_hash != LogEntry.compute_hash(entry.index, entry.payload, entry.previous_hash):
                return False
            running = entry.entry_hash
            index += 1
        return running == newer.head_hash and index == newer.size
