"""Typed, versioned request/response schemas with strict JSON (de)serialization.

This module is the single source of truth for the gateway's wire surface.
Every request and response body is a frozen dataclass whose fields are
declared twice over — once as dataclass attributes (the in-memory types) and
once as :class:`FieldSpec` rows (the wire types, constraints and docs).  The
generic (de)serializers walk the ``FIELDS`` table, so four consumers stay in
lockstep by construction:

* the server routes validate incoming JSON against the same table that
  serialized the response (:meth:`Schema.from_json_dict` /
  :meth:`Schema.to_json_dict`);
* the synchronous client SDK (:mod:`repro.gateway.client`) round-trips the
  same classes;
* the route documentation (``docs/gateway.md``) is checked against
  :func:`schema_catalog` by the gateway doc-sync test;
* validation failures carry **per-field errors** (``ballots[2].ciphertext_c1
  → "not valid hex"``) assembled from the same specs.

Wire conventions: group elements travel as lowercase hex of their canonical
``to_bytes()`` encoding; scalars (Schnorr responses, credential secret keys)
travel as decimal strings so non-bignum JSON parsers survive them; every
response body carries ``schema_version`` and inputs may pin it (a mismatch is
a field error, not a silent reinterpretation).  Unknown keys are rejected —
a typo'd field name fails loudly instead of being ignored.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type, Union

from repro.crypto.group import Group, GroupElement
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import GatewayError
from repro.ledger.records import BallotRecord

#: The wire-schema version this module defines.  Routes are mounted under
#: ``/v1/``; a breaking field change bumps this and mounts ``/v2/`` routes
#: next to the old ones (see docs/gateway.md, "Schema versioning").
SCHEMA_VERSION = 1

#: Hard cap on ballots per cast request (pre-validation, so a hostile client
#: cannot make the server parse an unbounded array).
MAX_CAST_BATCH = 256

#: Hard cap on string field lengths unless a spec narrows it further.
MAX_STRING_LENGTH = 256


class SchemaError(GatewayError):
    """A request/response body failed strict validation.

    ``field_errors`` maps field paths (``ballots[2].ciphertext_c1``) to
    messages; the HTTP layer renders it as a 400 :class:`ErrorBody`.
    """

    def __init__(self, field_errors: Dict[str, str]) -> None:
        summary = "; ".join(f"{path}: {message}" for path, message in sorted(field_errors.items()))
        super().__init__(f"schema validation failed: {summary}")
        self.field_errors = dict(field_errors)


@dataclass(frozen=True)
class FieldSpec:
    """One wire field: name, wire type, constraints, and its doc line.

    ``kind`` is a closed vocabulary the generic (de)serializers understand:

    ========== ===================================================
    kind       wire representation
    ========== ===================================================
    string     JSON string (``max_length`` capped, non-empty unless
               ``allow_empty``)
    int        JSON integer (bools rejected; ``min_value``/``max_value``)
    float      JSON number
    bool       JSON true/false
    hex        lowercase hex string of a bytes value
    scalar     decimal string of an unbounded non-negative integer
    map-int    JSON object of string keys to integers
    map-string JSON object of string keys to strings
    array      JSON array of ``item`` (a primitive kind or Schema class)
    schema     nested object of ``item`` (a Schema class)
    ========== ===================================================
    """

    name: str
    kind: str
    doc: str
    required: bool = True
    item: Union[str, Type["Schema"], None] = None
    max_length: int = MAX_STRING_LENGTH
    min_value: Optional[int] = None
    max_value: Optional[int] = None
    max_items: Optional[int] = None
    allow_empty: bool = False

    def wire_type(self) -> str:
        """The type label shown in derived docs (e.g. ``array[BallotWire]``)."""
        if self.kind == "array":
            inner = self.item if isinstance(self.item, str) else getattr(self.item, "SCHEMA_NAME", "?")
            return f"array[{inner}]"
        if self.kind == "schema":
            return getattr(self.item, "SCHEMA_NAME", "?")
        return self.kind


#: Registry of every schema class by SCHEMA_NAME (docs + tests derive from it).
SCHEMAS: Dict[str, Type["Schema"]] = {}


@dataclass(frozen=True)
class Schema:
    """Base class: subclasses declare ``FIELDS`` and get strict codecs free."""

    SCHEMA_NAME: ClassVar[str] = ""
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.SCHEMA_NAME:
            SCHEMAS[cls.SCHEMA_NAME] = cls

    # ----------------------------------------------------------- serialization

    def to_json_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"schema_version": SCHEMA_VERSION}
        for spec in self.FIELDS:
            value = getattr(self, spec.name)
            if value is None and not spec.required:
                continue
            data[spec.name] = _encode_value(spec, value)
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))

    # --------------------------------------------------------- deserialization

    @classmethod
    def from_json_dict(cls, data: Any, path: str = "") -> "Schema":
        errors: Dict[str, str] = {}
        value = cls._from_json_dict(data, path, errors)
        if errors:
            raise SchemaError(errors)
        assert value is not None  # errors is empty ⇒ every field decoded
        return value

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "Schema":
        try:
            data = json.loads(text)
        except (ValueError, UnicodeDecodeError):
            raise SchemaError({"$body": "not valid JSON"}) from None
        return cls.from_json_dict(data)

    @classmethod
    def _from_json_dict(
        cls, data: Any, path: str, errors: Dict[str, str]
    ) -> Optional["Schema"]:
        prefix = f"{path}." if path else ""
        if not isinstance(data, dict):
            errors[path or "$body"] = f"expected an object, got {type(data).__name__}"
            return None
        known = {spec.name for spec in cls.FIELDS} | {"schema_version"}
        for key in sorted(data):
            if not isinstance(key, str) or key not in known:
                errors[f"{prefix}{key}"] = "unknown field"
        declared = data.get("schema_version")
        if declared is not None and declared != SCHEMA_VERSION:
            errors[f"{prefix}schema_version"] = (
                f"version {declared!r} not supported (this endpoint speaks {SCHEMA_VERSION})"
            )
        decoded: Dict[str, Any] = {}
        for spec in cls.FIELDS:
            field_path = f"{prefix}{spec.name}"
            if spec.name not in data:
                if spec.required:
                    errors[field_path] = "required field is missing"
                else:
                    decoded[spec.name] = None
                continue
            decoded[spec.name] = _decode_value(spec, data[spec.name], field_path, errors)
        if errors:
            return None
        return cls(**decoded)


def _encode_value(spec: FieldSpec, value: Any) -> Any:
    if spec.kind == "hex":
        return bytes(value).hex()
    if spec.kind == "scalar":
        return str(int(value))
    if spec.kind == "array":
        if isinstance(spec.item, type) and issubclass(spec.item, Schema):
            return [item.to_json_dict() for item in value]
        if spec.item == "scalar":
            return [str(int(item)) for item in value]
        return list(value)
    if spec.kind == "schema":
        return value.to_json_dict() if value is not None else None
    if spec.kind in ("map-int", "map-string"):
        return {str(key): value[key] for key in sorted(value)}
    return value


def _decode_primitive(
    spec: FieldSpec, kind: str, value: Any, path: str, errors: Dict[str, str]
) -> Any:
    if kind == "string":
        if not isinstance(value, str):
            errors[path] = f"expected a string, got {type(value).__name__}"
            return None
        if not value and not spec.allow_empty:
            errors[path] = "must not be empty"
            return None
        if len(value) > spec.max_length:
            errors[path] = f"longer than {spec.max_length} characters"
            return None
        return value
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            errors[path] = f"expected an integer, got {type(value).__name__}"
            return None
        if spec.min_value is not None and value < spec.min_value:
            errors[path] = f"must be >= {spec.min_value}"
            return None
        if spec.max_value is not None and value > spec.max_value:
            errors[path] = f"must be <= {spec.max_value}"
            return None
        return value
    if kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors[path] = f"expected a number, got {type(value).__name__}"
            return None
        return float(value)
    if kind == "bool":
        if not isinstance(value, bool):
            errors[path] = f"expected a boolean, got {type(value).__name__}"
            return None
        return value
    if kind == "hex":
        if not isinstance(value, str) or not value:
            errors[path] = "expected a non-empty hex string"
            return None
        try:
            return bytes.fromhex(value)
        except ValueError:
            errors[path] = "not valid hex"
            return None
    if kind == "scalar":
        if not isinstance(value, str) or not value.isdigit():
            errors[path] = "expected a decimal-string scalar"
            return None
        return int(value)
    raise GatewayError(f"unhandled field kind {kind!r} in {path}")  # pragma: no cover


def _decode_value(spec: FieldSpec, value: Any, path: str, errors: Dict[str, str]) -> Any:
    if spec.kind == "array":
        if not isinstance(value, list):
            errors[path] = f"expected an array, got {type(value).__name__}"
            return None
        if not value and not spec.allow_empty:
            errors[path] = "must not be empty"
            return None
        if spec.max_items is not None and len(value) > spec.max_items:
            errors[path] = f"more than {spec.max_items} items"
            return None
        items: List[Any] = []
        for index, element in enumerate(value):
            item_path = f"{path}[{index}]"
            if isinstance(spec.item, type) and issubclass(spec.item, Schema):
                items.append(spec.item._from_json_dict(element, item_path, errors))
            else:
                assert isinstance(spec.item, str)
                items.append(_decode_primitive(spec, spec.item, element, item_path, errors))
        return items
    if spec.kind == "schema":
        assert isinstance(spec.item, type) and issubclass(spec.item, Schema)
        return spec.item._from_json_dict(value, path, errors)
    if spec.kind == "map-int":
        if not isinstance(value, dict):
            errors[path] = f"expected an object, got {type(value).__name__}"
            return None
        mapping: Dict[str, int] = {}
        for key in sorted(value):
            entry = value[key]
            if isinstance(entry, bool) or not isinstance(entry, int):
                errors[f"{path}.{key}"] = "expected an integer value"
            else:
                mapping[str(key)] = entry
        return mapping
    if spec.kind == "map-string":
        if not isinstance(value, dict):
            errors[path] = f"expected an object, got {type(value).__name__}"
            return None
        text_map: Dict[str, str] = {}
        for key in sorted(value):
            entry = value[key]
            if not isinstance(entry, str):
                errors[f"{path}.{key}"] = "expected a string value"
            else:
                text_map[str(key)] = entry
        return text_map
    return _decode_primitive(spec, spec.kind, value, path, errors)


# ---------------------------------------------------------------------------
# Concrete wire schemas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorBody(Schema):
    """Every non-2xx response body."""

    SCHEMA_NAME: ClassVar[str] = "ErrorBody"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("error", "string", "human-readable error summary", max_length=2048),
        FieldSpec("field_errors", "map-string", "per-field validation messages", required=False),
        FieldSpec(
            "retry_after_seconds",
            "float",
            "present on 429/503: retry after this many seconds",
            required=False,
        ),
    )

    error: str
    field_errors: Optional[Dict[str, str]] = None
    retry_after_seconds: Optional[float] = None


@dataclass(frozen=True)
class CreateElectionRequest(Schema):
    """``POST /v1/elections`` — provision a tenant and run its setup phase."""

    SCHEMA_NAME: ClassVar[str] = "CreateElectionRequest"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("election_id", "string", "tenant identifier (also the ballots' election id)", max_length=64),
        FieldSpec("num_voters", "int", "electoral-roll size", min_value=1, max_value=1_000_000),
        FieldSpec("num_options", "int", "number of ballot choices", min_value=2, max_value=64),
        FieldSpec(
            "num_authority_members",
            "int",
            "authority DKG size (default 3)",
            required=False,
            min_value=2,
            max_value=16,
        ),
        FieldSpec(
            "group",
            "string",
            "named election group (default: the server's --group)",
            required=False,
            max_length=64,
        ),
    )

    election_id: str
    num_voters: int
    num_options: int
    num_authority_members: Optional[int] = None
    group: Optional[str] = None


@dataclass(frozen=True)
class ElectionInfo(Schema):
    """``GET /v1/elections/{id}`` — everything a casting client needs."""

    SCHEMA_NAME: ClassVar[str] = "ElectionInfo"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("election_id", "string", "tenant identifier", max_length=64),
        FieldSpec("status", "string", "open | closed | tallied", max_length=16),
        FieldSpec("group", "string", "named group clients must rebuild", max_length=64),
        FieldSpec("generator", "hex", "the group generator (sanity anchor)"),
        FieldSpec("authority_public_key", "hex", "collective ElGamal key ballots encrypt to"),
        FieldSpec("num_options", "int", "number of ballot choices", min_value=1),
        FieldSpec("num_voters", "int", "electoral-roll size", min_value=0),
        FieldSpec("num_registered", "int", "voters with an active registration", min_value=0),
        FieldSpec("num_ballots", "int", "ballots on the ledger (flushed)", min_value=0),
        FieldSpec("pending_casts", "int", "casts admitted but not yet flushed", min_value=0),
    )

    election_id: str
    status: str
    group: str
    generator: bytes
    authority_public_key: bytes
    num_options: int
    num_voters: int
    num_registered: int
    num_ballots: int
    pending_casts: int


@dataclass(frozen=True)
class RegisterRequest(Schema):
    """``POST /v1/elections/{id}/registrations`` body."""

    SCHEMA_NAME: ClassVar[str] = "RegisterRequest"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("voter_id", "string", "roll identifier of the voter to register", max_length=128),
    )

    voter_id: str


@dataclass(frozen=True)
class CredentialWire(Schema):
    """An activated credential, returned to the voter's device.

    This models the paper's in-person hand-off of activated credential
    material to the voter: it exists **only** in the registration response
    (never on the ledger, never in logs or telemetry).
    """

    SCHEMA_NAME: ClassVar[str] = "CredentialWire"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("voter_id", "string", "owning voter", max_length=128),
        FieldSpec("secret_key", "scalar", "credential signing key (device-private)"),
        FieldSpec("public_key", "hex", "credential public key (what the ledger sees)"),
        FieldSpec("is_real", "bool", "real (counting) vs fake (coercion-decoy) credential"),
    )

    voter_id: str
    secret_key: int
    public_key: bytes
    is_real: bool


@dataclass(frozen=True)
class RegisterResponse(Schema):
    """``POST /v1/elections/{id}/registrations`` result."""

    SCHEMA_NAME: ClassVar[str] = "RegisterResponse"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("voter_id", "string", "registered voter", max_length=128),
        FieldSpec("ledger_seq", "int", "registration record's ledger sequence number", min_value=0),
        FieldSpec(
            "credentials",
            "array",
            "activated credentials (first real, then fakes)",
            item=CredentialWire,
            max_items=64,
        ),
    )

    voter_id: str
    ledger_seq: int
    credentials: List[CredentialWire] = field(default_factory=list)


@dataclass(frozen=True)
class BallotWire(Schema):
    """One signed encrypted ballot, exactly the fields of a ledger
    :class:`~repro.ledger.records.BallotRecord`."""

    SCHEMA_NAME: ClassVar[str] = "BallotWire"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("credential_public_key", "hex", "casting credential (real or fake)"),
        FieldSpec("ciphertext_c1", "hex", "ElGamal ciphertext, first component"),
        FieldSpec("ciphertext_c2", "hex", "ElGamal ciphertext, second component"),
        FieldSpec("signature_commitment", "hex", "Schnorr signature commitment R"),
        FieldSpec("signature_response", "scalar", "Schnorr signature response s"),
        FieldSpec("election_id", "string", "election the ballot belongs to", max_length=64),
    )

    credential_public_key: bytes
    ciphertext_c1: bytes
    ciphertext_c2: bytes
    signature_commitment: bytes
    signature_response: int
    election_id: str


@dataclass(frozen=True)
class CastRequest(Schema):
    """``POST /v1/elections/{id}/ballots`` — cast a micro-batch of ballots."""

    SCHEMA_NAME: ClassVar[str] = "CastRequest"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec(
            "ballots",
            "array",
            f"1..{MAX_CAST_BATCH} ballots admitted as one batch",
            item=BallotWire,
            max_items=MAX_CAST_BATCH,
        ),
    )

    ballots: List[BallotWire] = field(default_factory=list)


@dataclass(frozen=True)
class CastResponse(Schema):
    """Ledger receipts for an admitted cast batch."""

    SCHEMA_NAME: ClassVar[str] = "CastResponse"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec(
            "ledger_seqs",
            "array",
            "sequence numbers, one per ballot, in request order",
            item="int",
            max_items=MAX_CAST_BATCH,
        ),
    )

    ledger_seqs: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class TallyResponse(Schema):
    """``POST /v1/elections/{id}/tally`` and ``GET .../tally`` result."""

    SCHEMA_NAME: ClassVar[str] = "TallyResponse"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("election_id", "string", "tallied election", max_length=64),
        FieldSpec("counts", "map-int", "per-option vote counts (keys are option indices)"),
        FieldSpec("turnout", "int", "counted ballots", min_value=0),
        FieldSpec("num_ballots_on_ledger", "int", "ballots read from the ledger", min_value=0),
        FieldSpec("num_valid_ballots", "int", "ballots passing signature/proof checks", min_value=0),
        FieldSpec("num_counted", "int", "ballots surviving tag filtering", min_value=0),
        FieldSpec("num_discarded", "int", "fake-credential ballots discarded", min_value=0),
        FieldSpec("winner", "int", "winning option index", min_value=0),
    )

    election_id: str
    counts: Dict[str, int]
    turnout: int
    num_ballots_on_ledger: int
    num_valid_ballots: int
    num_counted: int
    num_discarded: int
    winner: int


@dataclass(frozen=True)
class AuditReportWire(Schema):
    """``GET /v1/elections/{id}/audit/report`` — the cached audit outcome."""

    SCHEMA_NAME: ClassVar[str] = "AuditReportWire"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("election_id", "string", "audited election", max_length=64),
        FieldSpec("ok", "bool", "did every check pass"),
        FieldSpec("strategy", "string", "verifier strategy that produced the report", max_length=32),
        FieldSpec("num_checks", "int", "checks executed", min_value=0),
        FieldSpec("num_failed", "int", "checks failed", min_value=0),
        FieldSpec("fingerprint", "string", "canonical outcome digest (strategy-independent)", max_length=64),
        FieldSpec("elapsed_seconds", "float", "audit wall-clock seconds"),
        FieldSpec(
            "failures",
            "array",
            "failure loci (empty when ok)",
            item="string",
            allow_empty=True,
            max_items=1024,
        ),
    )

    election_id: str
    ok: bool
    strategy: str
    num_checks: int
    num_failed: int
    fingerprint: str
    elapsed_seconds: float
    failures: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class HealthResponse(Schema):
    """``GET /healthz`` — liveness plus a drain indicator for balancers."""

    SCHEMA_NAME: ClassVar[str] = "HealthResponse"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("status", "string", "ok | draining", max_length=16),
        FieldSpec("elections", "int", "provisioned tenants", min_value=0),
        FieldSpec("uptime_seconds", "float", "seconds since the service started"),
    )

    status: str
    elections: int
    uptime_seconds: float


@dataclass(frozen=True)
class AuditStreamEvent(Schema):
    """One WebSocket message on ``/v1/elections/{id}/audit/stream``."""

    SCHEMA_NAME: ClassVar[str] = "AuditStreamEvent"
    FIELDS: ClassVar[Tuple[FieldSpec, ...]] = (
        FieldSpec("event", "string", "status | audit-report", max_length=32),
        FieldSpec("election_id", "string", "subscribed election", max_length=64),
        FieldSpec("status", "string", "election status at emission time", max_length=16),
        FieldSpec("report", "schema", "present on audit-report events", item=AuditReportWire, required=False),
    )

    event: str
    election_id: str
    status: str
    report: Optional[AuditReportWire] = None


# ---------------------------------------------------------------------------
# Domain conversions (wire <-> ledger records / credentials)
# ---------------------------------------------------------------------------


def ballot_to_wire(record: BallotRecord) -> BallotWire:
    """Encode a ledger ballot record for the wire (lossless)."""
    return BallotWire(
        credential_public_key=record.credential_public_key.to_bytes(),
        ciphertext_c1=record.ciphertext_c1.to_bytes(),
        ciphertext_c2=record.ciphertext_c2.to_bytes(),
        signature_commitment=record.signature.commitment.to_bytes(),
        signature_response=record.signature.response,
        election_id=record.election_id,
    )


def ballot_from_wire(group: Group, wire: BallotWire, path: str = "ballot") -> BallotRecord:
    """Decode a wire ballot into a ledger record over ``group``.

    Element decoding is strict — bytes that do not name a group member raise
    :class:`SchemaError` with the offending field's path, so a malformed cast
    is a 400 naming the field, not a 500 deep inside the ledger.
    """

    def element(name: str, data: bytes) -> GroupElement:
        try:
            candidate = group.element_from_bytes(data)
        except Exception:  # backends raise varied types on corrupt encodings
            raise SchemaError({f"{path}.{name}": "not a valid group element"}) from None
        return candidate

    record = BallotRecord(
        credential_public_key=element("credential_public_key", wire.credential_public_key),
        ciphertext_c1=element("ciphertext_c1", wire.ciphertext_c1),
        ciphertext_c2=element("ciphertext_c2", wire.ciphertext_c2),
        signature=SchnorrSignature(
            commitment=element("signature_commitment", wire.signature_commitment),
            response=wire.signature_response,
        ),
        election_id=wire.election_id,
    )
    return record


def schema_catalog() -> Dict[str, Type[Schema]]:
    """Every registered schema, by name (docs and the doc-sync test)."""
    return dict(SCHEMAS)


def schema_markdown(schema: Type[Schema]) -> str:
    """A markdown table for one schema — the docs are derived, not hand-kept."""
    lines = [
        f"### `{schema.SCHEMA_NAME}`",
        "",
        "| field | type | required | description |",
        "|---|---|---|---|",
    ]
    for spec in schema.FIELDS:
        required = "yes" if spec.required else "no"
        lines.append(f"| `{spec.name}` | `{spec.wire_type()}` | {required} | {spec.doc} |")
    return "\n".join(lines)
