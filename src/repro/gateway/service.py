"""The gateway's domain layer: tenants, micro-batch admission, and drain.

One :class:`GatewayService` hosts many **tenants** — fully independent
elections, each with its own bulletin board, authority, registrar, admission
queue and governor.  The HTTP layer (:mod:`repro.gateway.routes`) is a thin
adapter over this class, so every behaviour here is testable without a
socket.

The cast path is the part worth reading twice.  A ``POST .../ballots`` does
not append to the ledger synchronously; it runs the governor's admission
checks, parks each ballot on the tenant's queue with a future, and awaits
the futures.  A single **admitter** coroutine per tenant collects queued
ballots into micro-batches (up to ``batch_size`` records or
``batch_window_seconds``, whichever first) and posts each batch through the
existing :class:`~repro.ledger.backends.batched.AsyncIngestionFrontend` into
a :class:`~repro.ledger.backends.batched.BatchedBoard`.  Concurrent HTTP
clients therefore share flush work exactly like in-process bulk callers do —
and because admission order is append order, the resulting hash chain is
byte-identical to casting the same records in-process.

Threading model: all mutable state is owned by the event loop.  Blocking
domain work (setup, registration, tally, audit) runs in worker threads via
``asyncio.to_thread``; nothing in this module takes a lock around blocking
calls.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.crypto.registry import group_by_name
from repro.errors import GatewayError
from repro.gateway.governor import GovernorConfig, TenantGovernor
from repro.gateway.schemas import (
    AuditReportWire,
    AuditStreamEvent,
    CastRequest,
    CreateElectionRequest,
    CredentialWire,
    ElectionInfo,
    HealthResponse,
    RegisterRequest,
    RegisterResponse,
    SchemaError,
    TallyResponse,
    ballot_from_wire,
)
from repro.ledger.api import board_from_spec
from repro.ledger.backends.batched import AsyncIngestionFrontend, BatchedBoard
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import BallotRecord
from repro.registration.protocol import RegistrationSession
from repro.registration.setup import ElectionSetup
from repro.registration.voter import Voter
from repro.runtime.executor import executor_from_spec
from repro.tally.pipeline import TallyPipeline, TallyResult

STATUS_OPEN = "open"
STATUS_CLOSED = "closed"
STATUS_TALLIED = "tallied"


class UnknownElectionError(GatewayError):
    """No tenant with that election id (HTTP 404)."""


class ConflictError(GatewayError):
    """The operation is invalid in the election's current status (HTTP 409)."""


class ShedError(GatewayError):
    """The governor refused admission (HTTP 429 + Retry-After)."""

    def __init__(self, reason: str, retry_after_seconds: float) -> None:
        super().__init__(f"request shed: {reason}")
        self.retry_after_seconds = retry_after_seconds


class DrainingError(GatewayError):
    """The service is shutting down and refuses new work (HTTP 503)."""

    def __init__(self) -> None:
        super().__init__("service is draining")
        self.retry_after_seconds = 1.0


@dataclass
class ServiceConfig:
    """Everything one gateway process is parameterized by."""

    group_name: str = "toy"
    board_spec: str = "memory"
    executor_spec: str = "serial"
    audit_spec: str = "batched"
    num_mixers: int = 2
    proof_rounds: int = 2
    governor: GovernorConfig = field(default_factory=GovernorConfig.from_env)


# Each queued cast carries the trace context of the HTTP request that
# enqueued it, so the admitter's batch span can parent into the originating
# request even though it runs on a different task.
_CastItem = Tuple[BallotRecord, "asyncio.Future[int]", Optional[telemetry.TraceContext]]


class ElectionTenant:
    """One hosted election: board, actors, admission queue, and status."""

    def __init__(
        self,
        election_id: str,
        group_name: str,
        setup: ElectionSetup,
        session: RegistrationSession,
        num_voters: int,
        num_options: int,
        service_config: ServiceConfig,
    ) -> None:
        self.election_id = election_id
        self.group_name = group_name
        self.setup = setup
        self.session = session
        self.num_voters = num_voters
        self.num_options = num_options
        self.service_config = service_config
        self.status = STATUS_OPEN
        self.governor = TenantGovernor(config=service_config.governor)
        self.frontend = AsyncIngestionFrontend(setup.board.backend)
        # Unbounded on purpose: the governor bounds depth *before* anything
        # is enqueued, so puts never block and never need a lock.
        self._pending: "asyncio.Queue[Optional[_CastItem]]" = asyncio.Queue()
        self._admitter: Optional["asyncio.Task[None]"] = None
        self._registration_gate = asyncio.Lock()
        self._subscribers: List["asyncio.Queue[Optional[AuditStreamEvent]]"] = []
        self.tally_result: Optional[TallyResult] = None
        self._audit_cache: Optional[Tuple[Tuple[str, int], AuditReportWire]] = None

    # ------------------------------------------------------------------ admitter

    def start(self) -> None:
        self._admitter = asyncio.get_running_loop().create_task(self._admit_loop())

    async def _admit_loop(self) -> None:
        """Collect queued casts into micro-batches and post them as one append."""
        config = self.service_config.governor
        stopping = False
        while not stopping:
            item = await self._pending.get()
            if item is None:
                break
            batch: List[_CastItem] = [item]
            deadline = time.monotonic() + config.batch_window_seconds
            while len(batch) < config.batch_size:
                # Prefer whatever is already queued; only wait out the window
                # when the queue momentarily runs dry.
                if self._pending.empty():
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(self._pending.get(), timeout=remaining)
                    except asyncio.TimeoutError:
                        break
                else:
                    extra = self._pending.get_nowait()
                if extra is None:
                    stopping = True
                    break
                batch.append(extra)
            await self._admit_batch(batch)
        # Drain mode: flush anything still buffered down to the inner chains.
        await self.frontend.drain()

    async def _admit_batch(self, batch: List[_CastItem]) -> None:
        records = [record for record, _, _ in batch]
        # A batch mixes casts from many requests; the span parents under the
        # first traced one and records how many distinct traces it covers.
        contexts = [context for _, _, context in batch if context is not None]
        trace_ids = {context.trace_id for context in contexts}
        token = telemetry.attach(contexts[0]) if contexts else None
        try:
            with telemetry.span(
                "gateway.batch.admit",
                election=self.election_id,
                size=len(batch),
                traces=len(trace_ids),
            ):
                seqs = await self.frontend.post_ballots(records)
        except Exception as error:
            telemetry.counter("gateway.errors", len(batch))
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(GatewayError(f"ledger append failed: {error}"))
            return
        finally:
            if token is not None:
                telemetry.detach(token)
            self.governor.queued -= len(batch)
            telemetry.gauge("gateway.queue.depth", self.governor.queued, election=self.election_id)
        telemetry.histogram("gateway.batch.size", len(batch), election=self.election_id)
        telemetry.counter("gateway.casts", len(batch))
        for (_, future, _), seq in zip(batch, seqs):
            if not future.done():
                future.set_result(seq)

    async def stop_admitter(self) -> None:
        if self._admitter is None:
            return
        self._pending.put_nowait(None)
        await self._admitter
        self._admitter = None

    # ------------------------------------------------------------------ casting

    async def cast(self, client_key: str, request: CastRequest) -> List[int]:
        if self.status != STATUS_OPEN:
            raise ConflictError(
                f"election {self.election_id!r} is {self.status}; casting requires open"
            )
        records = [
            ballot_from_wire(self.setup.group, wire, path=f"ballots[{index}]")
            for index, wire in enumerate(request.ballots)
        ]
        for index, record in enumerate(records):
            if record.election_id != self.election_id:
                raise SchemaError(
                    {f"ballots[{index}].election_id": f"ballot is for {record.election_id!r}"}
                )
        admission = self.governor.admit_cast(client_key, len(records), time.monotonic())
        if not admission.allowed:
            telemetry.counter("gateway.shed", len(records))
            raise ShedError(admission.reason, admission.retry_after_seconds)
        loop = asyncio.get_running_loop()
        futures: List["asyncio.Future[int]"] = [loop.create_future() for _ in records]
        self.governor.queued += len(records)
        telemetry.gauge("gateway.queue.depth", self.governor.queued, election=self.election_id)
        context = telemetry.current_context()
        for record, future in zip(records, futures):
            self._pending.put_nowait((record, future, context))
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------- registration

    async def register(self, request: RegisterRequest) -> RegisterResponse:
        if self.status != STATUS_OPEN:
            raise ConflictError(
                f"election {self.election_id!r} is {self.status}; registration requires open"
            )
        board = self.setup.board
        if not board.is_eligible(request.voter_id):
            raise SchemaError({"voter_id": "not on the electoral roll"})
        if board.registration_for(request.voter_id) is not None:
            raise ConflictError(f"voter {request.voter_id!r} is already registered")
        # The registrar actors (kiosk, official, booth supply) are stateful,
        # so registrations are serialized per tenant; the crypto still runs
        # off-loop in a worker thread.
        async with self._registration_gate:
            return await asyncio.to_thread(self._register_blocking, request.voter_id)

    def _register_blocking(self, voter_id: str) -> RegisterResponse:
        outcome = self.session.register(Voter(voter_id=voter_id))
        log = self.setup.board.registration_log
        payload = outcome.record.payload()
        ledger_seq = max(
            entry.index for entry in log.entries() if entry.payload == payload
        )
        credentials = [
            CredentialWire(
                voter_id=voter_id,
                secret_key=report.credential.secret_key,
                public_key=report.credential.public_key.to_bytes(),
                is_real=report.credential.is_real,
            )
            for report in outcome.activation_reports
            if report.success and report.credential is not None
        ]
        return RegisterResponse(voter_id=voter_id, ledger_seq=ledger_seq, credentials=credentials)

    # ---------------------------------------------------------------- lifecycle

    async def close(self) -> None:
        if self.status != STATUS_OPEN:
            raise ConflictError(f"election {self.election_id!r} is already {self.status}")
        self.status = STATUS_CLOSED
        await self.stop_admitter()
        self._publish(AuditStreamEvent(event="status", election_id=self.election_id, status=self.status))

    async def tally(self) -> TallyResponse:
        if self.status == STATUS_OPEN:
            raise ConflictError(f"election {self.election_id!r} must be closed before tallying")
        if self.tally_result is None:
            self.tally_result = await asyncio.to_thread(self._tally_blocking)
            self.status = STATUS_TALLIED
            self._publish(
                AuditStreamEvent(event="status", election_id=self.election_id, status=self.status)
            )
        result = self.tally_result
        return TallyResponse(
            election_id=self.election_id,
            counts={str(option): count for option, count in result.counts.items()},
            turnout=result.turnout,
            num_ballots_on_ledger=result.num_ballots_on_ledger,
            num_valid_ballots=result.num_valid_ballots,
            num_counted=result.num_counted,
            num_discarded=result.num_discarded,
            winner=result.winner(),
        )

    def _tally_blocking(self) -> TallyResult:
        executor = executor_from_spec(self.service_config.executor_spec)
        pipeline = TallyPipeline(
            group=self.setup.group,
            authority=self.setup.authority,
            num_mixers=self.service_config.num_mixers,
            proof_rounds=self.service_config.proof_rounds,
            executor=executor,
        )
        return pipeline.run(self.setup.board, self.num_options, election_id=self.election_id)

    async def audit_report(self) -> AuditReportWire:
        if self.status == STATUS_OPEN:
            raise ConflictError(f"election {self.election_id!r} must be closed before auditing")
        cache_key = (self.status, self.setup.board.num_ballots)
        if self._audit_cache is not None and self._audit_cache[0] == cache_key:
            return self._audit_cache[1]
        wire = await asyncio.to_thread(self._audit_blocking)
        self._audit_cache = (cache_key, wire)
        self._publish(
            AuditStreamEvent(
                event="audit-report",
                election_id=self.election_id,
                status=self.status,
                report=wire,
            )
        )
        return wire

    def _audit_blocking(self) -> AuditReportWire:
        from repro.audit.checks import audit_election
        from repro.election.config import ElectionConfig

        started = time.monotonic()
        config = ElectionConfig(
            election_id=self.election_id, audit_spec=self.service_config.audit_spec
        )
        report = audit_election(
            self.setup.board,
            config=config,
            authority=self.setup.authority,
            result=self.tally_result,
            kiosk_public_keys=self.setup.registrar.kiosk_public_keys,
        )
        wire = AuditReportWire(
            election_id=self.election_id,
            ok=report.ok,
            strategy=self.service_config.audit_spec,
            num_checks=report.num_checks,
            num_failed=report.num_failed,
            fingerprint=report.fingerprint(),
            elapsed_seconds=time.monotonic() - started,
            failures=[f"{failure.kind}:{failure.name}" for failure in report.failures],
        )
        # Audit progress on /metrics: one counter tick per completed report,
        # labelled with its fingerprint so dashboards can spot a chain that
        # stopped re-verifying (the per-check counts ride the verifier's own
        # "audit.checks" series emitted during the run above).
        telemetry.counter(
            "audit.reports",
            1,
            election=self.election_id,
            ok=str(report.ok).lower(),
            fingerprint=wire.fingerprint[:12],
        )
        return wire

    async def shutdown(self) -> None:
        """Drain the admission queue, flush the board, release resources."""
        await self.stop_admitter()
        for queue in self._subscribers:
            queue.put_nowait(None)
        self._subscribers.clear()
        await asyncio.to_thread(self.setup.board.close)

    # ------------------------------------------------------------------ queries

    def info(self) -> ElectionInfo:
        board = self.setup.board
        return ElectionInfo(
            election_id=self.election_id,
            status=self.status,
            group=self.group_name,
            generator=self.setup.group.generator.to_bytes(),
            authority_public_key=self.setup.authority_public_key.to_bytes(),
            num_options=self.num_options,
            num_voters=self.num_voters,
            num_registered=board.num_registered,
            num_ballots=board.num_ballots,
            pending_casts=self.governor.queued,
        )

    # -------------------------------------------------------------- subscribers

    def subscribe(self) -> "asyncio.Queue[Optional[AuditStreamEvent]]":
        queue: "asyncio.Queue[Optional[AuditStreamEvent]]" = asyncio.Queue()
        self._subscribers.append(queue)
        queue.put_nowait(
            AuditStreamEvent(event="status", election_id=self.election_id, status=self.status)
        )
        return queue

    def unsubscribe(self, queue: "asyncio.Queue[Optional[AuditStreamEvent]]") -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def _publish(self, event: AuditStreamEvent) -> None:
        for queue in self._subscribers:
            queue.put_nowait(event)
            telemetry.counter("gateway.ws.events")


class GatewayService:
    """The multi-tenant front door the HTTP routes adapt onto."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.tenants: Dict[str, ElectionTenant] = {}
        self.draining = False
        self._started_at = time.monotonic()

    # ----------------------------------------------------------------- tenants

    def tenant(self, election_id: str) -> ElectionTenant:
        tenant = self.tenants.get(election_id)
        if tenant is None:
            raise UnknownElectionError(f"no election {election_id!r} on this gateway")
        return tenant

    async def create_election(self, request: CreateElectionRequest) -> ElectionInfo:
        self._refuse_if_draining()
        if request.election_id in self.tenants:
            raise ConflictError(f"election {request.election_id!r} already exists")
        group_name = request.group or self.config.group_name
        try:
            group_by_name(group_name)
        except ValueError as error:
            raise SchemaError({"group": str(error)}) from None
        tenant = await asyncio.to_thread(self._build_tenant, request, group_name)
        # Re-check after the blocking build: a concurrent create for the same
        # id may have landed while this one was in the worker thread.
        if request.election_id in self.tenants:
            await tenant.shutdown()
            raise ConflictError(f"election {request.election_id!r} already exists")
        self.tenants[request.election_id] = tenant
        tenant.start()
        return tenant.info()

    def _build_tenant(self, request: CreateElectionRequest, group_name: str) -> ElectionTenant:
        group = group_by_name(group_name)
        backend = board_from_spec(self.config.board_spec, group=group)
        if not isinstance(backend, BatchedBoard):
            backend = BatchedBoard(backend, batch_size=self.config.governor.batch_size)
        board = BulletinBoard(backend)
        width = max(4, len(str(request.num_voters)))
        voter_ids = [f"voter-{index:0{width}d}" for index in range(request.num_voters)]
        setup = ElectionSetup.run(
            group,
            voter_ids,
            num_authority_members=request.num_authority_members or 3,
            board=board,
        )
        session = RegistrationSession(setup=setup)
        return ElectionTenant(
            election_id=request.election_id,
            group_name=group_name,
            setup=setup,
            session=session,
            num_voters=request.num_voters,
            num_options=request.num_options,
            service_config=self.config,
        )

    # ---------------------------------------------------------------- handlers

    async def register(self, election_id: str, request: RegisterRequest) -> RegisterResponse:
        self._refuse_if_draining()
        return await self.tenant(election_id).register(request)

    async def cast(self, election_id: str, client_key: str, request: CastRequest) -> List[int]:
        self._refuse_if_draining()
        return await self.tenant(election_id).cast(client_key, request)

    async def close_election(self, election_id: str) -> ElectionInfo:
        tenant = self.tenant(election_id)
        await tenant.close()
        return tenant.info()

    async def tally(self, election_id: str) -> TallyResponse:
        self._refuse_if_draining()
        return await self.tenant(election_id).tally()

    async def audit_report(self, election_id: str) -> AuditReportWire:
        return await self.tenant(election_id).audit_report()

    def health(self) -> HealthResponse:
        return HealthResponse(
            status="draining" if self.draining else "ok",
            elections=len(self.tenants),
            uptime_seconds=time.monotonic() - self._started_at,
        )

    def metrics(self) -> str:
        for election_id, tenant in sorted(self.tenants.items()):
            telemetry.gauge(
                "gateway.queue.depth", tenant.governor.queued, election=election_id
            )
        return telemetry.snapshot().to_prometheus()

    # -------------------------------------------------------------- ops plane

    def debug_queues(self) -> Dict[str, Any]:
        """Cast-queue depth per tenant (`GET /v1/debug/queues`)."""
        queues: Dict[str, Any] = {}
        for election_id, tenant in sorted(self.tenants.items()):
            queues[election_id] = {
                "queued": tenant.governor.queued,
                "pending": tenant._pending.qsize(),
                "admitter_running": tenant._admitter is not None
                and not tenant._admitter.done(),
            }
        return {"draining": self.draining, "queues": queues}

    def debug_governors(self) -> Dict[str, Any]:
        """Live token-bucket levels per tenant (`GET /v1/debug/governors`)."""
        now = time.monotonic()
        governors: Dict[str, Any] = {}
        for election_id, tenant in sorted(self.tenants.items()):
            governor = tenant.governor
            governors[election_id] = {
                "tenant_bucket": _bucket_level(governor.tenant_bucket, now),
                "clients": {
                    client: _bucket_level(bucket, now)
                    for client, bucket in sorted(governor.client_buckets.items())
                },
                "queued": governor.queued,
                "admitted_total": governor.admitted_total,
                "shed_total": governor.shed_total,
            }
        return {"governors": governors}

    def debug_tenants(self) -> Dict[str, Any]:
        """Per-tenant status + counts (`GET /v1/debug/tenants`)."""
        tenants: Dict[str, Any] = {}
        for election_id, tenant in sorted(self.tenants.items()):
            board = tenant.setup.board
            tenants[election_id] = {
                "status": tenant.status,
                "group": tenant.group_name,
                "num_voters": tenant.num_voters,
                "num_options": tenant.num_options,
                "num_registered": board.num_registered,
                "num_ballots": board.num_ballots,
                "queued": tenant.governor.queued,
                "admitted_total": tenant.governor.admitted_total,
                "shed_total": tenant.governor.shed_total,
                "subscribers": len(tenant._subscribers),
                "tallied": tenant.tally_result is not None,
            }
        return {"draining": self.draining, "tenants": tenants}

    # ---------------------------------------------------------------- shutdown

    def _refuse_if_draining(self) -> None:
        if self.draining:
            raise DrainingError()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish queued casts, flush boards."""
        if self.draining:
            return
        self.draining = True
        for tenant in self.tenants.values():
            await tenant.shutdown()


def _bucket_level(bucket: Any, now: float) -> Optional[Dict[str, float]]:
    """A token bucket's current fill, refill-adjusted but not mutated."""
    if bucket is None:
        return None
    elapsed = max(0.0, now - bucket.updated_at)
    return {
        "tokens": min(bucket.burst, bucket.tokens + elapsed * bucket.rate),
        "burst": bucket.burst,
        "rate": bucket.rate,
    }


def service_from_config(config: Any) -> GatewayService:
    """Build a :class:`GatewayService` from an :class:`ElectionConfig`-like object.

    Maps the election's deployment specs (board, executor, audit, group
    factory, mixing/proof parameters) onto a :class:`ServiceConfig`; the
    ``gateway_spec`` grammar itself is parsed by
    :func:`repro.gateway.routes.server_from_spec`.
    """
    group = config.group_factory()
    group_name = getattr(group, "name", None) or "toy"
    return GatewayService(
        ServiceConfig(
            group_name=group_name,
            board_spec=getattr(config, "board_spec", "memory"),
            executor_spec=getattr(config, "executor_spec", "serial"),
            audit_spec=getattr(config, "audit_spec", "batched"),
            num_mixers=getattr(config, "num_mixers", 2),
            proof_rounds=getattr(config, "proof_rounds", 2),
            governor=GovernorConfig.from_env(),
        )
    )
