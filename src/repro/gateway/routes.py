"""Versioned HTTP routes and the asyncio server hosting them.

The route table below is *data* — method, pattern, request/response schema
and a doc line per route — consumed three ways: the dispatcher matches
against it, ``docs/gateway.md`` renders it (checked by the gateway doc-sync
test), and the client SDK mirrors it method-for-method.  Handlers translate
between HTTP and :class:`~repro.gateway.service.GatewayService`; no domain
logic lives here.

Error mapping is centralized in :func:`dispatch`: schema failures become 400
bodies carrying per-field errors, governor shedding becomes 429 +
``Retry-After``, drain mode becomes 503, unknown tenants 404 and status
conflicts 409 — every non-2xx body is an :class:`ErrorBody`.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Tuple, Type, Union

from repro import telemetry
from repro.errors import GatewayError
from repro.gateway.http import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    BadRequest,
    Request,
    encode_ws_frame,
    read_request,
    read_ws_frame,
    render_response,
    websocket_handshake_response,
)
from repro.gateway.schemas import (
    CastRequest,
    CastResponse,
    CreateElectionRequest,
    ErrorBody,
    RegisterRequest,
    Schema,
    SchemaError,
)
from repro.gateway.schemas import (
    AuditReportWire,
    ElectionInfo,
    HealthResponse,
    RegisterResponse,
    TallyResponse,
)
from repro.gateway.service import (
    ConflictError,
    DrainingError,
    GatewayService,
    ShedError,
    UnknownElectionError,
)

#: What one handler returns: status code + a schema body (or raw text for
#: the Prometheus exposition endpoint and the debug ops plane).
HandlerResult = Tuple[int, Union[Schema, str]]
Handler = Callable[[GatewayService, Request, Dict[str, str]], Awaitable[HandlerResult]]

#: Gate for the live ops plane (`GET /v1/debug/*`).  The routes are always
#: in the table (so docs and the SDK see them) but answer 404 unless the
#: process was started with ``REPRO_GATEWAY_DEBUG=1``.
DEBUG_ENV = "REPRO_GATEWAY_DEBUG"


def debug_enabled() -> bool:
    return os.environ.get(DEBUG_ENV, "") == "1"


@dataclass(frozen=True)
class Route:
    """One row of the route table."""

    method: str
    pattern: str
    name: str
    doc: str
    handler: Handler
    request_schema: Optional[Type[Schema]] = None
    response_schema: Optional[Type[Schema]] = None

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        """Path parameters when ``method path`` matches this route, else None."""
        if method != self.method:
            return None
        return match_pattern(self.pattern, path)


def match_pattern(pattern: str, path: str) -> Optional[Dict[str, str]]:
    """Match ``/v1/elections/{election_id}/ballots`` style patterns."""
    pattern_parts = pattern.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern_parts, path_parts):
        if expected.startswith("{") and expected.endswith("}"):
            if not actual:
                return None
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------


async def _create_election(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    body = CreateElectionRequest.from_json(request.body)
    assert isinstance(body, CreateElectionRequest)
    return 201, await service.create_election(body)


async def _election_info(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    return 200, service.tenant(params["election_id"]).info()


async def _register(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    body = RegisterRequest.from_json(request.body)
    assert isinstance(body, RegisterRequest)
    return 200, await service.register(params["election_id"], body)


async def _cast(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    body = CastRequest.from_json(request.body)
    assert isinstance(body, CastRequest)
    seqs = await service.cast(params["election_id"], request.client_key, body)
    return 200, CastResponse(ledger_seqs=seqs)


async def _close_election(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    return 200, await service.close_election(params["election_id"])


async def _tally(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    return 200, await service.tally(params["election_id"])


async def _audit_report(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    return 200, await service.audit_report(params["election_id"])


async def _health(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    return 200, service.health()


async def _metrics(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    return 200, service.metrics()


def _require_debug() -> None:
    if not debug_enabled():
        # 404, not 403: the ops plane should be invisible when disabled.
        raise UnknownElectionError(
            f"debug routes are disabled (start the gateway with {DEBUG_ENV}=1)"
        )


async def _debug_spans(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    _require_debug()
    return 200, json.dumps({"spans": telemetry.active_spans()}, indent=2)


async def _debug_queues(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    _require_debug()
    return 200, json.dumps(service.debug_queues(), indent=2)


async def _debug_governors(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    _require_debug()
    return 200, json.dumps(service.debug_governors(), indent=2)


async def _debug_tenants(
    service: GatewayService, request: Request, params: Dict[str, str]
) -> HandlerResult:
    _require_debug()
    return 200, json.dumps(service.debug_tenants(), indent=2)


#: The WebSocket route is documented here but dispatched by the connection
#: handler (it hijacks the stream instead of returning one response).
AUDIT_STREAM_PATTERN = "/v1/elections/{election_id}/audit/stream"

ROUTES: Tuple[Route, ...] = (
    Route(
        "POST",
        "/v1/elections",
        "create_election",
        "Provision a tenant: roll, authority DKG, registrar keys, board.",
        _create_election,
        request_schema=CreateElectionRequest,
        response_schema=ElectionInfo,
    ),
    Route(
        "GET",
        "/v1/elections/{election_id}",
        "election_info",
        "Everything a casting client needs (group, keys, status, counts).",
        _election_info,
        response_schema=ElectionInfo,
    ),
    Route(
        "POST",
        "/v1/elections/{election_id}/registrations",
        "register",
        "Run TRIP registration for one voter; returns activated credentials.",
        _register,
        request_schema=RegisterRequest,
        response_schema=RegisterResponse,
    ),
    Route(
        "POST",
        "/v1/elections/{election_id}/ballots",
        "cast",
        "Cast 1..256 ballots; admitted as micro-batches into the ledger.",
        _cast,
        request_schema=CastRequest,
        response_schema=CastResponse,
    ),
    Route(
        "POST",
        "/v1/elections/{election_id}/close",
        "close_election",
        "Stop admission, drain the queue, flush the board chains.",
        _close_election,
        response_schema=ElectionInfo,
    ),
    Route(
        "POST",
        "/v1/elections/{election_id}/tally",
        "tally",
        "Run (or return) the mix-filter-decrypt tally; requires closed.",
        _tally,
        response_schema=TallyResponse,
    ),
    Route(
        "GET",
        "/v1/elections/{election_id}/audit/report",
        "audit_report",
        "Audit the election end-to-end; cached until the ledger moves.",
        _audit_report,
        response_schema=AuditReportWire,
    ),
    Route(
        "GET",
        "/healthz",
        "health",
        "Liveness plus the drain indicator load balancers act on.",
        _health,
        response_schema=HealthResponse,
    ),
    Route(
        "GET",
        "/metrics",
        "metrics",
        "Prometheus exposition of the process telemetry snapshot.",
        _metrics,
    ),
    Route(
        "GET",
        "/v1/debug/spans",
        "debug_spans",
        "In-flight spans, slowest first; 404 unless REPRO_GATEWAY_DEBUG=1.",
        _debug_spans,
    ),
    Route(
        "GET",
        "/v1/debug/queues",
        "debug_queues",
        "Cast-queue depth and admitter liveness per tenant (debug only).",
        _debug_queues,
    ),
    Route(
        "GET",
        "/v1/debug/governors",
        "debug_governors",
        "Live token-bucket fill per tenant and per client (debug only).",
        _debug_governors,
    ),
    Route(
        "GET",
        "/v1/debug/tenants",
        "debug_tenants",
        "Per-tenant status, ballot counts, and admission totals (debug only).",
        _debug_tenants,
    ),
)


def route_table() -> Tuple[Route, ...]:
    """The full route table (docs and the doc-sync test derive from this)."""
    return ROUTES


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def _error_response(
    status: int, message: str, field_errors: Optional[Dict[str, str]] = None,
    retry_after: Optional[float] = None,
) -> Tuple[int, bytes, Dict[str, str]]:
    body = ErrorBody(
        error=message, field_errors=field_errors, retry_after_seconds=retry_after
    )
    headers: Dict[str, str] = {}
    if retry_after is not None:
        headers["Retry-After"] = f"{max(retry_after, 0.001):.3f}"
    return status, body.to_json().encode(), headers


async def dispatch(
    service: GatewayService, request: Request
) -> Tuple[int, bytes, Dict[str, str], str]:
    """Route + run one request; returns (status, body, headers, content type)."""
    matched: Optional[Route] = None
    params: Dict[str, str] = {}
    allowed: List[str] = []
    for route in ROUTES:
        candidate = match_pattern(route.pattern, request.path)
        if candidate is None:
            continue
        allowed.append(route.method)
        if route.method == request.method:
            matched = route
            params = candidate
            break
    if matched is None:
        if allowed:
            status, body, headers = _error_response(
                405, f"method {request.method} not allowed (try {', '.join(sorted(allowed))})"
            )
        else:
            status, body, headers = _error_response(404, f"no route for {request.path}")
        return status, body, headers, "application/json"

    # Trace context: adopt the caller's traceparent or mint a fresh trace,
    # so every span below (handler, batch admit, ledger flush) shares one
    # trace_id.  Nothing here runs when telemetry is off.
    trace_context: Optional[telemetry.TraceContext] = None
    token = None
    if telemetry.enabled():
        trace_context = telemetry.parse_traceparent(
            request.header(telemetry.TRACEPARENT_HEADER)
        )
        if trace_context is None:
            trace_context = telemetry.new_trace()
        token = telemetry.attach(trace_context)
    try:
        with telemetry.span(
            "gateway.request", method=request.method, route=matched.pattern
        ) as handle:
            status, body, headers, content_type = await _execute_route(
                service, request, matched, params
            )
            handle.attrs["status"] = status
    finally:
        if token is not None:
            telemetry.detach(token)
    if trace_context is not None:
        headers.setdefault(
            telemetry.TRACEPARENT_HEADER,
            trace_context._replace(span_id=handle.span_id).to_traceparent(),
        )
        telemetry.histogram(
            "gateway.request.seconds",
            handle.elapsed_seconds,
            exemplar=trace_context.trace_id,
            method=request.method,
            route=matched.pattern,
        )
    return status, body, headers, content_type


async def _execute_route(
    service: GatewayService, request: Request, matched: Route, params: Dict[str, str]
) -> Tuple[int, bytes, Dict[str, str], str]:
    """Run one matched route's handler and map domain errors to HTTP."""
    try:
        status, payload = await matched.handler(service, request, params)
    except SchemaError as error:
        status, body, headers = _error_response(
            400, "request failed validation", field_errors=error.field_errors
        )
        return status, body, headers, "application/json"
    except UnknownElectionError as error:
        status, body, headers = _error_response(404, str(error))
        return status, body, headers, "application/json"
    except ConflictError as error:
        status, body, headers = _error_response(409, str(error))
        return status, body, headers, "application/json"
    except ShedError as error:
        status, body, headers = _error_response(
            429, str(error), retry_after=error.retry_after_seconds
        )
        return status, body, headers, "application/json"
    except DrainingError as error:
        status, body, headers = _error_response(
            503, str(error), retry_after=error.retry_after_seconds
        )
        return status, body, headers, "application/json"
    except GatewayError as error:
        telemetry.counter("gateway.errors")
        status, body, headers = _error_response(500, str(error))
        return status, body, headers, "application/json"
    if isinstance(payload, Schema):
        return status, payload.to_json().encode(), {}, "application/json"
    if matched.name.startswith("debug_"):
        return status, payload.encode(), {}, "application/json"
    return status, payload.encode(), {}, "text/plain; version=0.0.4"


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class GatewayServer:
    """``asyncio.start_server`` wrapper: keep-alive HTTP + the audit stream."""

    def __init__(
        self, service: GatewayService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: finish queued casts, then stop accepting."""
        await self.service.shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else ""
        try:
            while True:
                try:
                    request = await read_request(reader, peer=peer)
                except BadRequest as error:
                    status, body, headers = _error_response(400, str(error))
                    writer.write(render_response(status, body, extra_headers=headers, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._serve_audit_stream(reader, writer, request)
                    break
                status, body, headers, content_type = await dispatch(self.service, request)
                keep_alive = request.keep_alive
                writer.write(
                    render_response(
                        status, body, content_type=content_type,
                        extra_headers=headers, keep_alive=keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            # The peer vanished mid-exchange; nothing to answer.
            return
        finally:
            writer.close()

    async def _serve_audit_stream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, request: Request
    ) -> None:
        params = match_pattern(AUDIT_STREAM_PATTERN, request.path)
        if params is None:
            status, body, headers = _error_response(
                404, f"no websocket endpoint at {request.path}"
            )
            writer.write(render_response(status, body, extra_headers=headers, keep_alive=False))
            await writer.drain()
            return
        try:
            tenant = self.service.tenant(params["election_id"])
        except UnknownElectionError as error:
            status, body, headers = _error_response(404, str(error))
            writer.write(render_response(status, body, extra_headers=headers, keep_alive=False))
            await writer.drain()
            return
        writer.write(websocket_handshake_response(request))
        await writer.drain()
        queue = tenant.subscribe()
        frame_task = asyncio.ensure_future(read_ws_frame(reader))
        event_task = asyncio.ensure_future(queue.get())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {frame_task, event_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if frame_task in done:
                    frame = frame_task.result()
                    if frame is None or frame.opcode == WS_CLOSE:
                        break
                    if frame.opcode == WS_PING:
                        writer.write(encode_ws_frame(WS_PONG, frame.payload))
                        await writer.drain()
                    frame_task = asyncio.ensure_future(read_ws_frame(reader))
                if event_task in done:
                    event = event_task.result()
                    if event is None:
                        writer.write(encode_ws_frame(WS_CLOSE, b""))
                        await writer.drain()
                        break
                    writer.write(encode_ws_frame(WS_TEXT, event.to_json().encode()))
                    await writer.drain()
                    event_task = asyncio.ensure_future(queue.get())
        finally:
            tenant.unsubscribe(queue)
            for task in (frame_task, event_task):
                if not task.done():
                    task.cancel()


def server_from_spec(spec: str, service: GatewayService) -> Optional[GatewayServer]:
    """Build a server from a ``gateway_spec`` string.

    Accepted forms::

        "off"                    no gateway (the default)
        "serve"                  loopback, ephemeral port
        "serve:8080"             loopback, fixed port
        "serve:0.0.0.0:8080"     explicit bind host and port
    """
    text = (spec or "off").strip()
    kind, _, rest = text.partition(":")
    if kind.lower() == "off":
        if rest:
            raise GatewayError(f"gateway spec 'off' takes no parameters: {spec!r}")
        return None
    if kind.lower() != "serve":
        raise GatewayError(
            f"unknown gateway spec {spec!r} (expected off or serve[:host][:port])"
        )
    host, port = "127.0.0.1", 0
    if rest:
        host_text, separator, port_text = rest.rpartition(":")
        if separator:
            host = host_text or host
        else:
            port_text = rest
        try:
            port = int(port_text)
        except ValueError:
            raise GatewayError(f"bad port in gateway spec {spec!r}") from None
    return GatewayServer(service, host=host, port=port)
