"""Typed synchronous client SDK for the gateway.

One method per route, returning the same frozen schema dataclasses the
server serializes — the SDK and the server literally share
:mod:`repro.gateway.schemas`, so they cannot drift apart.  Transport is
stdlib ``http.client`` (one keep-alive connection per client), and the audit
stream uses a hand-rolled RFC 6455 client handshake over a plain socket.

:class:`CastingSession` closes the loop for end-to-end tests and demos: it
pulls :class:`~repro.gateway.schemas.ElectionInfo`, rebuilds the election
group by name through :mod:`repro.crypto.registry`, and forms real signed
ballots client-side with :func:`repro.voting.ballot.make_ballot` — the same
code path an in-process election uses, proving the HTTP surface carries
everything a voter's device needs.
"""

from __future__ import annotations

import base64
import http.client
import secrets
import socket
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type, TypeVar

from repro import telemetry
from repro.crypto.group import Group
from repro.crypto.registry import group_by_name
from repro.crypto.schnorr import SigningKeyPair
from repro.errors import GatewayError
from repro.gateway.http import WS_CLOSE, WS_TEXT, SyncWsReader, websocket_accept_value
from repro.gateway.schemas import (
    AuditReportWire,
    AuditStreamEvent,
    BallotWire,
    CastRequest,
    CastResponse,
    CreateElectionRequest,
    CredentialWire,
    ElectionInfo,
    ErrorBody,
    HealthResponse,
    RegisterRequest,
    RegisterResponse,
    Schema,
    TallyResponse,
    ballot_to_wire,
)
from repro.voting.ballot import make_ballot

S = TypeVar("S", bound=Schema)


class GatewayClientError(GatewayError):
    """A non-2xx response; carries the decoded :class:`ErrorBody`."""

    def __init__(self, status: int, body: ErrorBody) -> None:
        super().__init__(f"HTTP {status}: {body.error}")
        self.status = status
        self.body = body

    @property
    def field_errors(self) -> Dict[str, str]:
        return dict(self.body.field_errors or {})


class RateLimited(GatewayClientError):
    """A 429/503: the governor shed this request; back off and retry."""

    @property
    def retry_after_seconds(self) -> float:
        return float(self.body.retry_after_seconds or 0.0)


@dataclass
class GatewayClient:
    """Synchronous SDK over one keep-alive connection."""

    host: str = "127.0.0.1"
    port: int = 8080
    client_id: str = ""
    timeout: float = 60.0
    _connection: Optional[http.client.HTTPConnection] = field(default=None, repr=False)

    # ---------------------------------------------------------------- plumbing

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Schema],
        response_schema: Type[S],
    ) -> S:
        status, payload = self._raw_request(method, path, body)
        decoded = response_schema.from_json(payload)
        assert isinstance(decoded, response_schema)
        return decoded

    def _raw_request(
        self, method: str, path: str, body: Optional[Schema]
    ) -> Tuple[int, bytes]:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        encoded = body.to_json().encode() if body is not None else b""
        # The SDK is the head of the distributed trace: the span below mints
        # (or extends) the trace context and its traceparent rides the
        # request, so server-side spans parent under this client call.  When
        # telemetry is off the span is a no-op and no header is sent.
        with telemetry.span("gateway.client.request", method=method, path=path):
            context = telemetry.current_context()
            if context is not None:
                headers[telemetry.TRACEPARENT_HEADER] = context.to_traceparent()
            try:
                self._connection.request(method, path, body=encoded, headers=headers)
                response = self._connection.getresponse()
                payload = response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                # The keep-alive connection died (server restart, drain
                # close); drop it so the next call reconnects, and surface
                # the failure.
                self.close()
                raise GatewayError(
                    f"connection to {self.host}:{self.port} failed"
                ) from None
        if status >= 400:
            error_body = ErrorBody.from_json(payload)
            assert isinstance(error_body, ErrorBody)
            if status in (429, 503):
                raise RateLimited(status, error_body)
            raise GatewayClientError(status, error_body)
        return status, payload

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ routes

    def create_election(
        self,
        election_id: str,
        num_voters: int,
        num_options: int,
        num_authority_members: Optional[int] = None,
        group: Optional[str] = None,
    ) -> ElectionInfo:
        request = CreateElectionRequest(
            election_id=election_id,
            num_voters=num_voters,
            num_options=num_options,
            num_authority_members=num_authority_members,
            group=group,
        )
        return self._request("POST", "/v1/elections", request, ElectionInfo)

    def info(self, election_id: str) -> ElectionInfo:
        return self._request("GET", f"/v1/elections/{election_id}", None, ElectionInfo)

    def register(self, election_id: str, voter_id: str) -> RegisterResponse:
        request = RegisterRequest(voter_id=voter_id)
        return self._request(
            "POST", f"/v1/elections/{election_id}/registrations", request, RegisterResponse
        )

    def cast_ballots(self, election_id: str, ballots: List[BallotWire]) -> CastResponse:
        request = CastRequest(ballots=ballots)
        return self._request(
            "POST", f"/v1/elections/{election_id}/ballots", request, CastResponse
        )

    def close_election(self, election_id: str) -> ElectionInfo:
        return self._request(
            "POST", f"/v1/elections/{election_id}/close", None, ElectionInfo
        )

    def tally(self, election_id: str) -> TallyResponse:
        return self._request(
            "POST", f"/v1/elections/{election_id}/tally", None, TallyResponse
        )

    def audit_report(self, election_id: str) -> AuditReportWire:
        return self._request(
            "GET", f"/v1/elections/{election_id}/audit/report", None, AuditReportWire
        )

    def health(self) -> HealthResponse:
        return self._request("GET", "/healthz", None, HealthResponse)

    def metrics(self) -> str:
        _, payload = self._raw_request("GET", "/metrics", None)
        return payload.decode()

    # ------------------------------------------------------------ audit stream

    def audit_stream(self, election_id: str) -> Iterator[AuditStreamEvent]:
        """Subscribe to the WebSocket audit stream; yields decoded events.

        Iteration ends when the server closes the stream (drain) or the
        generator is closed by the caller.
        """
        key = base64.b64encode(secrets.token_bytes(16)).decode("ascii")
        path = f"/v1/elections/{election_id}/audit/stream"
        raw = socket.create_connection((self.host, self.port), timeout=self.timeout)
        try:
            handshake = (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n"
                "\r\n"
            )
            raw.sendall(handshake.encode("ascii"))
            stream = raw.makefile("rb")
            status_line = stream.readline()
            if b"101" not in status_line.split(b" ", 2)[1:2]:
                raise GatewayError(
                    f"websocket handshake rejected: {status_line.decode('latin-1').strip()}"
                )
            accept_header = ""
            while True:
                line = stream.readline()
                if line in (b"\r\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "sec-websocket-accept":
                    accept_header = value.strip()
            if accept_header != websocket_accept_value(key):
                raise GatewayError("websocket handshake returned a bad accept key")
            reader = SyncWsReader(stream)
            while True:
                frame = reader.read_frame()
                if frame is None or frame.opcode == WS_CLOSE:
                    return
                if frame.opcode != WS_TEXT:
                    continue
                event = AuditStreamEvent.from_json(frame.payload)
                assert isinstance(event, AuditStreamEvent)
                yield event
        finally:
            raw.close()


@dataclass
class CastingSession:
    """Client-side ballot formation for one election over the SDK.

    Resolves the election group from the name the server advertises, keeps
    the activated credentials returned by registration, and forms signed
    encrypted ballots locally — the server never sees a secret key.
    """

    client: GatewayClient
    election_id: str
    info: Optional[ElectionInfo] = None
    _group: Optional[Group] = field(default=None, repr=False)
    credentials: Dict[str, List[CredentialWire]] = field(default_factory=dict)

    def refresh(self) -> ElectionInfo:
        self.info = self.client.info(self.election_id)
        self._group = group_by_name(self.info.group)
        return self.info

    @property
    def group(self) -> Group:
        if self._group is None:
            self.refresh()
        assert self._group is not None
        return self._group

    def register(self, voter_id: str) -> RegisterResponse:
        response = self.client.register(self.election_id, voter_id)
        self.credentials[voter_id] = list(response.credentials)
        return response

    def real_credential(self, voter_id: str) -> CredentialWire:
        for credential in self.credentials.get(voter_id, []):
            if credential.is_real:
                return credential
        raise GatewayError(f"voter {voter_id!r} has no activated real credential")

    def make_ballot_wire(
        self, credential: CredentialWire, choice: int
    ) -> BallotWire:
        """Form, prove and sign one ballot locally; returns its wire form."""
        info = self.info if self.info is not None else self.refresh()
        group = self.group
        keypair = SigningKeyPair(
            secret=credential.secret_key,
            public=group.element_from_bytes(credential.public_key),
        )
        ballot = make_ballot(
            group,
            group.element_from_bytes(info.authority_public_key),
            keypair,
            choice,
            info.num_options,
            election_id=self.election_id,
        )
        return ballot_to_wire(ballot.to_record())

    def cast(
        self, votes: List[Tuple[CredentialWire, int]]
    ) -> CastResponse:
        """Form and cast one micro-batch of (credential, choice) votes."""
        ballots = [self.make_ballot_wire(credential, choice) for credential, choice in votes]
        return self.client.cast_ballots(self.election_id, ballots)


def pretty_metrics(text: str, prefix: str = "repro_") -> List[str]:
    """Filter a Prometheus exposition down to this stack's sample lines."""
    return [
        line
        for line in text.splitlines()
        if line.startswith(prefix) and not line.startswith("#")
    ]


__all__ = [
    "CastingSession",
    "GatewayClient",
    "GatewayClientError",
    "RateLimited",
    "pretty_metrics",
]
