"""Election-as-a-service: an HTTP front door over the reproduction stack.

``python -m repro.gateway`` serves versioned JSON routes (and a WebSocket
audit stream) over :class:`~repro.gateway.service.GatewayService` — a
multi-tenant registry of elections whose ballot casts are admitted in
micro-batches into a write-behind :class:`~repro.ledger.backends.batched.
BatchedBoard`, rate-limited and load-shed by :mod:`repro.gateway.governor`.
See ``docs/gateway.md`` for the route table, schema versioning policy and a
curl quickstart.
"""

from repro.gateway.client import CastingSession, GatewayClient, GatewayClientError, RateLimited
from repro.gateway.governor import GovernorConfig, TenantGovernor, TokenBucket
from repro.gateway.routes import GatewayServer, route_table, server_from_spec
from repro.gateway.schemas import SCHEMA_VERSION, Schema, SchemaError, schema_catalog
from repro.gateway.service import (
    ElectionTenant,
    GatewayService,
    ServiceConfig,
    service_from_config,
)

__all__ = [
    "SCHEMA_VERSION",
    "CastingSession",
    "ElectionTenant",
    "GatewayClient",
    "GatewayClientError",
    "GatewayServer",
    "GatewayService",
    "GovernorConfig",
    "RateLimited",
    "Schema",
    "SchemaError",
    "ServiceConfig",
    "TenantGovernor",
    "TokenBucket",
    "route_table",
    "schema_catalog",
    "server_from_spec",
    "service_from_config",
]
