"""Admission control: token buckets, bounded queues, and load shedding.

The gateway is where untrusted clients first meet the trusted stack, so the
resource envelope is enforced here, before any crypto or ledger work runs:

* **Token buckets** per tenant and per client (the peer address, or an
  ``X-Client-Id`` header when present) bound the sustained cast rate while
  allowing bursts up to the bucket size.  Buckets take the current monotonic
  time as an argument — the governor never reads an ambient clock, which
  keeps it trivially testable and REP002-clean.
* **Bounded admission queues** cap the number of casts waiting for a
  micro-batch flush.  When the queue is full the request is **shed**: a 429
  with a ``Retry-After`` hint derived from the observed drain rate, instead
  of an unbounded queue that converts overload into latency for everyone.
* **Drain mode** rejects new work with 503 while in-flight batches finish —
  the graceful-shutdown half of load shedding.

All state is owned by the event loop thread; nothing here takes locks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Environment knobs (also set by the CLI flags); the stress CI leg
#: randomizes these to shake schedule-dependent admission bugs out.
BATCH_SIZE_ENV = "REPRO_GATEWAY_BATCH_SIZE"
QUEUE_DEPTH_ENV = "REPRO_GATEWAY_QUEUE_DEPTH"

DEFAULT_BATCH_SIZE = 64
DEFAULT_QUEUE_DEPTH = 1024
DEFAULT_BATCH_WINDOW_SECONDS = 0.002

#: Rate limits are deliberately generous by default — the gateway's job is
#: surviving overload, not metering honest traffic.  Tests dial these down.
DEFAULT_TENANT_RATE = 10_000.0
DEFAULT_TENANT_BURST = 2_048.0
DEFAULT_CLIENT_RATE = 2_000.0
DEFAULT_CLIENT_BURST = 512.0

#: Cap on distinct per-client buckets kept per tenant (oldest evicted), so a
#: client-id-spinning adversary cannot grow memory without bound.
MAX_TRACKED_CLIENTS = 4_096


def _env_int(name: str, default: int) -> int:
    text = os.environ.get(name)
    if not text:
        return default
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {text!r}") from None
    if value < 1:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@dataclass
class GovernorConfig:
    """The admission envelope of one gateway process."""

    batch_size: int = DEFAULT_BATCH_SIZE
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    batch_window_seconds: float = DEFAULT_BATCH_WINDOW_SECONDS
    tenant_rate: float = DEFAULT_TENANT_RATE
    tenant_burst: float = DEFAULT_TENANT_BURST
    client_rate: float = DEFAULT_CLIENT_RATE
    client_burst: float = DEFAULT_CLIENT_BURST

    @classmethod
    def from_env(cls, **overrides: float) -> "GovernorConfig":
        """Defaults, then environment, then explicit keyword overrides."""
        config = cls(
            batch_size=_env_int(BATCH_SIZE_ENV, DEFAULT_BATCH_SIZE),
            queue_depth=_env_int(QUEUE_DEPTH_ENV, DEFAULT_QUEUE_DEPTH),
        )
        for name, value in overrides.items():
            if not hasattr(config, name):
                raise ValueError(f"unknown governor option {name!r}")
            setattr(config, name, value)
        return config


class TokenBucket:
    """The classic token bucket, with the clock passed in by the caller."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate}/{burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def try_acquire(self, now: float, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; returns 0.0 on success, else seconds to wait.

        The returned wait is the exact time until the bucket will hold
        ``cost`` tokens at the sustained rate — what ``Retry-After`` should
        say for an honest client that backs off.
        """
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


@dataclass(frozen=True)
class Admission:
    """The governor's verdict on one request."""

    allowed: bool
    retry_after_seconds: float = 0.0
    reason: str = ""


@dataclass
class TenantGovernor:
    """Per-tenant admission state: one tenant bucket + per-client buckets."""

    config: GovernorConfig
    tenant_bucket: Optional[TokenBucket] = None
    client_buckets: Dict[str, TokenBucket] = field(default_factory=dict)
    #: Casts currently queued for micro-batch admission (mirrors the
    #: asyncio queue's depth; kept here so shedding needs no queue peek).
    queued: int = 0
    shed_total: int = 0
    admitted_total: int = 0

    def admit_cast(self, client_key: str, count: int, now: float) -> Admission:
        """Rate-limit then queue-bound one cast request of ``count`` ballots."""
        bucket = self.tenant_bucket
        if bucket is None:
            bucket = TokenBucket(self.config.tenant_rate, self.config.tenant_burst, now)
            self.tenant_bucket = bucket
        wait = bucket.try_acquire(now, cost=float(count))
        if wait > 0.0:
            self.shed_total += count
            return Admission(False, retry_after_seconds=wait, reason="tenant rate limit")
        client_wait = self._client_bucket(client_key, now).try_acquire(now, cost=float(count))
        if client_wait > 0.0:
            self.shed_total += count
            return Admission(False, retry_after_seconds=client_wait, reason="client rate limit")
        if self.queued + count > self.config.queue_depth:
            self.shed_total += count
            # Honest estimate: the queue drains one batch per window, so a
            # full queue clears in roughly depth/batch windows.
            windows = max(1.0, self.config.queue_depth / max(1, self.config.batch_size))
            retry = max(0.05, windows * self.config.batch_window_seconds)
            return Admission(False, retry_after_seconds=retry, reason="admission queue full")
        self.admitted_total += count
        return Admission(True)

    def _client_bucket(self, client_key: str, now: float) -> TokenBucket:
        bucket = self.client_buckets.get(client_key)
        if bucket is None:
            if len(self.client_buckets) >= MAX_TRACKED_CLIENTS:
                # Evict the stalest bucket — an idle bucket is full anyway,
                # so eviction never *grants* tokens a live client lacked.
                stalest = min(self.client_buckets, key=lambda key: self.client_buckets[key].updated_at)
                del self.client_buckets[stalest]
            bucket = TokenBucket(self.config.client_rate, self.config.client_burst, now)
            self.client_buckets[client_key] = bucket
        return bucket

    def snapshot(self) -> Tuple[int, int, int]:
        """(queued, admitted_total, shed_total) for /metrics and tests."""
        return (self.queued, self.admitted_total, self.shed_total)
