"""Minimal HTTP/1.1 + WebSocket wire plumbing over asyncio streams.

Deliberately dependency-free (``asyncio.start_server`` + stdlib hashing):
the reproduction must not grow hard dependencies, and the gateway needs only
a small, strict subset of HTTP — JSON request/response bodies with
``Content-Length``, keep-alive, and the RFC 6455 WebSocket handshake +
framing for the audit stream.  Limits are enforced while *reading* (header
and body caps), so an oversized request costs the configured maximum, not
whatever the client felt like sending.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import secrets
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import GatewayError

#: Reading limits: one header line, all headers, and the body.
MAX_HEADER_LINE = 8 * 1024
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 4 * 1024 * 1024

#: RFC 6455 magic GUID for the Sec-WebSocket-Accept digest.
WEBSOCKET_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes (the subset the audit stream uses).
WS_TEXT = 0x1
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA

STATUS_PHRASES: Dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(GatewayError):
    """The peer sent bytes this server refuses to parse as HTTP."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    peer: str = ""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )

    @property
    def keep_alive(self) -> bool:
        return self.header("connection", "keep-alive").lower() != "close"

    @property
    def client_key(self) -> str:
        """The admission-control identity: explicit client id, else peer."""
        return self.header("x-client-id") or self.peer or "anonymous"

    @property
    def traceparent(self) -> str:
        """The raw distributed-tracing header, ``""`` when absent.

        Parsing/minting lives in the dispatcher
        (:mod:`repro.gateway.routes`), which hands the decoded
        :class:`repro.telemetry.TraceContext` to every span below it.
        """
        return self.header("traceparent")


async def read_request(reader: asyncio.StreamReader, peer: str = "") -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        request_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise BadRequest("truncated request line") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request line too long") from None
    if len(request_line) > MAX_HEADER_LINE:
        raise BadRequest("request line too long")
    try:
        method, target, version = request_line.decode("ascii").split()
    except ValueError:
        raise BadRequest("malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise BadRequest("truncated headers") from None
        if len(line) > MAX_HEADER_LINE:
            raise BadRequest("header line too long")
        if line == b"\r\n":
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise BadRequest("too many headers")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise BadRequest("malformed Content-Length") from None
        if length < 0:
            raise BadRequest("negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise BadRequest("body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("body shorter than Content-Length") from None
    elif headers.get("transfer-encoding"):
        raise BadRequest("chunked bodies are not supported; send Content-Length")

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
        peer=peer,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name in sorted(extra_headers or {}):
        lines.append(f"{name}: {(extra_headers or {})[name]}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


# ---------------------------------------------------------------------------
# WebSocket (RFC 6455) — handshake + framing
# ---------------------------------------------------------------------------


def websocket_accept_value(key: str) -> str:
    """The Sec-WebSocket-Accept digest for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1(key.encode("ascii") + WEBSOCKET_GUID).digest()
    return base64.b64encode(digest).decode("ascii")


def websocket_handshake_response(request: Request) -> bytes:
    """The 101 Switching Protocols response, or raises :class:`BadRequest`."""
    key = request.header("sec-websocket-key")
    if not key:
        raise BadRequest("websocket upgrade without Sec-WebSocket-Key")
    return (
        b"HTTP/1.1 101 Switching Protocols\r\n"
        b"Upgrade: websocket\r\n"
        b"Connection: Upgrade\r\n"
        b"Sec-WebSocket-Accept: " + websocket_accept_value(key).encode("ascii") + b"\r\n\r\n"
    )


def encode_ws_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One complete (FIN) WebSocket frame.

    Servers send unmasked; clients must mask (``mask=True``) with a key from
    the CSPRNG — predictable masks defeat the proxy-confusion defence the
    masking exists for.
    """
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack("!H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack("!Q", length)
    if not mask:
        return bytes(header) + payload
    key = secrets.token_bytes(4)
    masked = bytes(byte ^ key[index % 4] for index, byte in enumerate(payload))
    return bytes(header) + key + masked


@dataclass(frozen=True)
class WsFrame:
    opcode: int
    payload: bytes


async def read_ws_frame(reader: asyncio.StreamReader) -> Optional[WsFrame]:
    """Read one frame; ``None`` on EOF.  Fragmentation is not supported."""
    try:
        head = await reader.readexactly(2)
    except asyncio.IncompleteReadError:
        return None
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin:
        raise BadRequest("fragmented websocket frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    try:
        if length == 126:
            length = struct.unpack("!H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack("!Q", await reader.readexactly(8))[0]
        if length > MAX_BODY_BYTES:
            raise BadRequest("websocket frame too large")
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        return None
    if masked:
        payload = bytes(byte ^ key[index % 4] for index, byte in enumerate(payload))
    return WsFrame(opcode=opcode, payload=payload)


# ---------------------------------------------------------------------------
# Synchronous client-side helpers (shared with repro.gateway.client)
# ---------------------------------------------------------------------------


@dataclass
class SyncWsReader:
    """Blocking WebSocket frame reader over a plain socket file object.

    The client SDK's audit-stream subscriber: it reads server frames (which
    are unmasked) from a ``socket.makefile("rb")`` object.
    """

    raw: "SupportsRead"
    buffer: bytes = field(default=b"", repr=False)

    def read_frame(self) -> Optional[WsFrame]:
        head = self._read_exactly(2)
        if head is None:
            return None
        opcode = head[0] & 0x0F
        length = head[1] & 0x7F
        if length == 126:
            extended = self._read_exactly(2)
            if extended is None:
                return None
            length = struct.unpack("!H", extended)[0]
        elif length == 127:
            extended = self._read_exactly(8)
            if extended is None:
                return None
            length = struct.unpack("!Q", extended)[0]
        payload = self._read_exactly(length) if length else b""
        if length and payload is None:
            return None
        return WsFrame(opcode=opcode, payload=payload or b"")

    def _read_exactly(self, count: int) -> Optional[bytes]:
        data = b""
        while len(data) < count:
            chunk = self.raw.read(count - len(data))
            if not chunk:
                return None
            data += chunk
        return data


class SupportsRead:
    """Structural type for :class:`SyncWsReader` (``socket.makefile('rb')``)."""

    def read(self, count: int) -> bytes:  # pragma: no cover - protocol stub
        raise NotImplementedError
