"""``python -m repro.gateway`` — serve elections over HTTP.

Examples::

    # Ephemeral port, in-memory board, toy group (demos and tests):
    python -m repro.gateway

    # A pre-provisioned election on a persistent board, fixed port:
    python -m repro.gateway --port 8080 --board-spec sqlite:/tmp/board.db \\
        --election demo:100:3 --group modp-256

The process prints ``gateway listening on HOST:PORT`` once the socket is
bound (scripts and the drain test parse this line), then serves until
SIGTERM/SIGINT, at which point it drains gracefully: new work is refused
with 503, queued casts flush to the ledger, boards close, exit code 0.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from typing import Dict, List, Optional

from repro import telemetry
from repro.crypto.registry import GROUP_NAMES
from repro.gateway.governor import GovernorConfig
from repro.gateway.routes import GatewayServer
from repro.gateway.schemas import CreateElectionRequest
from repro.gateway.service import GatewayService, ServiceConfig


def _parse_election(text: str) -> CreateElectionRequest:
    """Parse an ``id:voters:options`` pre-provisioning flag."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected id:num_voters:num_options, got {text!r}"
        )
    election_id, voters_text, options_text = parts
    try:
        return CreateElectionRequest(
            election_id=election_id,
            num_voters=int(voters_text),
            num_options=int(options_text),
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected id:num_voters:num_options with integers, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve elections over HTTP (see docs/gateway.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default loopback)")
    parser.add_argument("--port", type=int, default=0, help="bind port (default ephemeral)")
    parser.add_argument("--board-spec", default="memory", help="ledger backend per tenant")
    parser.add_argument("--executor-spec", default="serial", help="tally executor backend")
    parser.add_argument("--audit-spec", default="batched", help="audit verification strategy")
    parser.add_argument(
        "--group", default="toy", choices=GROUP_NAMES(), help="default election group"
    )
    parser.add_argument(
        "--election",
        action="append",
        type=_parse_election,
        default=[],
        metavar="ID:VOTERS:OPTIONS",
        help="pre-provision an election (repeatable)",
    )
    parser.add_argument("--batch-size", type=int, default=None, help="micro-batch size")
    parser.add_argument("--queue-depth", type=int, default=None, help="admission queue bound")
    parser.add_argument(
        "--telemetry",
        default=None,
        help="telemetry spec for /metrics (off | mem | jsonl:path); defaults "
        "to $REPRO_TELEMETRY if set, else mem — so a gateway launched with "
        "the same REPRO_TELEMETRY=jsonl: file as its clients joins their "
        "distributed traces instead of silently recording to memory",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    overrides: Dict[str, float] = {}
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    if args.queue_depth is not None:
        overrides["queue_depth"] = args.queue_depth
    service = GatewayService(
        ServiceConfig(
            group_name=args.group,
            board_spec=args.board_spec,
            executor_spec=args.executor_spec,
            audit_spec=args.audit_spec,
            governor=GovernorConfig.from_env(**overrides),
        )
    )
    for request in args.election:
        await service.create_election(request)
    server = GatewayServer(service, host=args.host, port=args.port)
    await server.start()
    print(f"gateway listening on {args.host}:{server.port}", flush=True)

    stop = asyncio.get_running_loop().create_future()

    def _request_stop() -> None:
        if not stop.done():
            stop.set_result(None)

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, _request_stop)
    await stop
    print("gateway draining", flush=True)
    await server.stop()
    print("gateway drained", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = args.telemetry
    if spec is None:
        spec = os.environ.get(telemetry.TELEMETRY_ENV) or "mem"
    if spec and spec != "off":
        telemetry.configure(spec)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    sys.exit(main())
