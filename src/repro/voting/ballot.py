"""Ballot formation, signing and verification.

A Votegral ballot consists of:

* an exponential-ElGamal encryption of the chosen candidate index under the
  authority's collective public key;
* a disjunctive ("OR") Chaum–Pedersen proof that the ciphertext encrypts one
  of the valid candidate indices (ballot well-formedness), so a compromised
  client cannot smuggle, say, 2^64 votes for a candidate into a homomorphic
  aggregate or stall the tally with garbage;
* a Schnorr signature over the ciphertext by the credential key pair the
  ballot is cast with, plus a proof of knowledge of that key, which is what
  ties the ballot to a (real or fake) registration-issued credential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.crypto.dlog_proof import DlogProof, prove_dlog
from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.crypto.hashing import scalar_bytes, sha256
from repro.crypto.schnorr import SchnorrSignature, SigningKeyPair, schnorr_sign
from repro.errors import VerificationError
from repro.ledger.bulletin_board import BallotRecord


@dataclass(frozen=True)
class BallotProof:
    """A disjunctive proof that the ballot encrypts one of ``num_options`` values.

    Standard OR-composition of Chaum–Pedersen proofs: for the real option the
    prover runs the honest protocol, for every other option it runs the
    simulator, and the per-option challenges must sum to the Fiat–Shamir
    challenge of the whole statement.
    """

    commitments_g: List[GroupElement]
    commitments_h: List[GroupElement]
    challenges: List[int]
    responses: List[int]

    def to_bytes(self) -> bytes:
        parts = [e.to_bytes() for e in self.commitments_g + self.commitments_h]
        parts += [scalar_bytes(c) for c in self.challenges]
        parts += [scalar_bytes(r) for r in self.responses]
        return sha256(b"ballot-proof", *parts)


@dataclass(frozen=True)
class Ballot:
    """A complete ballot ready to post on ``L_V``."""

    ciphertext: ElGamalCiphertext
    credential_public_key: GroupElement
    signature: SchnorrSignature
    wellformedness: BallotProof
    key_proof: DlogProof
    election_id: str = "default"

    def signed_message(self) -> bytes:
        return sha256(
            b"ballot",
            self.election_id.encode(),
            self.ciphertext.to_bytes(),
            self.credential_public_key.to_bytes(),
        )

    def to_record(self) -> BallotRecord:
        return BallotRecord(
            credential_public_key=self.credential_public_key,
            ciphertext_c1=self.ciphertext.c1,
            ciphertext_c2=self.ciphertext.c2,
            signature=self.signature,
            election_id=self.election_id,
        )


def _or_proof_challenge(
    group: Group,
    ciphertext: ElGamalCiphertext,
    public_key: GroupElement,
    commitments_g: Sequence[GroupElement],
    commitments_h: Sequence[GroupElement],
) -> int:
    return group.hash_to_scalar(
        b"ballot-or-proof",
        ciphertext.to_bytes(),
        public_key.to_bytes(),
        *[c.to_bytes() for c in commitments_g],
        *[c.to_bytes() for c in commitments_h],
    )


def prove_wellformedness(
    group: Group,
    public_key: GroupElement,
    ciphertext: ElGamalCiphertext,
    choice: int,
    randomness: int,
    num_options: int,
) -> BallotProof:
    """Prove that ``ciphertext`` encrypts ``g^m`` for some ``m`` in [0, num_options)."""
    if not 0 <= choice < num_options:
        raise ValueError("choice outside the candidate range")
    order = group.order
    commitments_g: List[Optional[GroupElement]] = [None] * num_options
    commitments_h: List[Optional[GroupElement]] = [None] * num_options
    challenges: List[Optional[int]] = [None] * num_options
    responses: List[Optional[int]] = [None] * num_options

    # Simulated branches for every option except the real one.
    for option in range(num_options):
        if option == choice:
            continue
        challenge = group.random_scalar()
        response = group.random_scalar()
        target = ciphertext.c2 * group.encode_int(option).inverse()
        commitments_g[option] = (group.generator ** response) * (ciphertext.c1 ** challenge)
        commitments_h[option] = (public_key ** response) * (target ** challenge)
        challenges[option] = challenge
        responses[option] = response

    # Honest branch for the real choice.
    nonce = group.random_scalar()
    commitments_g[choice] = group.generator ** nonce
    commitments_h[choice] = public_key ** nonce

    total = _or_proof_challenge(group, ciphertext, public_key, commitments_g, commitments_h)
    used = sum(challenges[o] for o in range(num_options) if o != choice) % order
    challenges[choice] = (total - used) % order
    responses[choice] = (nonce - challenges[choice] * randomness) % order

    return BallotProof(
        commitments_g=list(commitments_g),
        commitments_h=list(commitments_h),
        challenges=list(challenges),
        responses=list(responses),
    )


def wellformedness_ok(
    group: Group,
    public_key: GroupElement,
    ciphertext: ElGamalCiphertext,
    proof: BallotProof,
    num_options: int,
) -> bool:
    """The reference well-formedness predicate (the audit ``wellformedness`` kind)."""
    if (
        len(proof.commitments_g) != num_options
        or len(proof.commitments_h) != num_options
        or len(proof.challenges) != num_options
        or len(proof.responses) != num_options
    ):
        return False
    total = _or_proof_challenge(group, ciphertext, public_key, proof.commitments_g, proof.commitments_h)
    if sum(proof.challenges) % group.order != total:
        return False
    for option in range(num_options):
        challenge = proof.challenges[option]
        response = proof.responses[option]
        target = ciphertext.c2 * group.encode_int(option).inverse()
        lhs_g = (group.generator ** response) * (ciphertext.c1 ** challenge)
        lhs_h = (public_key ** response) * (target ** challenge)
        if lhs_g != proof.commitments_g[option] or lhs_h != proof.commitments_h[option]:
            return False
    return True


def verify_wellformedness(
    group: Group,
    public_key: GroupElement,
    ciphertext: ElGamalCiphertext,
    proof: BallotProof,
    num_options: int,
) -> bool:
    """Verify the disjunctive well-formedness proof (bool shim over the audit API)."""
    from repro.audit.api import Check, AuditPlan, EagerVerifier

    plan = AuditPlan(
        [Check("wellformedness", "ballot.wellformedness", (group, public_key, ciphertext, proof, num_options))]
    )
    return EagerVerifier().run(plan).ok


def make_ballot(
    group: Group,
    authority_public_key: GroupElement,
    credential: SigningKeyPair,
    choice: int,
    num_options: int,
    election_id: str = "default",
) -> Ballot:
    """Form, prove and sign a ballot for ``choice``."""
    elgamal = ElGamal(group)
    randomness = group.random_scalar()
    ciphertext = elgamal.encrypt_int(authority_public_key, choice, randomness)
    wellformedness = prove_wellformedness(
        group, authority_public_key, ciphertext, choice, randomness, num_options
    )
    key_proof = prove_dlog(group.generator, credential.secret, context=b"ballot-credential-key")
    ballot = Ballot(
        ciphertext=ciphertext,
        credential_public_key=credential.public,
        signature=SchnorrSignature(group.identity, 0),  # placeholder replaced below
        wellformedness=wellformedness,
        key_proof=key_proof,
        election_id=election_id,
    )
    signature = schnorr_sign(credential, ballot.signed_message())
    return Ballot(
        ciphertext=ciphertext,
        credential_public_key=credential.public,
        signature=signature,
        wellformedness=wellformedness,
        key_proof=key_proof,
        election_id=election_id,
    )


def audit_ballot(
    group: Group,
    authority_public_key: GroupElement,
    ballot: Ballot,
    num_options: int,
    label: str = "ballot",
):
    """Audit one ballot; the report names which component failed.

    Four checks — Schnorr signature, credential-key binding, the dlog proof
    of key knowledge, and disjunctive well-formedness — each an independent
    :class:`~repro.audit.api.Check`, so batches of ballots fold their
    signatures and key proofs into RLC equations under the batched strategy.
    """
    from repro.audit.api import AuditPlan, EagerVerifier
    from repro.audit.checks import ballot_checks

    plan = AuditPlan(ballot_checks(group, authority_public_key, ballot, num_options, label=label))
    return EagerVerifier().run(plan)


def verify_ballot(
    group: Group,
    authority_public_key: GroupElement,
    ballot: Ballot,
    num_options: int,
) -> bool:
    """Publicly verify a ballot (bool shim over the audit API)."""
    return audit_ballot(group, authority_public_key, ballot, num_options).ok


def assert_valid_ballot(group: Group, authority_public_key: GroupElement, ballot: Ballot, num_options: int) -> None:
    if not verify_ballot(group, authority_public_key, ballot, num_options):
        raise VerificationError("ballot failed verification")
