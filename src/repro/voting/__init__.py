"""The Votegral voting phase: ballot formation and casting.

A voter's device casts a ballot by encrypting the chosen option under the
election authority's collective key, signing the ciphertext with a credential
key pair (real or fake), attaching a proof of ballot well-formedness, and
posting the result to the ballot ledger ``L_V``.  Ballots cast with fake
credentials look identical on the ledger and are silently discarded during
tallying.
"""

from repro.voting.ballot import Ballot, BallotProof, make_ballot, verify_ballot
from repro.voting.client import VotingClient

__all__ = ["Ballot", "BallotProof", "make_ballot", "verify_ballot", "VotingClient"]
