"""The voting client running on a voter's device.

The client holds activated credentials (real and fake), forms ballots with
:func:`repro.voting.ballot.make_ballot`, posts them to the ballot ledger, and
keeps the optional voting-history record discussed in §4.5 / Appendix C.1
(viewing past votes does not break coercion resistance because the history of
a fake credential is itself fake).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.group import Group, GroupElement
from repro.crypto.schnorr import SigningKeyPair
from repro.errors import ProtocolError
from repro.ledger.bulletin_board import BulletinBoard
from repro.registration.materials import ActivatedCredential
from repro.voting.ballot import Ballot, make_ballot


@dataclass(frozen=True)
class VotingHistoryEntry:
    """One remembered vote (credential fingerprint, election, choice).

    ``ledger_seq`` is the sequence number the ballot ledger assigned to the
    cast ballot — the client-side receipt that lets the device later locate
    its ballot with a single cursor read (``read_ballots(since=seq, limit=1)``)
    instead of scanning the ledger.
    """

    election_id: str
    credential_public_key: GroupElement
    choice: int
    was_real_credential: bool
    ledger_seq: int = -1


@dataclass
class VotingClient:
    """A voter's device during the voting phase."""

    group: Group
    board: BulletinBoard
    authority_public_key: GroupElement
    credentials: List[ActivatedCredential] = field(default_factory=list)
    history: List[VotingHistoryEntry] = field(default_factory=list)

    def add_credential(self, credential: ActivatedCredential) -> None:
        self.credentials.append(credential)

    def real_credential(self) -> ActivatedCredential:
        for credential in self.credentials:
            if credential.is_real:
                return credential
        raise ProtocolError("no real credential is activated on this device")

    def fake_credentials(self) -> List[ActivatedCredential]:
        return [c for c in self.credentials if not c.is_real]

    # Casting --------------------------------------------------------------------

    def cast(
        self,
        choice: int,
        num_options: int,
        credential: Optional[ActivatedCredential] = None,
        election_id: str = "default",
    ) -> Ballot:
        """Cast a ballot with the given credential (default: the real one)."""
        credential = credential if credential is not None else self.real_credential()
        keypair = SigningKeyPair(secret=credential.secret_key, public=credential.public_key)
        ballot = make_ballot(
            self.group,
            self.authority_public_key,
            keypair,
            choice,
            num_options,
            election_id=election_id,
        )
        seq = self.board.post_ballot(ballot.to_record())
        self.history.append(
            VotingHistoryEntry(
                election_id=election_id,
                credential_public_key=credential.public_key,
                choice=choice,
                was_real_credential=credential.is_real,
                ledger_seq=seq,
            )
        )
        return ballot

    def cast_real(self, choice: int, num_options: int, election_id: str = "default") -> Ballot:
        """Cast the voter's intended (counting) vote."""
        return self.cast(choice, num_options, credential=self.real_credential(), election_id=election_id)

    def cast_fake(
        self,
        choice: int,
        num_options: int,
        index: int = 0,
        election_id: str = "default",
    ) -> Ballot:
        """Cast a decoy vote under a coercer's supervision."""
        fakes = self.fake_credentials()
        if not fakes:
            raise ProtocolError("no fake credential is activated on this device")
        return self.cast(choice, num_options, credential=fakes[index % len(fakes)], election_id=election_id)

    # History (§4.5 extension) ------------------------------------------------------

    def voting_history(self, election_id: Optional[str] = None) -> List[VotingHistoryEntry]:
        if election_id is None:
            return list(self.history)
        return [entry for entry in self.history if entry.election_id == election_id]
