"""The envelope printer actor.

Envelope printers issue the pre-printed envelopes voters use to supply ZKP
challenges (Fig. 7, line 5).  Each envelope carries a fresh random challenge
``e``, the printer's public key and a signature on ``H(e)``; the printer also
publishes ``(P_pk, H(e), σ_p)`` on the envelope ledger so activation-time
checks can detect duplicated or unregistered envelopes (Appendix F.3.5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.group import Group
from repro.crypto.hashing import scalar_bytes, sha256
from repro.crypto.schnorr import SigningKeyPair, schnorr_sign
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import EnvelopeCommitmentRecord
from repro.registration.materials import Envelope, EnvelopeSymbol


@dataclass
class EnvelopePrinter:
    """Prints envelopes and commits their challenge hashes to the ledger."""

    group: Group
    keypair: SigningKeyPair
    board: BulletinBoard
    _serial: itertools.count = field(default_factory=lambda: itertools.count(1))

    def print_envelopes(self, count: int, symbols: Optional[List[EnvelopeSymbol]] = None) -> List[Envelope]:
        """Print ``count`` fresh envelopes, publishing each commitment."""
        envelopes = []
        for index in range(count):
            symbol = symbols[index] if symbols is not None else EnvelopeSymbol.random()
            envelopes.append(self._print_one(symbol))
        return envelopes

    def _print_one(self, symbol: EnvelopeSymbol, challenge: Optional[int] = None) -> Envelope:
        challenge = challenge if challenge is not None else self.group.random_scalar()
        challenge_hash = sha256(b"envelope-challenge", scalar_bytes(challenge))
        signature = schnorr_sign(self.keypair, challenge_hash)
        envelope = Envelope(
            symbol=symbol,
            challenge=challenge,
            printer_public_key=self.keypair.public,
            printer_signature=signature,
            serial=next(self._serial),
        )
        self.board.post_envelope_commitment(
            EnvelopeCommitmentRecord(
                printer_public_key=self.keypair.public,
                challenge_hash=envelope.challenge_hash,
                printer_signature=signature,
            )
        )
        return envelope

    # Adversarial variant ---------------------------------------------------------

    def print_duplicate_envelopes(
        self,
        count: int,
        challenge: Optional[int] = None,
        symbols: Optional[List[EnvelopeSymbol]] = None,
    ) -> List[Envelope]:
        """Print ``count`` envelopes that all carry the *same* challenge.

        This is the envelope-stuffing attack of the individual-verifiability
        game (Appendix F.3): a compromised printer/registrar duplicates
        challenges to make the voter's pick predictable.  The commitments still
        go to the ledger (each hash only once would be suspicious, so the
        attacker posts them all); activation-time duplicate detection is what
        catches the attack when several of the duplicates get used.  A thorough
        attacker stuffs one duplicate per symbol (``symbols``) so the voter is
        guaranteed to find a match whatever the kiosk prints.
        """
        challenge = challenge if challenge is not None else self.group.random_scalar()
        return [
            self._print_one(symbols[index] if symbols else EnvelopeSymbol.random(), challenge=challenge)
            for index in range(count)
        ]
