"""The voter supporting device (VSD): credential activation and monitoring.

Activation (Fig. 11) scans the three QR codes visible in the activate state
and re-verifies everything the voter could not check in the booth:

1. the kiosk's signatures on the commit and response codes;
2. the envelope printer's signature on the challenge;
3. the Chaum–Pedersen verification equations (``Y1 = g^r·C1^e``,
   ``Y2 = A^r·X^e`` with ``X = C2/c_pk``);
4. that the public credential on the receipt matches the voter's active
   registration record on the ledger, produced by the same kiosk;
5. that the envelope challenge has not been used before (duplicate-envelope
   detection), publishing it on ``L_E`` afterwards.

The VSD also monitors the registration ledger and notifies the voter of any
registration event for their identity — the impersonation defence of
Appendix J.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.chaum_pedersen import (
    ChaumPedersenStatement,
    ChaumPedersenTranscript,
    chaum_pedersen_verify,
)
from repro.crypto.group import Group, GroupElement
from repro.crypto.schnorr import schnorr_verify
from repro.errors import LedgerError, VerificationError
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import EnvelopeUsageRecord
from repro.peripherals.clock import Component, LatencyLedger
from repro.peripherals.hardware import HardwareProfile, hardware_profile
from repro.peripherals.scanner import CodeScanner
from repro.registration.materials import (
    ActivatedCredential,
    CommitCode,
    Envelope,
    PaperCredential,
    ResponseCode,
    commit_message,
    response_message,
)


@dataclass(frozen=True)
class ActivationReport:
    """The outcome of an activation attempt, with the specific check that failed."""

    success: bool
    failed_check: str = ""
    credential: Optional[ActivatedCredential] = None


@dataclass
class VoterSupportingDevice:
    """A voter's (or a trusted friend's) device."""

    group: Group
    board: BulletinBoard
    voter_id: str
    kiosk_public_keys: List[GroupElement]
    authority_public_key: GroupElement
    profile: HardwareProfile = field(default_factory=lambda: hardware_profile("H1"))
    latency: LatencyLedger = field(default_factory=LatencyLedger)
    credentials: List[ActivatedCredential] = field(default_factory=list)
    registration_notifications: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._scanner = CodeScanner(profile=self.profile, ledger=self.latency)
        self.board.registration_log.subscribe(self._on_ledger_entry)
        # Catch up on registration events that predate the device coming
        # online (the voter typically activates at home, after check-out).
        existing = self.board.registration_for(self.voter_id)
        if existing is not None:
            self.registration_notifications.append(
                f"registration event recorded for {self.voter_id} (catch-up)"
            )

    # Ledger monitoring ------------------------------------------------------------

    def _on_ledger_entry(self, entry) -> None:
        record = self.board.registration_for(self.voter_id)
        if record is not None and record.payload() == entry.payload:
            self.registration_notifications.append(
                f"registration event recorded for {self.voter_id} (entry {entry.index})"
            )

    @property
    def has_unexpected_registration(self) -> bool:
        """True if more registration events were observed than the voter initiated."""
        return len(self.registration_notifications) > len(
            {n for n in self.registration_notifications}
        )

    # Activation ----------------------------------------------------------------------

    def activate(self, credential: PaperCredential) -> ActivationReport:
        """Scan and verify a paper credential in the activate state (Fig. 11)."""
        with self.latency.phase("Activation"):
            qrs = credential.lift_for_activation().visible_activation_qrs(self.group)
            scanned = [self._scanner.scan(qr, label=qr.label) for qr in qrs]
            with self.latency.measure(Component.CRYPTO, label="activate", cpu_scale=self.profile.crypto_scale()):
                commit_code = CommitCode.from_qr(scanned[0], self.group)
                response_code = ResponseCode.from_qr(scanned[1], self.group)
                envelope = Envelope.from_qr(scanned[2], self.group)
                report = self._verify(credential, commit_code, response_code, envelope)
        if report.success and report.credential is not None:
            self.credentials.append(report.credential)
        return report

    def _verify(
        self,
        credential: PaperCredential,
        commit_code: CommitCode,
        response_code: ResponseCode,
        envelope: Envelope,
    ) -> ActivationReport:
        group = self.group
        credential_public = group.power(response_code.credential_secret)

        # (1) Receipt integrity: kiosk signatures on commit and response codes.
        if response_code.kiosk_public_key not in self.kiosk_public_keys:
            return ActivationReport(False, "kiosk key not authorized")
        if not schnorr_verify(
            response_code.kiosk_public_key,
            commit_message(commit_code.voter_id, commit_code.public_credential, commit_code.commit),
            commit_code.kiosk_signature,
        ):
            return ActivationReport(False, "kiosk signature on commit code invalid")
        if not schnorr_verify(
            response_code.kiosk_public_key,
            response_message(credential_public, envelope.challenge, response_code.zkp_response),
            response_code.kiosk_signature,
        ):
            return ActivationReport(False, "kiosk signature on response code invalid")

        # (2) Envelope integrity: printer signature on H(e).
        if not schnorr_verify(
            envelope.printer_public_key, envelope.challenge_hash, envelope.printer_signature
        ):
            return ActivationReport(False, "printer signature on envelope invalid")
        if self.board.envelope_commitment(envelope.challenge_hash) is None:
            return ActivationReport(False, "envelope challenge not committed on the ledger")

        # (3) The ZKP transcript verifies.
        statement = ChaumPedersenStatement(
            base_g=group.generator,
            base_h=self.authority_public_key,
            value_g=commit_code.public_credential.c1,
            value_h=commit_code.public_credential.c2 * credential_public.inverse(),
        )
        transcript = ChaumPedersenTranscript(
            statement=statement,
            commit=commit_code.commit,
            challenge=envelope.challenge,
            response=response_code.zkp_response,
        )
        if not chaum_pedersen_verify(transcript):
            return ActivationReport(False, "ZKP transcript failed verification")

        # (4) Ledger cross-check: active registration record matches.
        record = self.board.registration_for(commit_code.voter_id)
        if record is None:
            return ActivationReport(False, "no registration record on the ledger")
        if (
            record.public_credential_c1 != commit_code.public_credential.c1
            or record.public_credential_c2 != commit_code.public_credential.c2
        ):
            return ActivationReport(False, "public credential does not match the ledger record")
        if record.kiosk_public_key != response_code.kiosk_public_key:
            return ActivationReport(False, "kiosk key does not match the ledger record")
        if commit_code.voter_id != self.voter_id:
            return ActivationReport(False, "credential was issued to a different voter identity")

        # (5) Challenge freshness: publish the used challenge, detecting duplicates.
        try:
            self.board.post_envelope_usage(
                EnvelopeUsageRecord(challenge=envelope.challenge, challenge_hash=envelope.challenge_hash)
            )
        except LedgerError:
            return ActivationReport(False, "envelope challenge already used (possible duplicate envelopes)")

        activated = ActivatedCredential(
            voter_id=commit_code.voter_id,
            secret_key=response_code.credential_secret,
            public_key=credential_public,
            public_credential=commit_code.public_credential,
            transcript=transcript,
            kiosk_public_key=response_code.kiosk_public_key,
            is_real=credential.is_real,
        )
        return ActivationReport(True, credential=activated)

    # Convenience --------------------------------------------------------------------

    def real_credentials(self) -> List[ActivatedCredential]:
        return [c for c in self.credentials if c.is_real]

    def activate_or_raise(self, credential: PaperCredential) -> ActivatedCredential:
        report = self.activate(credential)
        if not report.success or report.credential is None:
            raise VerificationError(f"activation failed: {report.failed_check}")
        return report.credential
