"""The registration official and their official supporting device (OSD).

The official performs two tasks (Fig. 8 and Fig. 10):

* **Check-in** — after authenticating the voter against the electoral roll,
  the OSD issues a check-in ticket ``t_in = (V_id, τ_r)`` where ``τ_r`` is a
  MAC over the voter identity under the key shared with the kiosks.
* **Check-out** — the official scans the check-out QR visible through the
  envelope window, verifies the kiosk's signature and authorization, signs
  the record and posts it to the registration ledger.  The voter's device is
  subsequently notified of the registration event (impersonation defence,
  Appendix J).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.crypto.group import Group, GroupElement
from repro.crypto.hashing import sha256
from repro.crypto.mac import mac_sign
from repro.crypto.schnorr import SigningKeyPair, schnorr_sign, schnorr_verify
from repro.errors import RegistrationError
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import RegistrationRecord
from repro.peripherals.clock import Component, LatencyLedger
from repro.peripherals.hardware import HardwareProfile, hardware_profile
from repro.peripherals.scanner import CodeScanner
from repro.registration.materials import CheckInTicket, CheckOutTicket, PaperCredential


def check_out_ticket_message(record: RegistrationRecord) -> bytes:
    """The bytes the kiosk signed for this record's check-out ticket."""
    from repro.crypto.elgamal import ElGamalCiphertext

    return sha256(
        b"check-out-ticket",
        record.voter_id.encode(),
        ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2).to_bytes(),
    )


def official_approval_message(record: RegistrationRecord) -> bytes:
    """The bytes the official signed when approving this record."""
    from repro.crypto.elgamal import ElGamalCiphertext

    return sha256(
        b"official-approval",
        record.voter_id.encode(),
        ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2).to_bytes(),
        record.kiosk_signature.to_bytes(),
    )


@dataclass
class RegistrationOfficial:
    """A registration official with their OSD."""

    group: Group
    keypair: SigningKeyPair
    shared_mac_key: bytes
    board: BulletinBoard
    kiosk_public_keys: List[GroupElement]
    profile: HardwareProfile = field(default_factory=lambda: hardware_profile("H1"))
    latency: LatencyLedger = field(default_factory=LatencyLedger)
    issued_tickets: List[CheckInTicket] = field(default_factory=list)
    notifications: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._scanner = CodeScanner(profile=self.profile, ledger=self.latency)

    # Check-in -------------------------------------------------------------------

    def check_in(self, voter_id: str) -> CheckInTicket:
        """Verify eligibility and issue the check-in ticket (Fig. 8)."""
        with self.latency.phase("CheckIn"):
            with self.latency.measure(Component.CRYPTO, label="check-in", cpu_scale=self.profile.crypto_scale()):
                if not self.board.is_eligible(voter_id):
                    raise RegistrationError(f"voter {voter_id!r} is not on the electoral roll")
                tag = mac_sign(self.shared_mac_key, voter_id.encode(), length=16)
                ticket = CheckInTicket(voter_id=voter_id, mac_tag=tag)
            # Printing the barcode ticket.
            render_cpu = self.profile.print_cpu_seconds(3)
            self.latency.record(
                Component.QR_PRINT,
                wall_seconds=self.profile.print_seconds(3) + render_cpu,
                cpu_user_seconds=render_cpu,
                label="check-in ticket",
            )
        self.issued_tickets.append(ticket)
        return ticket

    # Check-out -------------------------------------------------------------------

    def check_out(self, credential: PaperCredential) -> RegistrationRecord:
        """Scan the presented credential and post the registration record (Fig. 10)."""
        with self.latency.phase("CheckOut"):
            qr = credential.visible_check_out_qr(self.group)
            scanned = self._scanner.scan(qr, label="check-out ticket")
            with self.latency.measure(Component.CRYPTO, label="check-out", cpu_scale=self.profile.crypto_scale()):
                ticket = CheckOutTicket.from_qr(scanned, self.group)
                record = self._verify_and_record(ticket)
        self._notify(ticket.voter_id)
        return record

    def check_out_ticket(self, ticket: CheckOutTicket) -> RegistrationRecord:
        """Check-out from an already-decoded ticket (used by the security games)."""
        with self.latency.phase("CheckOut"):
            with self.latency.measure(Component.CRYPTO, label="check-out", cpu_scale=self.profile.crypto_scale()):
                record = self._verify_and_record(ticket)
        self._notify(ticket.voter_id)
        return record

    def _verify_and_record(self, ticket: CheckOutTicket) -> RegistrationRecord:
        if ticket.kiosk_public_key not in self.kiosk_public_keys:
            raise RegistrationError("check-out ticket was not produced by an authorized kiosk")
        if not schnorr_verify(ticket.kiosk_public_key, ticket.signed_message(), ticket.kiosk_signature):
            raise RegistrationError("invalid kiosk signature on the check-out ticket")
        if not self.board.is_eligible(ticket.voter_id):
            raise RegistrationError(f"voter {ticket.voter_id!r} is not on the electoral roll")

        approval_message = sha256(
            b"official-approval",
            ticket.voter_id.encode(),
            ticket.public_credential.to_bytes(),
            ticket.kiosk_signature.to_bytes(),
        )
        official_signature = schnorr_sign(self.keypair, approval_message)
        record = RegistrationRecord(
            voter_id=ticket.voter_id,
            public_credential_c1=ticket.public_credential.c1,
            public_credential_c2=ticket.public_credential.c2,
            kiosk_public_key=ticket.kiosk_public_key,
            kiosk_signature=ticket.kiosk_signature,
            official_public_key=self.keypair.public,
            official_signature=official_signature,
        )
        self.board.post_registration(record)
        return record

    def _notify(self, voter_id: str) -> None:
        """Notify the voter of the registration event (Appendix J)."""
        self.notifications.append(voter_id)

    # Auditing ---------------------------------------------------------------------

    @staticmethod
    def audit_record(record: RegistrationRecord, kiosk_public_keys: List[GroupElement]):
        """Audit one registration record; the report names the failing predicate.

        Three checks — kiosk authorization, kiosk signature, official
        signature — each reported with a locus like
        ``registration[voter-0042].kiosk-signature`` instead of collapsing
        to an opaque ``False``.
        """
        from repro.audit.api import AuditPlan, EagerVerifier
        from repro.audit.checks import registration_record_checks

        plan = AuditPlan(registration_record_checks(record, kiosk_public_keys))
        return EagerVerifier().run(plan)

    @staticmethod
    def verify_record(record: RegistrationRecord, kiosk_public_keys: List[GroupElement]) -> bool:
        """Public verification of a registration record (bool shim over audit)."""
        return RegistrationOfficial.audit_record(record, kiosk_public_keys).ok
