"""TRIP — the paper's registration protocol (the core contribution).

The registration workflow (§3.2, Appendix E) walks a voter through:

1. **Check-in** — an official verifies eligibility and issues a barcode
   check-in ticket authorized with a MAC under a key shared with the kiosks.
2. **Privacy booth** — the voter interacts with the kiosk:

   * **real credential** (4 steps, *sound* Σ-protocol order): scan ticket →
     kiosk prints the commit QR with a random symbol → voter picks an
     envelope with the matching symbol and scans its challenge QR → kiosk
     prints the check-out and response QRs;
   * **fake credentials** (2 steps, *unsound* order): the voter scans an
     envelope first, then the kiosk prints the whole receipt using the
     honest-verifier simulator.

3. **Check-out** — the official scans the check-out QR through the
   envelope's window and posts the registration record to the ledger.
4. **Activation** — at home, the voter's device (VSD) scans the three
   activation QRs, re-verifies every signature and the ZKP transcript,
   cross-checks the ledger and stores the credential's secret key.

The modules mirror the actors: :mod:`repro.registration.kiosk`,
:mod:`repro.registration.official`, :mod:`repro.registration.envelope_printer`,
:mod:`repro.registration.vsd`, :mod:`repro.registration.voter`, with the
physical artefacts in :mod:`repro.registration.materials` and the end-to-end
orchestration in :mod:`repro.registration.protocol`.
"""

from repro.registration.materials import (
    Envelope,
    EnvelopeSymbol,
    CheckInTicket,
    CommitCode,
    CheckOutTicket,
    ResponseCode,
    Receipt,
    PaperCredential,
    CredentialState,
    ActivatedCredential,
)
from repro.registration.setup import ElectionSetup, RegistrarKeys
from repro.registration.kiosk import Kiosk
from repro.registration.official import RegistrationOfficial
from repro.registration.envelope_printer import EnvelopePrinter
from repro.registration.vsd import VoterSupportingDevice, ActivationReport
from repro.registration.voter import Voter
from repro.registration.protocol import RegistrationSession, RegistrationOutcome, run_registration

__all__ = [
    "Envelope",
    "EnvelopeSymbol",
    "CheckInTicket",
    "CommitCode",
    "CheckOutTicket",
    "ResponseCode",
    "Receipt",
    "PaperCredential",
    "CredentialState",
    "ActivatedCredential",
    "ElectionSetup",
    "RegistrarKeys",
    "Kiosk",
    "RegistrationOfficial",
    "EnvelopePrinter",
    "VoterSupportingDevice",
    "ActivationReport",
    "Voter",
    "RegistrationSession",
    "RegistrationOutcome",
    "run_registration",
]
