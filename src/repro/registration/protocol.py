"""End-to-end TRIP registration orchestration (Fig. 1 / Fig. 6).

:func:`run_registration` walks one voter through the complete workflow —
check-in, kiosk authorization, real-credential creation, any number of
fake-credential creations, check-out and activation — wiring together the
actor objects and collecting the per-phase latency decomposition that the
Figure 4 benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.group import Group
from repro.errors import ProtocolError
from repro.ledger.records import RegistrationRecord
from repro.peripherals.clock import LatencyLedger
from repro.peripherals.hardware import HardwareProfile, hardware_profile
from repro.registration.kiosk import Kiosk, KioskSession
from repro.registration.materials import Envelope
from repro.registration.official import RegistrationOfficial
from repro.registration.setup import ElectionSetup
from repro.registration.vsd import ActivationReport, VoterSupportingDevice
from repro.registration.voter import Voter


@dataclass
class RegistrationOutcome:
    """Everything produced by one voter's registration session."""

    voter: Voter
    session: KioskSession
    record: RegistrationRecord
    activation_reports: List[ActivationReport]
    vsd: VoterSupportingDevice
    latency: LatencyLedger

    @property
    def all_activated(self) -> bool:
        return all(report.success for report in self.activation_reports)

    @property
    def real_activated(self) -> bool:
        return any(
            report.success and report.credential is not None and report.credential.is_real
            for report in self.activation_reports
        )

    @property
    def total_wall_seconds(self) -> float:
        return self.latency.total_wall_seconds()


@dataclass
class RegistrationSession:
    """A reusable driver binding one kiosk, one official and one booth supply."""

    setup: ElectionSetup
    profile: HardwareProfile = field(default_factory=lambda: hardware_profile("H1"))
    kiosk: Optional[Kiosk] = None
    official: Optional[RegistrationOfficial] = None
    booth_envelopes: List[Envelope] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kiosk is None:
            self.kiosk = Kiosk(
                group=self.setup.group,
                keypair=self.setup.registrar.kiosk_keys[0],
                authority_public_key=self.setup.authority_public_key,
                shared_mac_key=self.setup.registrar.shared_mac_key,
                profile=self.profile,
            )
        if self.official is None:
            self.official = RegistrationOfficial(
                group=self.setup.group,
                keypair=self.setup.registrar.official_keys[0],
                shared_mac_key=self.setup.registrar.shared_mac_key,
                board=self.setup.board,
                kiosk_public_keys=self.setup.registrar.kiosk_public_keys,
                profile=self.profile,
            )
        if not self.booth_envelopes:
            self.restock_booth(self.setup.min_envelopes_per_booth)

    @property
    def group(self) -> Group:
        return self.setup.group

    def restock_booth(self, count: int) -> None:
        """Move envelopes from the central supply into this booth."""
        needed = max(0, count - len(self.booth_envelopes))
        if needed == 0:
            return
        if len(self.setup.envelope_supply) < needed:
            self.setup.restock_envelopes(needed - len(self.setup.envelope_supply) + 10)
        self.booth_envelopes.extend(self.setup.take_envelopes(needed))

    def _consume_envelope(self, envelope: Envelope) -> None:
        self.booth_envelopes.remove(envelope)

    # ------------------------------------------------------------------ main flow

    def register(
        self,
        voter: Voter,
        activate: bool = True,
        vsd_profile: Optional[HardwareProfile] = None,
    ) -> RegistrationOutcome:
        """Run the complete registration workflow for ``voter``."""
        # Keep the booth at its minimum stock (λ_E in the paper): enough that a
        # coerced voter cannot count envelopes, and enough that every symbol is
        # almost surely represented.
        self.restock_booth(voter.num_fake_credentials + self.setup.min_envelopes_per_booth)

        # Snapshot the actors' latency ledgers so a reused session only
        # attributes this voter's spans to this outcome.
        official_span_start = len(self.official.latency.spans)
        kiosk_span_start = len(self.kiosk.latency.spans)

        # 1. Check-in at the official's desk.
        ticket = self.official.check_in(voter.voter_id)
        voter.check_in_ticket = ticket

        # 2. Privacy booth: authorize the session.
        session = self.kiosk.authorize(ticket)

        # 3. Real credential (sound order).
        self.kiosk.begin_real_credential(session)
        try:
            real_envelope = voter.pick_envelope(self.booth_envelopes, symbol=session.pending_symbol)
        except ProtocolError:
            # No envelope with the printed symbol left in the booth: an
            # official tops up the supply and the voter tries again.
            self.restock_booth(len(self.booth_envelopes) + 2 * self.setup.min_envelopes_per_booth)
            real_envelope = voter.pick_envelope(self.booth_envelopes, symbol=session.pending_symbol)
        receipt = self.kiosk.complete_real_credential(session, real_envelope)
        self._consume_envelope(real_envelope)
        voter.assemble_credential(
            receipt,
            real_envelope,
            is_real=True,
            observed_sound_order=session.real_sigma.is_sound_order,
        )

        # 4. Fake credentials (unsound order), as many as the voter wants.
        for index in range(voter.num_fake_credentials):
            fake_envelope = voter.pick_envelope(self.booth_envelopes)
            fake_receipt = self.kiosk.create_fake_credential(session, fake_envelope)
            self._consume_envelope(fake_envelope)
            voter.assemble_credential(
                fake_receipt,
                fake_envelope,
                is_real=False,
                observed_sound_order=session.fake_sigmas[index].is_sound_order,
            )

        # 5. Check-out with any one credential.
        record = self.official.check_out(voter.credential_for_check_out())

        # 6. Activation on the voter's device.
        vsd = VoterSupportingDevice(
            group=self.group,
            board=self.setup.board,
            voter_id=voter.voter_id,
            kiosk_public_keys=self.setup.registrar.kiosk_public_keys,
            authority_public_key=self.setup.authority_public_key,
            profile=vsd_profile or self.profile,
        )
        reports: List[ActivationReport] = []
        if activate:
            for credential in voter.credentials:
                reports.append(vsd.activate(credential))

        latency = LatencyLedger()
        latency.spans.extend(self.official.latency.spans[official_span_start:])
        latency.spans.extend(self.kiosk.latency.spans[kiosk_span_start:])
        latency.merge(vsd.latency)

        return RegistrationOutcome(
            voter=voter,
            session=session,
            record=record,
            activation_reports=reports,
            vsd=vsd,
            latency=latency,
        )


def run_registration(
    setup: ElectionSetup,
    voter: Voter,
    profile_key: str = "H1",
    activate: bool = True,
) -> RegistrationOutcome:
    """Convenience wrapper: register one voter on a given hardware profile."""
    session = RegistrationSession(setup=setup, profile=hardware_profile(profile_key))
    return session.register(voter, activate=activate)
