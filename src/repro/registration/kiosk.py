"""The privacy-booth kiosk — issues real and fake credentials (Appendix E.4/E.5).

The kiosk is the only registrar component a voter directly interacts with.
For a **real** credential it follows the sound Σ-protocol order:

1. authorize the session from the check-in ticket's MAC;
2. generate the credential key pair, encrypt its public key under the
   authority key to form the public credential tag ``c_pc``, compute the
   Chaum–Pedersen *commit*, pick a random envelope symbol and print the
   commit QR;
3. only then accept an envelope (with the matching symbol) whose QR supplies
   the *challenge*;
4. compute the *response*, and print the check-out and response QRs.

For a **fake** credential the kiosk accepts the envelope first and runs the
honest-verifier simulator, printing the whole receipt in one go.  The printed
artefacts are cryptographically indistinguishable; only the order of steps —
which the voter observes — differs.

All peripheral interactions are routed through the simulated printer and
scanner so the latency ledger captures the Fig. 4 decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.crypto.chaum_pedersen import (
    ChaumPedersenProver,
    ChaumPedersenStatement,
    simulate_chaum_pedersen,
)
from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.crypto.mac import mac_verify
from repro.crypto.schnorr import SigningKeyPair, schnorr_keygen, schnorr_sign
from repro.crypto.sigma import Move, SigmaSession
from repro.errors import ProtocolError, RegistrationError
from repro.peripherals.clock import Component, LatencyLedger
from repro.peripherals.hardware import HardwareProfile, hardware_profile
from repro.peripherals.printer import ReceiptPrinter
from repro.peripherals.scanner import CodeScanner
from repro.registration.materials import (
    CheckInTicket,
    CheckOutTicket,
    CommitCode,
    Envelope,
    EnvelopeSymbol,
    Receipt,
    ResponseCode,
    check_out_message,
    commit_message,
    response_message,
)


@dataclass
class KioskSession:
    """Per-voter state held by the kiosk between check-in and check-out."""

    voter_id: str
    real_secret: Optional[int] = None
    real_public: Optional[GroupElement] = None
    public_credential: Optional[ElGamalCiphertext] = None
    encryption_randomness: Optional[int] = None
    prover: Optional[ChaumPedersenProver] = None
    pending_commit: Optional[CommitCode] = None
    pending_symbol: Optional[EnvelopeSymbol] = None
    check_out_ticket: Optional[CheckOutTicket] = None
    used_challenges: Set[int] = field(default_factory=set)
    real_sigma: SigmaSession = field(default_factory=SigmaSession)
    fake_sigmas: List[SigmaSession] = field(default_factory=list)
    credentials_issued: int = 0

    @property
    def real_credential_issued(self) -> bool:
        return self.check_out_ticket is not None


@dataclass
class Kiosk:
    """An honest TRIP kiosk."""

    group: Group
    keypair: SigningKeyPair
    authority_public_key: GroupElement
    shared_mac_key: bytes
    profile: HardwareProfile = field(default_factory=lambda: hardware_profile("H1"))
    latency: LatencyLedger = field(default_factory=LatencyLedger)

    def __post_init__(self) -> None:
        self.elgamal = ElGamal(self.group)
        self.printer = ReceiptPrinter(profile=self.profile, ledger=self.latency)
        self.scanner = CodeScanner(profile=self.profile, ledger=self.latency)

    # ------------------------------------------------------------------ helpers

    @property
    def public_key(self) -> GroupElement:
        return self.keypair.public

    def _statement(
        self, public_credential: ElGamalCiphertext, credential_public: GroupElement
    ) -> ChaumPedersenStatement:
        """The ZKPoE statement: ``C1 = g^x`` and ``X = A_pk^x`` with ``X = C2 / c_pk``."""
        return ChaumPedersenStatement(
            base_g=self.group.generator,
            base_h=self.authority_public_key,
            value_g=public_credential.c1,
            value_h=public_credential.c2 * credential_public.inverse(),
        )

    # --------------------------------------------------------------- authorization

    def authorize(self, ticket: CheckInTicket) -> KioskSession:
        """Scan and verify the check-in ticket, opening a kiosk session (Fig. 8)."""
        with self.latency.phase("Authorization"):
            scanned_barcode = self.scanner.scan(ticket.to_barcode(), label="check-in ticket")
            with self.latency.measure(Component.CRYPTO, label="authorize", cpu_scale=self.profile.crypto_scale()):
                decoded = CheckInTicket.from_barcode(scanned_barcode)
                if not mac_verify(self.shared_mac_key, decoded.voter_id.encode(), decoded.mac_tag):
                    raise RegistrationError("check-in ticket failed MAC verification")
        return KioskSession(voter_id=decoded.voter_id)

    # --------------------------------------------------------------- real credential

    def begin_real_credential(self, session: KioskSession) -> CommitCode:
        """Steps 1-2 of real-credential creation: generate keys and print the commit."""
        if session.pending_commit is not None:
            raise ProtocolError("a real-credential commit is already pending")
        if session.real_credential_issued:
            raise ProtocolError("the real credential was already issued in this session")
        with self.latency.phase("RealToken"):
            with self.latency.measure(Component.CRYPTO, label="real:commit", cpu_scale=self.profile.crypto_scale()):
                credential = schnorr_keygen(self.group)
                randomness = self.group.random_scalar()
                public_credential = self.elgamal.encrypt(
                    self.authority_public_key, credential.public, randomness
                )
                prover = ChaumPedersenProver(self._statement(public_credential, credential.public), randomness)
                commit = prover.commit()
                commit_code = CommitCode(
                    voter_id=session.voter_id,
                    public_credential=public_credential,
                    commit=commit,
                    kiosk_signature=schnorr_sign(
                        self.keypair, commit_message(session.voter_id, public_credential, commit)
                    ),
                )
                symbol = EnvelopeSymbol.random()

            session.real_secret = credential.secret
            session.real_public = credential.public
            session.public_credential = public_credential
            session.encryption_randomness = randomness
            session.prover = prover
            session.pending_commit = commit_code
            session.pending_symbol = symbol
            session.real_sigma.record(Move.COMMIT)

            self.printer.print_codes(commit_code.to_qr(self.group), text_lines=2, label="real:commit")
        return commit_code

    def complete_real_credential(self, session: KioskSession, envelope: Envelope) -> Receipt:
        """Steps 3-4: accept the envelope's challenge, respond, print the rest."""
        if session.pending_commit is None or session.prover is None:
            raise ProtocolError("no pending commit: the commit must be printed before an envelope is accepted")
        with self.latency.phase("RealToken"):
            scanned = self.scanner.scan(envelope.to_qr(self.group), label="real:envelope")
            with self.latency.measure(Component.CRYPTO, label="real:response", cpu_scale=self.profile.crypto_scale()):
                decoded = Envelope.from_qr(scanned, self.group, serial=envelope.serial)
                if decoded.symbol != session.pending_symbol:
                    raise RegistrationError(
                        "envelope symbol does not match the printed symbol; "
                        "pick an envelope bearing the matching symbol"
                    )
                if decoded.challenge in session.used_challenges:
                    raise RegistrationError("this envelope's challenge was already used in this session")
                session.real_sigma.record(Move.CHALLENGE)
                transcript = session.prover.respond(decoded.challenge)
                session.real_sigma.record(Move.RESPONSE)

                check_out = CheckOutTicket(
                    voter_id=session.voter_id,
                    public_credential=session.public_credential,
                    kiosk_public_key=self.keypair.public,
                    kiosk_signature=schnorr_sign(
                        self.keypair, check_out_message(session.voter_id, session.public_credential)
                    ),
                )
                response_code = ResponseCode(
                    credential_secret=session.real_secret,
                    zkp_response=transcript.response,
                    kiosk_public_key=self.keypair.public,
                    kiosk_signature=schnorr_sign(
                        self.keypair,
                        response_message(session.real_public, decoded.challenge, transcript.response),
                    ),
                )
            self.printer.print_codes(
                check_out.to_qr(self.group),
                response_code.to_qr(self.group),
                text_lines=2,
                label="real:response",
            )

        session.used_challenges.add(decoded.challenge)
        session.check_out_ticket = check_out
        session.credentials_issued += 1
        receipt = Receipt(
            symbol=session.pending_symbol,
            commit_code=session.pending_commit,
            check_out_ticket=check_out,
            response_code=response_code,
        )
        session.pending_commit = None
        session.prover = None
        return receipt

    # --------------------------------------------------------------- fake credential

    def create_fake_credential(self, session: KioskSession, envelope: Envelope) -> Receipt:
        """Issue a fake credential: envelope first, then the whole receipt (Fig. 9b)."""
        if not session.real_credential_issued:
            raise ProtocolError("the real credential must be created before any fake credential")
        sigma = SigmaSession()
        with self.latency.phase("FakeToken"):
            scanned = self.scanner.scan(envelope.to_qr(self.group), label="fake:envelope")
            with self.latency.measure(Component.CRYPTO, label="fake:simulate", cpu_scale=self.profile.crypto_scale()):
                decoded = Envelope.from_qr(scanned, self.group, serial=envelope.serial)
                if decoded.challenge in session.used_challenges:
                    raise RegistrationError("this envelope's challenge was already used in this session")
                sigma.record(Move.CHALLENGE)

                fake_credential = schnorr_keygen(self.group)
                statement = self._statement(session.public_credential, fake_credential.public)
                transcript = simulate_chaum_pedersen(statement, decoded.challenge)
                sigma.record(Move.COMMIT)
                sigma.record(Move.RESPONSE)

                commit_code = CommitCode(
                    voter_id=session.voter_id,
                    public_credential=session.public_credential,
                    commit=transcript.commit,
                    kiosk_signature=schnorr_sign(
                        self.keypair,
                        commit_message(session.voter_id, session.public_credential, transcript.commit),
                    ),
                )
                response_code = ResponseCode(
                    credential_secret=fake_credential.secret,
                    zkp_response=transcript.response,
                    kiosk_public_key=self.keypair.public,
                    kiosk_signature=schnorr_sign(
                        self.keypair,
                        response_message(fake_credential.public, decoded.challenge, transcript.response),
                    ),
                )
            # The entire receipt (commit, check-out, response) prints in one go.
            self.printer.print_codes(
                commit_code.to_qr(self.group),
                session.check_out_ticket.to_qr(self.group),
                response_code.to_qr(self.group),
                text_lines=2,
                label="fake:receipt",
            )

        session.used_challenges.add(decoded.challenge)
        session.fake_sigmas.append(sigma)
        session.credentials_issued += 1
        return Receipt(
            symbol=decoded.symbol,
            commit_code=commit_code,
            check_out_ticket=session.check_out_ticket,
            response_code=response_code,
        )
