"""Optional extensions to the base TRIP design (§4.5, Appendix C).

Three extensions are implemented here; all are optional and none is required
by the base protocol or the benchmarks:

* **Credential rotation** (Appendix C.2, "reducing the credential exposure
  window"): after activation the voter's device generates a fresh key pair
  and signs it with the kiosk-issued credential key.  The signed rotation
  record is published; from then on only ballots cast with the *device* key
  are tallied for that credential, so a thief who copied the paper receipt
  after activation can no longer vote with it, and credentials can be ported
  to a new device by rotating again.
* **In-booth delegation** (Appendix C.3, "resisting extreme coercion"): a
  voter who expects to be searched immediately after registration can ask the
  kiosk to delegate their vote to a well-known entity (e.g. a political
  party): the kiosk encrypts the *party's* public key into the public
  credential tag and the voter leaves the booth holding only fake
  credentials.  The party's ballot then counts once for each delegating
  voter; the voter must trust the kiosk, which the paper accepts as
  unavoidable for this extreme case.
* **Credential renewal** is the base design's re-registration path (a new
  registration record supersedes the old one); :func:`renew_credential` is a
  thin convenience wrapper over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.elgamal import ElGamal
from repro.crypto.group import Group, GroupElement
from repro.crypto.hashing import sha256
from repro.crypto.schnorr import (
    SigningKeyPair,
    schnorr_keygen,
    schnorr_sign,
)
from repro.errors import ProtocolError, VerificationError
from repro.registration.kiosk import Kiosk, KioskSession
from repro.registration.materials import ActivatedCredential, CheckOutTicket, check_out_message
from repro.registration.protocol import RegistrationOutcome, RegistrationSession
from repro.registration.voter import Voter


# ---------------------------------------------------------------------------
# Appendix C.2 — credential rotation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RotationRecord:
    """A signed statement transferring voting rights to a device-held key.

    ``old_public_key`` is the kiosk-issued credential key; ``new_public_key``
    is generated on the voter's device; ``signature`` is produced with the old
    key over both, so anyone can check the hand-over without learning whether
    the old key was real or fake (fake credentials rotate identically, which
    keeps coercion resistance intact).
    """

    old_public_key: GroupElement
    new_public_key: GroupElement
    signature: "object"

    def message(self) -> bytes:
        return sha256(b"credential-rotation", self.old_public_key.to_bytes(), self.new_public_key.to_bytes())


def rotate_credential(group: Group, credential: ActivatedCredential) -> tuple:
    """Generate a device key pair and the rotation record for ``credential``.

    Returns ``(new_keypair, record)``.  The caller publishes the record (e.g.
    on the ledger) and uses the new key pair for all subsequent ballots.
    """
    old_keypair = SigningKeyPair(secret=credential.secret_key, public=credential.public_key)
    new_keypair = schnorr_keygen(group)
    record = RotationRecord(
        old_public_key=old_keypair.public,
        new_public_key=new_keypair.public,
        signature=schnorr_sign(
            old_keypair,
            sha256(b"credential-rotation", old_keypair.public.to_bytes(), new_keypair.public.to_bytes()),
        ),
    )
    return new_keypair, record


def audit_rotation(record: RotationRecord):
    """Audit a rotation record; the report names the offending record and predicate.

    The single check's locus embeds the rotating key (e.g.
    ``rotation[1f2e3d…].signature``), so a failed registration-extension
    audit points at the record rather than returning a bare ``False``.
    """
    from repro.audit.api import AuditPlan, EagerVerifier
    from repro.audit.checks import rotation_checks

    return EagerVerifier().run(AuditPlan(rotation_checks(record)))


def verify_rotation(record: RotationRecord) -> bool:
    """Check that the rotation was authorized by the old key (bool shim over audit)."""
    return audit_rotation(record).ok


class RotationRegistry:
    """The public table of credential rotations used by the tally.

    Maps the *latest* device key back to the kiosk-issued key it descends
    from, following chains of rotations (device-to-device porting).  The
    tally resolves each ballot's credential key through this registry before
    tag matching, so rotated credentials keep exactly one counting vote.
    """

    def __init__(self) -> None:
        self._parent: Dict[bytes, RotationRecord] = {}

    def publish(self, record: RotationRecord) -> None:
        if not verify_rotation(record):
            raise VerificationError("rotation record signature invalid")
        key = record.new_public_key.to_bytes()
        if key in self._parent:
            raise ProtocolError("this device key was already registered by a rotation")
        self._parent[key] = record

    def records(self) -> List[RotationRecord]:
        return list(self._parent.values())

    def resolve(self, public_key: GroupElement, max_depth: int = 16) -> GroupElement:
        """Follow rotation records back to the original kiosk-issued key."""
        current = public_key
        for _ in range(max_depth):
            record = self._parent.get(current.to_bytes())
            if record is None:
                return current
            current = record.old_public_key
        raise ProtocolError("rotation chain too deep (cycle?)")

    def is_retired(self, public_key: GroupElement) -> bool:
        """True if ``public_key`` was rotated away from (its ballots no longer count)."""
        return any(
            record.old_public_key == public_key for record in self._parent.values()
        )


# ---------------------------------------------------------------------------
# Appendix C.3 — in-booth delegation under extreme coercion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DelegationReceipt:
    """What the voter leaves the booth with after delegating: nothing sensitive.

    The check-out ticket is still needed so the official can complete the
    visit; the delegate's identity is *not* recorded on it.
    """

    check_out_ticket: CheckOutTicket
    delegate_label: str


def delegate_in_booth(
    kiosk: Kiosk,
    session: KioskSession,
    delegate_public_key: GroupElement,
    delegate_label: str = "",
) -> DelegationReceipt:
    """Delegate the voter's counting vote to ``delegate_public_key`` (Appendix C.3).

    The kiosk encrypts the delegate's public key as this voter's public
    credential tag, so the delegate's own ballot is counted once on behalf of
    the voter.  The voter then creates only fake credentials, and a coercer
    who searches them immediately after registration finds nothing real.
    The kiosk never needs the delegate's private key.
    """
    if session.real_credential_issued:
        raise ProtocolError("cannot delegate after the real credential was issued")
    elgamal = ElGamal(kiosk.group)
    public_credential = elgamal.encrypt(kiosk.authority_public_key, delegate_public_key)
    check_out = CheckOutTicket(
        voter_id=session.voter_id,
        public_credential=public_credential,
        kiosk_public_key=kiosk.keypair.public,
        kiosk_signature=schnorr_sign(kiosk.keypair, check_out_message(session.voter_id, public_credential)),
    )
    session.public_credential = public_credential
    session.check_out_ticket = check_out
    # The voter holds no real credential at all; mark the session accordingly.
    session.real_secret = None
    session.real_public = delegate_public_key
    return DelegationReceipt(check_out_ticket=check_out, delegate_label=delegate_label)


# ---------------------------------------------------------------------------
# Credential renewal (re-registration)
# ---------------------------------------------------------------------------


def renew_credential(
    session: RegistrationSession,
    voter_id: str,
    num_fake_credentials: int = 1,
) -> RegistrationOutcome:
    """Re-register ``voter_id``: the new record supersedes all previous ones.

    Used when credentials expire, a device is lost, or an impersonation
    notification arrives (Appendix J): ballots cast with the superseded
    credential no longer match any active registration tag and are discarded
    by the tally.
    """
    return session.register(Voter(voter_id, num_fake_credentials=num_fake_credentials))
