"""The voter: envelope choices, credential marking, and what they observe.

The voter in the booth cannot verify any cryptography; what they *can* do —
and what TRIP's verifiability rests on — is:

* pick envelopes uniformly at random from the booth's supply (choosing the
  ZKP challenge without having to type a random number, §4.4);
* for the real credential, wait for the kiosk to print the symbol and only
  then pick an envelope with a matching symbol;
* observe whether the kiosk followed the real-credential step order
  (commit printed before the envelope was requested);
* privately mark each paper credential so they can later tell which one is
  real, using a convention only they know.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ProtocolError
from repro.registration.materials import (
    CheckInTicket,
    Envelope,
    EnvelopeSymbol,
    PaperCredential,
    Receipt,
)


@dataclass
class Voter:
    """A voter going through TRIP registration."""

    voter_id: str
    num_fake_credentials: int = 1
    marking_convention: str = "R"
    check_in_ticket: Optional[CheckInTicket] = None
    credentials: List[PaperCredential] = field(default_factory=list)
    observations: List[str] = field(default_factory=list)

    # Envelope selection -----------------------------------------------------------

    @staticmethod
    def pick_envelope(supply: Sequence[Envelope], symbol: Optional[EnvelopeSymbol] = None) -> Envelope:
        """Pick a random envelope, optionally restricted to a matching symbol."""
        candidates = [e for e in supply if symbol is None or e.symbol == symbol]
        if not candidates:
            raise ProtocolError(
                "no envelope with the required symbol is available in the booth"
            )
        return candidates[secrets.randbelow(len(candidates))]

    # Credential handling ------------------------------------------------------------

    def assemble_credential(
        self,
        receipt: Receipt,
        envelope: Envelope,
        is_real: bool,
        observed_sound_order: bool,
    ) -> PaperCredential:
        """Insert the receipt into the envelope and mark it (Fig. 2c)."""
        credential = PaperCredential(
            receipt=receipt,
            envelope=envelope,
            is_real=is_real,
            observed_sound_order=observed_sound_order,
        )
        credential.insert_for_transport()
        marking = self.marking_convention if is_real else f"F{len(self.credentials)}"
        credential.mark(marking)
        self.credentials.append(credential)
        return credential

    def real_credential(self) -> PaperCredential:
        for credential in self.credentials:
            if credential.is_real:
                return credential
        raise ProtocolError("the voter holds no real credential")

    def fake_credentials(self) -> List[PaperCredential]:
        return [c for c in self.credentials if not c.is_real]

    def credential_for_check_out(self) -> PaperCredential:
        """Any credential can be presented at check-out; pick one at random."""
        if not self.credentials:
            raise ProtocolError("the voter holds no credentials")
        return self.credentials[secrets.randbelow(len(self.credentials))]

    # Coercion interface ---------------------------------------------------------------

    def surrender_credentials_to_coercer(self, count: Optional[int] = None) -> List[PaperCredential]:
        """Hand over credentials to a coercer, keeping the real one secret.

        The voter gives fake credentials (claiming one of them is real); if the
        coercer demands more credentials than the voter holds fakes, the voter
        would have created an extra fake during registration — modelled by the
        caller choosing ``num_fake_credentials`` accordingly.
        """
        fakes = [c.coercer_view() for c in self.fake_credentials()]
        if count is None:
            return fakes
        if count > len(fakes):
            raise ProtocolError(
                "voter cannot satisfy the demand without surrendering the real credential; "
                "create more fake credentials at registration time"
            )
        return fakes[:count]

    def note(self, observation: str) -> None:
        self.observations.append(observation)
