"""Election setup (Fig. 7): ledger, authority DKG, registrar keys, envelopes.

``Setup`` initializes the core system actors:

* the bulletin board and its three sub-ledgers;
* the election authority members, who run a DKG producing the collective
  ElGamal public key ``A_pk`` used for public credential tags and ballots;
* the registrar actors — officials (OSDs), kiosks and envelope printers —
  each with a Schnorr signing key pair, plus the shared official↔kiosk MAC
  key ``s_rk``;
* the electoral roll posted to ``L_R``;
* the initial supply of envelopes, whose challenge hashes the printers commit
  to on ``L_E``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamal
from repro.crypto.group import Group
from repro.crypto.mac import mac_keygen
from repro.crypto.schnorr import SigningKeyPair, schnorr_keygen
from repro.ledger.bulletin_board import BulletinBoard
from repro.registration.envelope_printer import EnvelopePrinter
from repro.registration.materials import Envelope
from repro.runtime.precompute import warm_fixed_base


@dataclass
class RegistrarKeys:
    """Key material for one registrar site."""

    official_keys: List[SigningKeyPair]
    kiosk_keys: List[SigningKeyPair]
    printer_keys: List[SigningKeyPair]
    shared_mac_key: bytes

    @property
    def kiosk_public_keys(self) -> List:
        return [keypair.public for keypair in self.kiosk_keys]

    @property
    def official_public_keys(self) -> List:
        return [keypair.public for keypair in self.official_keys]


@dataclass
class ElectionSetup:
    """Everything produced by the setup phase, shared by all later phases."""

    group: Group
    board: BulletinBoard
    authority: DistributedKeyGeneration
    registrar: RegistrarKeys
    envelope_printers: List[EnvelopePrinter]
    envelope_supply: List[Envelope] = field(default_factory=list)
    min_envelopes_per_booth: int = 20

    @property
    def authority_public_key(self):
        return self.authority.public_key

    @property
    def elgamal(self) -> ElGamal:
        return ElGamal(self.group)

    # Envelope supply management -------------------------------------------------

    def restock_envelopes(self, count: int, printer_index: int = 0) -> List[Envelope]:
        """Print additional envelopes (footnote 6: supplies can be topped up)."""
        printer = self.envelope_printers[printer_index]
        fresh = printer.print_envelopes(count)
        self.envelope_supply.extend(fresh)
        return fresh

    def take_envelopes(self, count: int) -> List[Envelope]:
        """Move ``count`` envelopes from the supply into a privacy booth."""
        if count > len(self.envelope_supply):
            raise ValueError("not enough envelopes in the supply; restock first")
        taken, self.envelope_supply = self.envelope_supply[:count], self.envelope_supply[count:]
        return taken

    @classmethod
    def run(
        cls,
        group: Group,
        voter_ids: List[str],
        num_authority_members: int = 4,
        num_officials: int = 1,
        num_kiosks: int = 1,
        num_printers: int = 1,
        envelopes_per_voter: int = 3,
        min_envelopes_per_booth: int = 20,
        board: Optional[BulletinBoard] = None,
    ) -> "ElectionSetup":
        """Run the full setup procedure of Fig. 7."""
        board = board if board is not None else BulletinBoard()
        board.publish_electoral_roll(voter_ids)

        authority = DistributedKeyGeneration.run(group, num_authority_members)

        # The two bases every later phase exponentiates millions of times —
        # the generator (credential key generation, Schnorr commitments) and
        # the collective public key (every public-credential-tag and ballot
        # encryption) — get their fixed-base tables up front.  No-ops for the
        # small testing group.
        warm_fixed_base(group.generator)
        warm_fixed_base(authority.public_key)

        registrar = RegistrarKeys(
            official_keys=[schnorr_keygen(group) for _ in range(num_officials)],
            kiosk_keys=[schnorr_keygen(group) for _ in range(num_kiosks)],
            printer_keys=[schnorr_keygen(group) for _ in range(num_printers)],
            shared_mac_key=mac_keygen(),
        )

        printers = [
            EnvelopePrinter(group=group, keypair=keypair, board=board)
            for keypair in registrar.printer_keys
        ]

        # n_E > c·|V| + λ_E·|K| (Fig. 7, line 5): enough envelopes for the
        # expected consumption plus the per-booth minimum that keeps the number
        # of envelopes per booth uncountable by a coerced voter.
        target = envelopes_per_voter * len(voter_ids) + min_envelopes_per_booth * num_kiosks
        supply: List[Envelope] = []
        for index in range(target):
            printer = printers[index % len(printers)]
            supply.extend(printer.print_envelopes(1))

        return cls(
            group=group,
            board=board,
            authority=authority,
            registrar=registrar,
            envelope_printers=printers,
            envelope_supply=supply,
            min_envelopes_per_booth=min_envelopes_per_booth,
        )
