"""Compact binary serialization for QR payloads.

TRIP's protocol messages travel as QR codes with tight capacity budgets
(13–356 bytes in the paper's prototype), so the codec uses length-prefixed
fields with no schema overhead.  Group elements serialize via their canonical
encodings; scalars use the minimal number of bytes for the group order.
"""

from __future__ import annotations

from typing import List

from repro.crypto.group import Group, GroupElement
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import ProtocolError


def scalar_bytes(group: Group) -> int:
    """The number of bytes needed to encode a scalar for ``group``."""
    return (group.order.bit_length() + 7) // 8


class Encoder:
    """Builds a length-prefixed byte string field by field."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def put_bytes(self, data: bytes) -> "Encoder":
        if len(data) > 0xFFFF:
            raise ProtocolError("field too large for QR payload encoding")
        self._parts.append(len(data).to_bytes(2, "big") + data)
        return self

    def put_str(self, text: str) -> "Encoder":
        return self.put_bytes(text.encode("utf-8"))

    def put_int(self, value: int, group: Group) -> "Encoder":
        return self.put_bytes(int(value).to_bytes(scalar_bytes(group), "big"))

    def put_element(self, element: GroupElement) -> "Encoder":
        return self.put_bytes(element.to_bytes())

    def put_signature(self, signature: SchnorrSignature, group: Group) -> "Encoder":
        self.put_element(signature.commitment)
        return self.put_int(signature.response, group)

    def bytes(self) -> bytes:
        return b"".join(self._parts)


class Decoder:
    """Reads fields written by :class:`Encoder`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _next(self) -> bytes:
        if self._offset + 2 > len(self._data):
            raise ProtocolError("truncated QR payload")
        length = int.from_bytes(self._data[self._offset : self._offset + 2], "big")
        self._offset += 2
        if self._offset + length > len(self._data):
            raise ProtocolError("truncated QR payload field")
        field = self._data[self._offset : self._offset + length]
        self._offset += length
        return field

    def get_bytes(self) -> bytes:
        return self._next()

    def get_str(self) -> str:
        return self._next().decode("utf-8")

    def get_int(self) -> int:
        return int.from_bytes(self._next(), "big")

    def get_element(self, group: Group) -> GroupElement:
        return group.element_from_bytes(self._next())

    def get_signature(self, group: Group) -> SchnorrSignature:
        commitment = self.get_element(group)
        response = self.get_int()
        return SchnorrSignature(commitment=commitment, response=response)

    @property
    def exhausted(self) -> bool:
        return self._offset == len(self._data)
