"""Physical registration artefacts: envelopes, receipts, tickets, credentials.

These classes model exactly the paper objects of Fig. 2 and Appendix E:

* :class:`Envelope` — pre-printed by an envelope printer with a symbol, a QR
  code carrying the ZKP challenge ``e``, the printer's public key and a
  signature on ``H(e)``; the envelope has a transparent window and an opaque
  lower portion used by the transport/activate states.
* :class:`CheckInTicket` — a barcode with the voter id and a MAC tag issued
  by the official at check-in.
* :class:`CommitCode` / :class:`CheckOutTicket` / :class:`ResponseCode` — the
  three QR codes the kiosk prints on the receipt.
* :class:`Receipt` — the printed receipt (symbol + the three QR codes).
* :class:`PaperCredential` — a receipt inserted into an envelope, with the
  state machine (in-booth → transport → activate) that controls which codes
  are visible, plus the voter's private marking.
"""

from __future__ import annotations

import enum
import secrets
from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.chaum_pedersen import (
    ChaumPedersenCommit,
    ChaumPedersenStatement,
    ChaumPedersenTranscript,
)
from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.crypto.hashing import scalar_bytes, sha256
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import ProtocolError
from repro.peripherals.qr import Barcode, QRCode
from repro.registration.codec import Decoder, Encoder


class EnvelopeSymbol(enum.Enum):
    """The small set of symbols printed on envelopes and commit codes (§4.4).

    The kiosk prints a randomly chosen symbol above the commit QR; the voter
    must pick an envelope bearing the same symbol, which trains voters to wait
    for the commit before presenting an envelope.
    """

    CIRCLE = "circle"
    SQUARE = "square"
    TRIANGLE = "triangle"
    STAR = "star"
    DIAMOND = "diamond"

    @classmethod
    def random(cls) -> "EnvelopeSymbol":
        members = list(cls)
        return members[secrets.randbelow(len(members))]


class CredentialState(enum.Enum):
    """The physical state of a paper credential (Fig. 2c / 2d)."""

    IN_BOOTH = "in_booth"          # receipt not yet inserted into the envelope
    TRANSPORT = "transport"        # fully inserted: only the check-out QR is visible
    ACTIVATE = "activate"          # lifted one third: commit, response and envelope QRs visible


# ---------------------------------------------------------------------------
# Check-in ticket
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckInTicket:
    """``t_in = (V_id, τ_r)`` — a barcode handed to the voter at check-in."""

    voter_id: str
    mac_tag: bytes

    def to_barcode(self) -> Barcode:
        return Barcode(payload=Encoder().put_str(self.voter_id).put_bytes(self.mac_tag).bytes(), label="check-in")

    @classmethod
    def from_barcode(cls, barcode: Barcode) -> "CheckInTicket":
        decoder = Decoder(barcode.payload)
        return cls(voter_id=decoder.get_str(), mac_tag=decoder.get_bytes())


# ---------------------------------------------------------------------------
# Envelope
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """A pre-printed envelope carrying the ZKP challenge (Fig. 2a)."""

    symbol: EnvelopeSymbol
    challenge: int
    printer_public_key: GroupElement
    printer_signature: SchnorrSignature
    serial: int = 0

    @property
    def challenge_hash(self) -> bytes:
        return sha256(b"envelope-challenge", scalar_bytes(self.challenge))

    def to_qr(self, group: Group) -> QRCode:
        payload = (
            Encoder()
            .put_str(self.symbol.value)
            .put_int(self.challenge, group)
            .put_element(self.printer_public_key)
            .put_signature(self.printer_signature, group)
            .bytes()
        )
        return QRCode(payload=payload, label="envelope")

    @classmethod
    def from_qr(cls, qr: QRCode, group: Group, serial: int = 0) -> "Envelope":
        decoder = Decoder(qr.payload)
        return cls(
            symbol=EnvelopeSymbol(decoder.get_str()),
            challenge=decoder.get_int(),
            printer_public_key=decoder.get_element(group),
            printer_signature=decoder.get_signature(group),
            serial=serial,
        )


# ---------------------------------------------------------------------------
# Receipt QR codes
# ---------------------------------------------------------------------------


def commit_message(voter_id: str, public_credential: ElGamalCiphertext, commit: ChaumPedersenCommit) -> bytes:
    """The message the kiosk signs on a commit code: ``V_id ∥ c_pc ∥ Y_c``."""
    return sha256(b"commit-code", voter_id.encode(), public_credential.to_bytes(), commit.to_bytes())


def check_out_message(voter_id: str, public_credential: ElGamalCiphertext) -> bytes:
    """The message the kiosk signs on a check-out ticket: ``V_id ∥ c_pc``."""
    return sha256(b"check-out-ticket", voter_id.encode(), public_credential.to_bytes())


def response_message(credential_public: GroupElement, challenge: int, response: int) -> bytes:
    """The message the kiosk signs on a response code: ``c_pk ∥ H(e ∥ r)``."""
    return sha256(
        b"response-code",
        credential_public.to_bytes(),
        sha256(scalar_bytes(challenge), scalar_bytes(response)),
    )


@dataclass(frozen=True)
class CommitCode:
    """``q_c = (V_id, c_pc, Y_c, σ_kc)`` — the first printed QR (Fig. 9a, line 7)."""

    voter_id: str
    public_credential: ElGamalCiphertext
    commit: ChaumPedersenCommit
    kiosk_signature: SchnorrSignature

    def signed_message(self) -> bytes:
        return commit_message(self.voter_id, self.public_credential, self.commit)

    def to_qr(self, group: Group) -> QRCode:
        payload = (
            Encoder()
            .put_str(self.voter_id)
            .put_element(self.public_credential.c1)
            .put_element(self.public_credential.c2)
            .put_element(self.commit.commit_g)
            .put_element(self.commit.commit_h)
            .put_signature(self.kiosk_signature, group)
            .bytes()
        )
        return QRCode(payload=payload, label="commit")

    @classmethod
    def from_qr(cls, qr: QRCode, group: Group) -> "CommitCode":
        decoder = Decoder(qr.payload)
        return cls(
            voter_id=decoder.get_str(),
            public_credential=ElGamalCiphertext(decoder.get_element(group), decoder.get_element(group)),
            commit=ChaumPedersenCommit(decoder.get_element(group), decoder.get_element(group)),
            kiosk_signature=decoder.get_signature(group),
        )


@dataclass(frozen=True)
class CheckOutTicket:
    """``t_ot = (V_id, c_pc, K_pk, σ_kot)`` — the middle QR, visible in transport state."""

    voter_id: str
    public_credential: ElGamalCiphertext
    kiosk_public_key: GroupElement
    kiosk_signature: SchnorrSignature

    def signed_message(self) -> bytes:
        return check_out_message(self.voter_id, self.public_credential)

    def to_qr(self, group: Group) -> QRCode:
        payload = (
            Encoder()
            .put_str(self.voter_id)
            .put_element(self.public_credential.c1)
            .put_element(self.public_credential.c2)
            .put_element(self.kiosk_public_key)
            .put_signature(self.kiosk_signature, group)
            .bytes()
        )
        return QRCode(payload=payload, label="check-out")

    @classmethod
    def from_qr(cls, qr: QRCode, group: Group) -> "CheckOutTicket":
        decoder = Decoder(qr.payload)
        return cls(
            voter_id=decoder.get_str(),
            public_credential=ElGamalCiphertext(decoder.get_element(group), decoder.get_element(group)),
            kiosk_public_key=decoder.get_element(group),
            kiosk_signature=decoder.get_signature(group),
        )


@dataclass(frozen=True)
class ResponseCode:
    """``q_r = (c_sk, r, K_pk, σ_kr)`` — the bottom QR, containing the credential secret."""

    credential_secret: int
    zkp_response: int
    kiosk_public_key: GroupElement
    kiosk_signature: SchnorrSignature

    @staticmethod
    def signed_message(credential_public: GroupElement, challenge: int, response: int) -> bytes:
        return response_message(credential_public, challenge, response)

    def to_qr(self, group: Group) -> QRCode:
        payload = (
            Encoder()
            .put_int(self.credential_secret, group)
            .put_int(self.zkp_response, group)
            .put_element(self.kiosk_public_key)
            .put_signature(self.kiosk_signature, group)
            .bytes()
        )
        return QRCode(payload=payload, label="response")

    @classmethod
    def from_qr(cls, qr: QRCode, group: Group) -> "ResponseCode":
        decoder = Decoder(qr.payload)
        return cls(
            credential_secret=decoder.get_int(),
            zkp_response=decoder.get_int(),
            kiosk_public_key=decoder.get_element(group),
            kiosk_signature=decoder.get_signature(group),
        )


# ---------------------------------------------------------------------------
# Receipt and paper credential
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Receipt:
    """The printed receipt: symbol plus the three QR codes (Fig. 2b)."""

    symbol: EnvelopeSymbol
    commit_code: CommitCode
    check_out_ticket: CheckOutTicket
    response_code: ResponseCode


@dataclass
class PaperCredential:
    """A receipt paired with the envelope it was inserted into.

    The credential is what the voter physically carries.  Its state machine
    mirrors the paper's envelope design: in the *transport* state only the
    check-out QR is visible (through the window); in the *activate* state the
    commit and response QRs plus the envelope's own QR are visible, while the
    check-out QR is covered.
    """

    receipt: Receipt
    envelope: Envelope
    is_real: bool
    state: CredentialState = CredentialState.IN_BOOTH
    voter_marking: str = ""
    observed_sound_order: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.receipt.symbol != self.envelope.symbol and self.is_real:
            raise ProtocolError("real-credential receipt symbol must match the envelope symbol")

    # State machine -------------------------------------------------------------

    def insert_for_transport(self) -> "PaperCredential":
        """Fully insert the receipt into the envelope (Fig. 2c)."""
        self.state = CredentialState.TRANSPORT
        return self

    def lift_for_activation(self) -> "PaperCredential":
        """Lift the receipt a third of the way out (Fig. 2d)."""
        if self.state is CredentialState.IN_BOOTH:
            raise ProtocolError("credential must be transported (inserted) before activation")
        self.state = CredentialState.ACTIVATE
        return self

    def mark(self, marking: str) -> "PaperCredential":
        """The voter's private marking that distinguishes real from fake."""
        self.voter_marking = marking
        return self

    # Visibility ------------------------------------------------------------------

    def visible_check_out_qr(self, group: Group) -> QRCode:
        """The QR the official can scan through the window (transport state only)."""
        if self.state is not CredentialState.TRANSPORT:
            raise ProtocolError("check-out QR is only visible in the transport state")
        return self.receipt.check_out_ticket.to_qr(group)

    def visible_activation_qrs(self, group: Group) -> List[QRCode]:
        """The three QR codes visible in the activate state."""
        if self.state is not CredentialState.ACTIVATE:
            raise ProtocolError("activation QRs are only visible in the activate state")
        return [
            self.receipt.commit_code.to_qr(group),
            self.receipt.response_code.to_qr(group),
            self.envelope.to_qr(group),
        ]

    # What a coercer can see --------------------------------------------------------

    def coercer_view(self) -> "PaperCredential":
        """The credential as handed to a coercer: identical paper, no realness bit.

        The returned object deliberately drops ``is_real`` (set to True — the
        coercer is told every credential is "the real one") and the voter's
        private observation of the printing order.
        """
        view = PaperCredential(
            receipt=self.receipt,
            envelope=self.envelope,
            is_real=True,
            state=self.state,
            voter_marking="",
            observed_sound_order=None,
        )
        return view


@dataclass(frozen=True)
class ActivatedCredential:
    """The credential as stored on the voter's device after activation."""

    voter_id: str
    secret_key: int
    public_key: GroupElement
    public_credential: ElGamalCiphertext
    transcript: ChaumPedersenTranscript
    kiosk_public_key: GroupElement
    is_real: bool

    def statement(self) -> ChaumPedersenStatement:
        return self.transcript.statement
