"""Analytic security bounds (Theorem IV, §5.1 / Appendix F.3, and §7.5).

The integrity adversary's only non-negligible avenue is *envelope stuffing*:
duplicate ``k`` of the ``n_E`` envelopes in the booth with the same challenge
``e★`` and hope that (a) the voter uses a stuffed envelope for the real
credential and (b) none of the other envelopes the voter consumes carries
``e★`` (a duplicate would be caught at activation).  Theorem IV bounds the
success probability by

    max_k  E_{n_c ~ D_c} [ (k / n_E) · C(n_E − k, n_c − 1) / C(n_E − 1, n_c − 1) ]

where ``n_c`` is the number of credentials (envelopes) the voter consumes.
This module evaluates the bound exactly, optimizes over ``k``, iterates it
over ``N`` independent target voters (strong iterative IV), and also provides
the §7.5 malicious-kiosk detection arithmetic (probability that a kiosk
misbehaving against every voter survives ``n`` voters undetected).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Dict, Mapping


def _stuffing_success_for_k(num_envelopes: int, k: int, credential_distribution: Mapping[int, float]) -> float:
    """E_{n_c}[ (k/n_E) · C(n_E−k, n_c−1)/C(n_E−1, n_c−1) ] for a fixed k."""
    if not 1 <= k <= num_envelopes:
        raise ValueError("k must be between 1 and the number of envelopes")
    expectation = 0.0
    for num_credentials, probability in credential_distribution.items():
        if num_credentials < 1:
            raise ValueError("voters create at least one (the real) credential")
        picked_fake = num_credentials - 1
        denominator = comb(num_envelopes - 1, picked_fake)
        if denominator == 0 or num_envelopes - k < picked_fake:
            conditional = 0.0
        else:
            conditional = comb(num_envelopes - k, picked_fake) / denominator
        expectation += probability * (k / num_envelopes) * conditional
    return expectation


def iv_adversary_success_bound(
    num_envelopes: int,
    credential_distribution: Mapping[int, float],
    return_best_k: bool = False,
):
    """The Theorem-IV bound, maximized over the number of stuffed envelopes k.

    ``credential_distribution`` maps "total credentials a voter creates"
    (n_c ≥ 1) to its probability under D_c.
    """
    total = sum(credential_distribution.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError("credential distribution probabilities must sum to 1")
    best_probability, best_k = 0.0, 1
    for k in range(1, num_envelopes + 1):
        probability = _stuffing_success_for_k(num_envelopes, k, credential_distribution)
        if probability > best_probability:
            best_probability, best_k = probability, k
    if return_best_k:
        return best_probability, best_k
    return best_probability


def iv_success_over_population(
    num_envelopes: int,
    credential_distribution: Mapping[int, float],
    num_target_voters: int,
) -> float:
    """Strong iterative IV: probability of fooling *all* of N independent targets.

    Appendix F.3.6: across ``N`` independent target voters the adversary's
    success probability is ``p_max^N``, which decays geometrically — the
    formal counterpart of "the probability becomes negligible over repeated
    attacks against many voters".
    """
    single = iv_adversary_success_bound(num_envelopes, credential_distribution)
    return single ** num_target_voters


def kiosk_undetected_probability(per_voter_detection_rate: float, num_voters: int) -> float:
    """Probability that a misbehaving kiosk escapes detection by every voter.

    §7.5: with a 10 % per-voter detection rate the probability of fooling 50
    voters undetected is below 1 %, and for 1000 voters about 2^-152.
    """
    if not 0.0 <= per_voter_detection_rate <= 1.0:
        raise ValueError("detection rate must be a probability")
    return (1.0 - per_voter_detection_rate) ** num_voters


@dataclass(frozen=True)
class DetectionScenario:
    """A §7.5-style detection scenario for the usability/ablation benches."""

    label: str
    per_voter_detection_rate: float

    def survival_probability(self, num_voters: int) -> float:
        return kiosk_undetected_probability(self.per_voter_detection_rate, num_voters)


#: The two populations reported in §7.5.
EDUCATED_VOTERS = DetectionScenario("with security education", 0.47)
UNEDUCATED_VOTERS = DetectionScenario("without security education", 0.10)


def uniform_credential_distribution(max_credentials: int) -> Dict[int, float]:
    """Voters pick 1..max_credentials total credentials uniformly at random."""
    if max_credentials < 1:
        raise ValueError("voters create at least one credential")
    probability = 1.0 / max_credentials
    return {count: probability for count in range(1, max_credentials + 1)}


def geometric_credential_distribution(mean_fakes: float, cutoff: int = 12) -> Dict[int, float]:
    """A geometric model of how many fake credentials voters create.

    ``n_c = 1 + F`` with ``F`` geometric of mean ``mean_fakes`` truncated at
    ``cutoff``; a reasonable stand-in for D_c when sweeping the IV bound.
    """
    if mean_fakes < 0:
        raise ValueError("mean number of fakes cannot be negative")
    success = 1.0 / (1.0 + mean_fakes)
    distribution: Dict[int, float] = {}
    remaining = 1.0
    for fakes in range(cutoff):
        probability = success * (1 - success) ** fakes
        distribution[1 + fakes] = probability
        remaining -= probability
    distribution[1 + cutoff] = max(remaining, 0.0)
    return distribution
