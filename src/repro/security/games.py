"""Executable security games (Appendix F), run against the real implementation.

* :class:`IndividualVerifiabilityGame` — the envelope-stuffing game behind
  Theorem IV: a corrupted registrar duplicates ``k`` envelope challenges and
  wins if the voter's real credential uses a stuffed envelope while none of
  the voter's other envelopes repeats the stuffed challenge (a repeat is
  caught by the activation-time duplicate check).  The Monte-Carlo win rate
  is compared against the analytic bound in the tests.
* :class:`CoercionResistanceExperiment` — the real-vs-ideal comparison behind
  Theorem 2, instantiated empirically: a coercer targets one voter, demands a
  vote and the voter's credentials, and must guess from its full view
  (credentials, ledger aggregates, tally) whether the voter complied or
  secretly cast their real vote.  Because real and fake credentials are
  indistinguishable and the ledger only leaks aggregates, the measured
  advantage stays at the statistical-noise level.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.crypto.group import Group
from repro.election.config import ElectionConfig
from repro.election.pipeline import VotegralElection
from repro.security.adversary import Coercer, CoercionDemand
from repro.security.analysis import iv_adversary_success_bound


# ---------------------------------------------------------------------------
# Game IV (individual verifiability / envelope stuffing)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IVGameResult:
    """Monte-Carlo outcome of the envelope-stuffing game."""

    trials: int
    adversary_wins: int
    duplicates_detected: int
    analytic_bound: float

    @property
    def empirical_rate(self) -> float:
        return self.adversary_wins / self.trials if self.trials else 0.0


@dataclass
class IndividualVerifiabilityGame:
    """The envelope-stuffing game of Appendix F.3, simulated combinatorially.

    The game abstracts the booth to its combinatorics (which is all the
    adversary controls): ``num_envelopes`` envelopes of which ``stuffed`` share
    one challenge, and a voter who draws ``num_credentials`` envelopes
    uniformly without replacement, using the first draw for the real
    credential.  The adversary wins if the real draw is stuffed and no other
    draw is stuffed; if two draws are stuffed the duplicate check at
    activation exposes the attack.
    """

    num_envelopes: int
    stuffed: int
    credential_distribution: Dict[int, float]

    def _sample_num_credentials(self) -> int:
        roll = secrets.randbelow(10**9) / 10**9
        cumulative = 0.0
        for count, probability in sorted(self.credential_distribution.items()):
            cumulative += probability
            if roll <= cumulative:
                return count
        return max(self.credential_distribution)

    def play_once(self) -> str:
        """One game: returns 'win', 'detected' or 'lose' for the adversary."""
        num_credentials = self._sample_num_credentials()
        # Envelope indices < stuffed carry the duplicated challenge.
        available = list(range(self.num_envelopes))
        draws: List[int] = []
        for _ in range(min(num_credentials, self.num_envelopes)):
            index = secrets.randbelow(len(available))
            draws.append(available.pop(index))
        stuffed_draws = [draw for draw in draws if draw < self.stuffed]
        if len(stuffed_draws) >= 2:
            return "detected"
        real_draw = draws[0]
        if real_draw < self.stuffed and len(stuffed_draws) == 1:
            return "win"
        return "lose"

    def run(self, trials: int = 10_000) -> IVGameResult:
        wins = detected = 0
        for _ in range(trials):
            outcome = self.play_once()
            if outcome == "win":
                wins += 1
            elif outcome == "detected":
                detected += 1
        bound = iv_adversary_success_bound(self.num_envelopes, self.credential_distribution)
        return IVGameResult(
            trials=trials,
            adversary_wins=wins,
            duplicates_detected=detected,
            analytic_bound=bound,
        )


# ---------------------------------------------------------------------------
# Coercion-resistance experiment (real vs ideal)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoercionTrialView:
    """Everything the coercer sees in one trial."""

    surrendered_credentials: int
    ledger_aggregates: Dict[str, int]
    tally_counts: Dict[int, int]


@dataclass
class CoercionResistanceExperiment:
    """An empirical real-game instantiation of the C-Resist comparison.

    For each trial a fresh small election runs with one coerced target voter.
    A hidden bit ``b`` decides whether the target complies (only casts the
    coercer's vote) or evades (additionally casts their real vote in secret).
    The coercer receives its full view and a guessing strategy; the measured
    advantage ``|P[guess=b] − 1/2|`` should be explained entirely by the
    statistical uncertainty of the honest voters' behaviour (the ideal game's
    residual), not by anything TRIP leaks.
    """

    num_voters: int = 6
    num_options: int = 2
    demanded_vote: int = 0
    demanded_fakes: int = 1
    group_factory: Optional[Callable[[], Group]] = None

    def _run_trial(self, comply: bool, guess_strategy: Callable[[CoercionTrialView], bool]) -> bool:
        config = ElectionConfig(
            num_voters=self.num_voters,
            num_options=self.num_options,
            proof_rounds=2,
            num_mixers=2,
            fake_credentials_per_voter=self.demanded_fakes,
        )
        if self.group_factory is not None:
            config.group_factory = self.group_factory
        election = VotegralElection(config)
        election.run_setup()
        election.run_registration()

        target_id = config.voter_ids()[0]
        coercer = Coercer(CoercionDemand(self.demanded_fakes, self.demanded_vote))

        # The target hands over credentials (fakes posing as the full set).
        target_outcome = election.outcomes[0]
        coercer.collect_credentials(target_outcome.voter)

        # Voting: the target visibly casts the demanded vote with a fake
        # credential; if evading, they also cast their real vote in secret.
        target_client = election.clients[target_id]
        coercer.supervise_vote(target_client, self.num_options)
        if not comply:
            secret_choice = 1 - self.demanded_vote if self.num_options == 2 else (self.demanded_vote + 1) % self.num_options
            target_client.cast_real(secret_choice, self.num_options)

        # Honest voters vote their own way.
        for voter_id in config.voter_ids()[1:]:
            election.clients[voter_id].cast_real(secrets.randbelow(self.num_options), self.num_options)

        result = election.run_tally(verify=False)
        view = CoercionTrialView(
            surrendered_credentials=len(coercer.surrendered),
            ledger_aggregates=coercer.ledger_view(election.setup.board),
            tally_counts=result.counts,
        )
        guess_comply = guess_strategy(view)
        return guess_comply == comply

    def run(
        self,
        trials: int = 20,
        guess_strategy: Optional[Callable[[CoercionTrialView], bool]] = None,
    ) -> float:
        """Return the coercer's empirical advantage ``|success − 1/2|``."""
        strategy = guess_strategy or (lambda view: secrets.randbelow(2) == 1)
        correct = 0
        for trial in range(trials):
            comply = trial % 2 == 0
            if self._run_trial(comply, strategy):
                correct += 1
        success_rate = correct / trials
        return abs(success_rate - 0.5)
