"""Security games and analyses from §5 and Appendix F.

* :mod:`repro.security.analysis` — the analytic individual-verifiability
  bound (Theorem IV), its iteration over many target voters, and the
  malicious-kiosk detection probabilities quoted in §7.5.
* :mod:`repro.security.malicious_kiosk` — kiosk adversaries: a kiosk that
  claims a fake credential is real (wrong Σ-protocol order), a kiosk that
  swaps in its own credential, and an envelope-stuffing registrar.
* :mod:`repro.security.games` — executable versions of Game IV (individual
  verifiability) and of the coercion-resistance real/ideal comparison,
  driven against the actual library implementation.
* :mod:`repro.security.adversary` — the coercer model used by the games and
  the examples.
"""

from repro.security.analysis import (
    iv_adversary_success_bound,
    iv_success_over_population,
    kiosk_undetected_probability,
)
from repro.security.adversary import Coercer, CoercionDemand
from repro.security.malicious_kiosk import CredentialStealingKiosk, WrongOrderKiosk
from repro.security.games import (
    IndividualVerifiabilityGame,
    CoercionResistanceExperiment,
    IVGameResult,
)

__all__ = [
    "iv_adversary_success_bound",
    "iv_success_over_population",
    "kiosk_undetected_probability",
    "Coercer",
    "CoercionDemand",
    "CredentialStealingKiosk",
    "WrongOrderKiosk",
    "IndividualVerifiabilityGame",
    "CoercionResistanceExperiment",
    "IVGameResult",
]
