"""Malicious kiosk and registrar strategies (the integrity adversary).

Two concrete attacks from §5.1 are implemented against the real kiosk code:

* :class:`WrongOrderKiosk` — when asked for a *real* credential it asks for
  the envelope **first** and then fabricates the whole receipt with the
  simulator, i.e. it runs the fake-credential procedure while claiming the
  output is real.  The result verifies perfectly at activation; the only
  defence is the voter noticing the wrong step order in the booth — exactly
  the behaviour the §7.5 user study measures (47 % / 10 % detection).
* :class:`CredentialStealingKiosk` — issues the voter a credential whose tag
  encrypts a key the *adversary* keeps, so the adversary can later cast the
  voter's counting vote.  Because the printed ZKP must then be unsound, this
  reduces to the wrong-order attack (or to guessing the envelope challenge,
  which the envelope-stuffing game in :mod:`repro.security.games` covers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.crypto.chaum_pedersen import simulate_chaum_pedersen
from repro.crypto.schnorr import SigningKeyPair, schnorr_keygen, schnorr_sign
from repro.crypto.sigma import Move, SigmaSession
from repro.registration.kiosk import Kiosk, KioskSession
from repro.registration.materials import (
    CheckOutTicket,
    CommitCode,
    Envelope,
    Receipt,
    check_out_message,
    commit_message,
    response_message,
    ResponseCode,
)


@dataclass
class WrongOrderKiosk(Kiosk):
    """A kiosk that issues 'real' credentials via the unsound (fake) procedure."""

    def issue_claimed_real_credential(self, session: KioskSession, envelope: Envelope) -> Receipt:
        """The attack: take the envelope first, simulate, print everything at once.

        The voter-observable difference from an honest real-credential issuance
        is exactly the step order; the printed receipt is indistinguishable.
        """
        sigma = SigmaSession()
        with self.latency.phase("RealToken"):
            scanned = self.scanner.scan(envelope.to_qr(self.group), label="attack:envelope")
            decoded = Envelope.from_qr(scanned, self.group, serial=envelope.serial)
            sigma.record(Move.CHALLENGE)

            # The adversary keeps the "real" key for itself and gives the voter
            # a fresh key whose realness proof is simulated.
            adversary_credential = schnorr_keygen(self.group)
            victim_credential = schnorr_keygen(self.group)
            randomness = self.group.random_scalar()
            public_credential = self.elgamal.encrypt(
                self.authority_public_key, adversary_credential.public, randomness
            )
            statement = self._statement(public_credential, victim_credential.public)
            transcript = simulate_chaum_pedersen(statement, decoded.challenge)
            sigma.record(Move.COMMIT)
            sigma.record(Move.RESPONSE)

            commit_code = CommitCode(
                voter_id=session.voter_id,
                public_credential=public_credential,
                commit=transcript.commit,
                kiosk_signature=schnorr_sign(
                    self.keypair, commit_message(session.voter_id, public_credential, transcript.commit)
                ),
            )
            check_out = CheckOutTicket(
                voter_id=session.voter_id,
                public_credential=public_credential,
                kiosk_public_key=self.keypair.public,
                kiosk_signature=schnorr_sign(
                    self.keypair, check_out_message(session.voter_id, public_credential)
                ),
            )
            response_code = ResponseCode(
                credential_secret=victim_credential.secret,
                zkp_response=transcript.response,
                kiosk_public_key=self.keypair.public,
                kiosk_signature=schnorr_sign(
                    self.keypair,
                    response_message(victim_credential.public, decoded.challenge, transcript.response),
                ),
            )
            self.printer.print_codes(
                commit_code.to_qr(self.group),
                check_out.to_qr(self.group),
                response_code.to_qr(self.group),
                text_lines=2,
                label="attack:receipt",
            )

        session.used_challenges.add(decoded.challenge)
        session.public_credential = public_credential
        session.real_secret = victim_credential.secret
        session.real_public = victim_credential.public
        session.check_out_ticket = check_out
        session.real_sigma = sigma
        session.credentials_issued += 1
        # The adversary walks away with the key that will actually count.
        self.stolen_keypairs.append(adversary_credential)
        return Receipt(
            symbol=decoded.symbol,
            commit_code=commit_code,
            check_out_ticket=check_out,
            response_code=response_code,
        )

    stolen_keypairs: List[SigningKeyPair] = field(default_factory=list)


@dataclass
class CredentialStealingKiosk(WrongOrderKiosk):
    """Alias emphasising the adversary's goal (§5.1 individual-verifiability attack).

    The mechanics are the wrong-order attack: stealing the counting credential
    while handing the voter a fake requires forging a sound-looking proof,
    which the kiosk can only do by learning the challenge before committing.
    """
