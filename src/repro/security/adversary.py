"""The coercion adversary (§4.1, Appendix D.2).

A :class:`Coercer` can, before registration, demand that a voter create a
specific number of fake credentials and hand "all" credentials over; during
voting it can demand a specific vote; afterwards it observes the public
ledger (the registration records, the aggregate envelope usage and the tally)
and tries to decide whether the voter complied.  It cannot compromise the
registrar, observe the booth, or see the VSD holding the real credential.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ledger.api import as_board_view
from repro.ledger.bulletin_board import BulletinBoard
from repro.registration.materials import PaperCredential
from repro.registration.voter import Voter
from repro.voting.client import VotingClient


@dataclass(frozen=True)
class CoercionDemand:
    """What the coercer demands of the target voter."""

    demanded_fake_credentials: int
    demanded_vote: int

    @property
    def demanded_total_credentials(self) -> int:
        """The coercer expects this many credentials handed over ("all of them")."""
        return self.demanded_fake_credentials + 1


@dataclass
class Coercer:
    """A coercion adversary interacting with one target voter."""

    demand: CoercionDemand
    surrendered: List[PaperCredential] = field(default_factory=list)
    observed_votes: List[int] = field(default_factory=list)

    # -------------------------------------------------------------- interactions

    def collect_credentials(self, voter: Voter) -> List[PaperCredential]:
        """Take the credentials the voter hands over (all claimed real/fake mix)."""
        handed_over = voter.surrender_credentials_to_coercer(self.demand.demanded_total_credentials) \
            if len(voter.fake_credentials()) >= self.demand.demanded_total_credentials \
            else [c.coercer_view() for c in voter.credentials if not c.is_real] or \
                 [voter.credentials[0].coercer_view()]
        self.surrendered = handed_over
        return handed_over

    def supervise_vote(self, client: VotingClient, num_options: int, election_id: str = "default") -> None:
        """Force the voter to cast the demanded vote in the coercer's presence.

        The voter complies *visibly* using a fake credential; the coercer
        cannot tell it is fake.
        """
        client.cast_fake(self.demand.demanded_vote, num_options, election_id=election_id)
        self.observed_votes.append(self.demand.demanded_vote)

    # ---------------------------------------------------------------- the guess

    def ledger_view(self, board: BulletinBoard) -> Dict[str, int]:
        """Everything the coercer can read off the public ledger, in aggregate.

        Goes through the read-only :class:`~repro.ledger.api.BoardView` — the
        adversary observes the published board, it never holds a write handle.
        """
        view = as_board_view(board)
        return {
            "registrations": view.num_registered,
            "envelope_challenges_used": view.num_challenges_used,
            "ballots": view.num_ballots,
        }

    def guess_compliance(self, board: BulletinBoard, tally_counts: Optional[Dict[int, int]] = None) -> bool:
        """Guess whether the target voter complied (True) or evaded (False).

        The credentials handed over are indistinguishable, the ledger only
        shows aggregates, and the tally mixes the target's vote with all other
        voters' statistical noise — so the best available strategy degrades to
        a coin flip biased only by whatever external information the caller
        injects.  The default implementation flips a fair coin, which is what
        the coercion-resistance experiment measures against.
        """
        return secrets.randbelow(2) == 1
