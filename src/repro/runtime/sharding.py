"""Sharding helpers: fan per-ballot / per-registration work out across workers.

The tally stages are data-parallel over ballots, registrations, shuffle
rounds, or cascade stages.  This module centralizes how that work is split
so every stage shards the same way:

* contiguous, order-preserving shards (:func:`shard_contiguous`) — results
  concatenate back into ledger order, which keeps parallel output
  bit-identical to the serial reference; signature checking shards this way
  so each worker batch-verifies one shard;
* :func:`parallel_map` / :func:`parallel_starmap` — the one-line fan-out used
  by ``filter_ballots``, ``decrypt_votes``, the mix cascade (prove and
  verify sides) and :func:`repro.runtime.batch.verify_signatures`; they
  resolve the module-default executor so call sites only pass an executor
  when they want to override it.

Work functions must be module-level (picklable) for the process backend;
heavy shared objects (the DKG, the tagging authority, the ElGamal context)
travel inside each task tuple and are deduplicated per chunk by pickling.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.executor import Executor, chunk_evenly, resolve_executor


def shard_contiguous(items: Sequence[Any], num_shards: int) -> List[List[Any]]:
    """Split ``items`` into contiguous shards; concatenation restores order."""
    return chunk_evenly(items, num_shards)


def merge_shards(shards: Iterable[Sequence[Any]]) -> List[Any]:
    """Concatenate shard results back into a single ordered list."""
    merged: List[Any] = []
    for shard in shards:
        merged.extend(shard)
    return merged


def default_shards(executor: Executor, num_items: int) -> int:
    """A reasonable shard count: a few shards per worker, never empty ones."""
    if num_items <= 1 or executor.num_workers <= 1:
        return 1
    return min(num_items, executor.num_workers * 4)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    executor: Optional[Executor] = None,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """Order-preserving parallel ``map`` against the resolved executor."""
    return resolve_executor(executor).map(fn, items, chunksize=chunksize)


def parallel_starmap(
    fn: Callable[..., Any],
    items: Iterable[Tuple],
    executor: Optional[Executor] = None,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """Order-preserving parallel ``starmap`` against the resolved executor."""
    return resolve_executor(executor).starmap(fn, items, chunksize=chunksize)
