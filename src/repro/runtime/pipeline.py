"""Streaming shard pipeline: a bounded-queue stage scheduler.

The tally's heavy phases form a linear dataflow — read ballot shards off the
ledger, push them through ``num_mixers`` shuffle stages, derive blinded tags,
join against the registration tags, decrypt the survivors.  Before this
module, each phase ran to completion before the next started, so adding a
mixer multiplied wall-clock latency.  :class:`StreamPipeline` runs every
stage in its own thread, connected by bounded FIFO queues, so stage *i+1*
works on shard *k* while stage *i* works on shard *k+1* — the classic
producer/consumer pipelining that hides per-stage latency behind overlap.

Design points:

* **Shards, not items.**  The unit of flow is a :class:`Shard` — an indexed
  batch of work items.  Batching amortizes queue overhead and gives each
  stage a chunk big enough to fan out over its :class:`~repro.runtime.
  executor.Executor`; the pipeline composes with the executor layer rather
  than replacing it (stage threads overlap, executors parallelize within a
  stage's shard).  That composition includes the multi-node backend: a
  :class:`~repro.cluster.executor.RemoteExecutor` handed to stages is
  safe to share — its coordinator multiplexes concurrent task groups from
  several stage threads — so a streaming cascade's mixers can each fan
  their shard across the same worker fleet.
* **Backpressure.**  Every inter-stage queue is bounded by ``queue_depth``
  shards; a fast producer blocks instead of buffering the whole stream, so
  memory stays proportional to ``num_stages × queue_depth × shard_size``.
* **Order preservation.**  Queues are FIFO and stages emit in order, so the
  sink observes shards in index order; :class:`ShardReassembler` helps
  stages whose work completes out of order (a shuffle scatters source items
  across output positions) release contiguous shards as soon as they are
  whole.
* **Error propagation and cancellation.**  The first exception raised by any
  stage (or the source, or the consumer callback) cancels the whole
  pipeline: every blocked put/get is woken, every worker thread joins, and
  :meth:`StreamPipeline.run` re-raises the original exception unchanged.  A
  consumer can also end the stream early by raising :class:`StopPipeline`
  (used by streaming verification to stop on the first failed check).
* **Post-stream finalization.**  A stage's :meth:`Stage.finalize` runs
  *after* its end-of-stream marker has been handed downstream, so expensive
  side-products (a mixer's shadow shuffles and proof) overlap with
  downstream consumption of the main output instead of serializing the
  cascade.

The scheduler is deliberately deterministic from the outside: given the same
source shards and stages, the collected output is identical regardless of
thread interleaving — schedule-dependent behaviour is confined to wall-clock
and is exactly what the CI stress job shakes out with randomized shard and
queue sizes.
"""

from __future__ import annotations

import abc
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.runtime.executor import Executor
from repro.runtime.sharding import parallel_map

#: How long a blocked queue operation waits before re-checking cancellation.
_POLL_SECONDS = 0.05

#: Default number of items per shard when a spec does not say otherwise.
DEFAULT_SHARD_SIZE = 32

#: Default bound (in shards) on every inter-stage queue.
DEFAULT_QUEUE_DEPTH = 4


class StopPipeline(Exception):
    """Raised by a consumer callback to cancel the rest of the stream cleanly.

    Stages must not raise this; it is the *sink's* way of saying "I have seen
    enough" (e.g. a verification pipeline stopping at the first failure).
    """


class _Cancelled(Exception):
    """Internal: a blocked queue operation observed the cancel event."""


@dataclass(frozen=True)
class Shard:
    """An indexed batch of work items flowing through the pipeline."""

    index: int
    items: List[Any]

    def __len__(self) -> int:
        return len(self.items)


def shard_boundaries(total: int, shard_size: int) -> List[Tuple[int, int]]:
    """The ``[start, end)`` ranges covered by each shard of a ``total``-item stream."""
    if shard_size < 1:
        raise ValueError("shard size must be >= 1")
    return [(start, min(start + shard_size, total)) for start in range(0, total, shard_size)]


def iter_shards(items: Sequence[Any], shard_size: int) -> Iterator[Shard]:
    """Split ``items`` into contiguous :class:`Shard`s of at most ``shard_size``."""
    for index, (start, end) in enumerate(shard_boundaries(len(items), shard_size)):
        yield Shard(index=index, items=list(items[start:end]))


class Stage(abc.ABC):
    """One stage of a :class:`StreamPipeline`.

    The scheduler calls, in order and from a single dedicated thread:
    ``process(shard)`` for every input shard; ``finish()`` once the input
    stream ends (emit any buffered tail shards); then — after the stage's
    end-of-stream marker has been handed downstream — ``finalize()`` for
    post-stream work whose results leave through a side channel (e.g. a
    mixer's proof).  ``process``/``finish`` yield output shards; a stage must
    emit shards in index order (use :class:`ShardReassembler` when work
    completes out of order).
    """

    name: str = "stage"

    #: Bound by the scheduler before the run starts; long-running ``finalize``
    #: implementations should poll :meth:`should_abort` between work units so
    #: a failure elsewhere in the pipeline does not wait on doomed work.
    _should_abort: Callable[[], bool] = staticmethod(lambda: False)

    def bind_abort(self, should_abort: Callable[[], bool]) -> None:
        self._should_abort = should_abort

    def should_abort(self) -> bool:
        """Has the pipeline been cancelled (error or :class:`StopPipeline`)?"""
        return self._should_abort()

    @abc.abstractmethod
    def process(self, shard: Shard) -> Iterable[Shard]:
        """Consume one input shard; yield zero or more output shards."""

    def finish(self) -> Iterable[Shard]:
        """Input stream ended: yield any remaining output shards."""
        return ()

    def finalize(self) -> None:
        """Post-stream hook, run after downstream has the end-of-stream marker."""


class MapStage(Stage):
    """A stateless 1:1 stage: apply ``fn`` to every item of every shard.

    ``fn`` runs through :func:`repro.runtime.sharding.parallel_map`, so a
    thread/process executor parallelizes *within* the shard while the
    pipeline overlaps *across* stages.  ``fn`` must be module-level when the
    executor is process-backed (pickling).
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        executor: Optional[Executor] = None,
        name: Optional[str] = None,
        chunksize: Optional[int] = None,
    ):
        self.fn = fn
        self.executor = executor
        self.chunksize = chunksize
        self.name = name or getattr(fn, "__name__", "map")

    def process(self, shard: Shard) -> Iterable[Shard]:
        yield Shard(shard.index, parallel_map(self.fn, shard.items, executor=self.executor, chunksize=self.chunksize))


class ShardReassembler:
    """Order-preserving reassembly of out-of-order item completions.

    Built from the stream's shard boundaries; :meth:`add` records a completed
    item at an absolute position and returns every shard that became both
    complete and next-in-order.  Used by stages (like a shuffle) whose output
    positions fill in scattered order but must leave in stream order.
    """

    def __init__(self, boundaries: Sequence[Tuple[int, int]]):
        self._boundaries = list(boundaries)
        total = self._boundaries[-1][1] if self._boundaries else 0
        self._slots: List[Any] = [None] * total
        self._missing = [end - start for start, end in self._boundaries]
        self._shard_of = [0] * total
        for index, (start, end) in enumerate(self._boundaries):
            for position in range(start, end):
                self._shard_of[position] = index
        self._next_shard = 0

    def add(self, position: int, value: Any) -> List[Shard]:
        """Record ``value`` at ``position``; return newly releasable shards."""
        self._slots[position] = value
        shard_index = self._shard_of[position]
        self._missing[shard_index] -= 1
        released: List[Shard] = []
        while self._next_shard < len(self._boundaries) and self._missing[self._next_shard] == 0:
            start, end = self._boundaries[self._next_shard]
            released.append(Shard(self._next_shard, self._slots[start:end]))
            self._next_shard += 1
        return released

    @property
    def pending_shards(self) -> int:
        """How many shards have not been released yet."""
        return len(self._boundaries) - self._next_shard


class StreamPipeline:
    """A linear chain of :class:`Stage`s connected by bounded queues."""

    def __init__(self, stages: Sequence[Stage], queue_depth: int = DEFAULT_QUEUE_DEPTH, name: str = "pipeline"):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.stages = list(stages)
        self.queue_depth = queue_depth
        self.name = name
        self._cancel = threading.Event()
        self._error_lock = threading.Lock()
        self._error: Optional[BaseException] = None
        self._ran = False
        #: The caller's trace context, captured by :meth:`run`.  Stage and
        #: source threads start context-clean (plain ``threading.Thread``),
        #: so each attaches this explicitly — stage spans then parent under
        #: the tally span that drove the pipeline, not a fresh trace apiece.
        self._context: Optional[telemetry.TraceContext] = None

    # ------------------------------------------------------------------ internals

    def _record_error(self, exc: BaseException) -> None:
        with self._error_lock:
            if self._error is None:
                self._error = exc
        self._cancel.set()

    def _put(self, q: "queue.Queue", item: Any, label: Optional[str] = None) -> None:
        stalled = False
        while True:
            if self._cancel.is_set():
                raise _Cancelled()
            try:
                q.put(item, timeout=_POLL_SECONDS)
            except queue.Full:
                # Count each put that blocked at least once: a high stall
                # count on one queue names the slow stage downstream of it.
                if label is not None and not stalled and telemetry.enabled():
                    stalled = True
                    telemetry.counter("pipeline.backpressure.stalls", pipeline=self.name, queue=label)
                continue
            if label is not None and telemetry.enabled():
                # Sampled depth after our put; the snapshot keeps the
                # high-water mark, i.e. how close the queue came to its bound.
                telemetry.gauge("pipeline.queue.depth", q.qsize(), pipeline=self.name, queue=label)
            return

    def _get(self, q: "queue.Queue") -> Any:
        while True:
            if self._cancel.is_set():
                raise _Cancelled()
            try:
                return q.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue

    def _feed(self, source: Iterable[Shard], out: "queue.Queue", sentinel: object) -> None:
        token = telemetry.attach(self._context) if self._context is not None else None
        try:
            for shard in source:
                self._put(out, shard, "source")
            self._put(out, sentinel)
        except _Cancelled:
            pass
        except BaseException as exc:  # noqa: BLE001 - propagated to run()
            self._record_error(exc)
        finally:
            if token is not None:
                telemetry.detach(token)

    def _work(self, stage: Stage, inbox: "queue.Queue", out: "queue.Queue", sentinel: object) -> None:
        token = telemetry.attach(self._context) if self._context is not None else None
        try:
            while True:
                item = self._get(inbox)
                if item is sentinel:
                    with telemetry.span("pipeline.finish", pipeline=self.name, stage=stage.name):
                        for shard in stage.finish():
                            self._put(out, shard, stage.name)
                    self._put(out, sentinel)
                    # Post-stream work runs with downstream already unblocked:
                    # this is what lets a mixer compute its shadow proof while
                    # the next mixer consumes the main output.  Skipped when
                    # the pipeline is already dead.
                    if not self._cancel.is_set():
                        with telemetry.span("pipeline.finalize", pipeline=self.name, stage=stage.name):
                            stage.finalize()
                    return
                # The span covers shard service time *including* any blocked
                # put downstream — stalls are separated out by the
                # pipeline.backpressure.stalls counter on the outbound queue.
                with telemetry.span(
                    "pipeline.stage",
                    pipeline=self.name,
                    stage=stage.name,
                    shard=item.index,
                    items=len(item),
                ):
                    for shard in stage.process(item):
                        self._put(out, shard, stage.name)
        except _Cancelled:
            pass
        except BaseException as exc:  # noqa: BLE001 - propagated to run()
            self._record_error(exc)
        finally:
            if token is not None:
                telemetry.detach(token)

    # ------------------------------------------------------------------ running

    def run(
        self,
        source: Iterable[Shard],
        consume: Optional[Callable[[Shard], None]] = None,
    ) -> List[Shard]:
        """Drive ``source`` through every stage; return the sink's shards in order.

        ``consume`` is called in the caller's thread for every output shard as
        it arrives; raising :class:`StopPipeline` from it cancels the rest of
        the stream and returns the shards collected so far.  Any other
        exception — from a stage, the source, or ``consume`` — cancels the
        pipeline and re-raises once every worker thread has exited.

        A pipeline instance is single-use: ``run`` may only be called once.
        """
        if self._ran:
            raise RuntimeError("a StreamPipeline instance can only run once")
        self._ran = True
        self._context = telemetry.current_context() if telemetry.enabled() else None
        for stage in self.stages:
            stage.bind_abort(self._cancel.is_set)
        sentinel = object()
        queues: List["queue.Queue"] = [queue.Queue(maxsize=self.queue_depth) for _ in range(len(self.stages) + 1)]
        threads = [
            threading.Thread(
                target=self._feed, args=(source, queues[0], sentinel), name=f"{self.name}-source", daemon=True
            )
        ]
        threads += [
            threading.Thread(
                target=self._work,
                args=(stage, queues[i], queues[i + 1], sentinel),
                name=f"{self.name}-{i}-{stage.name}",
                daemon=True,
            )
            for i, stage in enumerate(self.stages)
        ]
        for thread in threads:
            thread.start()

        collected: List[Shard] = []
        stopped = False
        try:
            while True:
                item = self._get(queues[-1])
                if item is sentinel:
                    break
                collected.append(item)
                if consume is not None:
                    consume(item)
        except StopPipeline:
            stopped = True
            self._cancel.set()
        except _Cancelled:
            pass
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            self._record_error(exc)
        finally:
            # Wake anything still blocked, then wait for every thread: stage
            # finalize() work is part of the pipeline's contract, so run()
            # only returns once all side-channel results are in place.
            if self._error is not None or stopped:
                self._cancel.set()
            for thread in threads:
                thread.join()
        if self._error is not None:
            raise self._error
        return collected


# ---------------------------------------------------------------------------
# Spec parsing (mirrors executor_from_spec / board_from_spec)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineSpec:
    """How the tally's dataflow should be scheduled.

    ``streaming=False`` is the serial reference path (each phase runs to
    completion).  With ``streaming=True``, shards of ``shard_size`` items
    flow through the stages concurrently, with every inter-stage queue
    bounded at ``queue_depth`` shards.  Both schedules produce bit-identical
    published output; only the wall clock moves.
    """

    streaming: bool = False
    shard_size: int = DEFAULT_SHARD_SIZE
    queue_depth: int = DEFAULT_QUEUE_DEPTH

    def __post_init__(self) -> None:
        if self.shard_size < 1:
            raise ValueError("pipeline shard size must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("pipeline queue depth must be >= 1")


#: The serial reference schedule (what ``pipeline_spec="serial"`` selects).
SERIAL_PIPELINE = PipelineSpec(streaming=False)


def pipeline_from_spec(spec: Optional[str]) -> PipelineSpec:
    """Build a :class:`PipelineSpec` from a config string.

    Accepted forms: ``"serial"`` (the default reference schedule) and
    ``"stream"``, ``"stream:<shard_size>"``,
    ``"stream:<shard_size>:<queue_depth>"``.
    """
    text = (spec or "serial").strip().lower()
    kind, _, rest = text.partition(":")
    if kind in ("serial", "off"):
        if rest:
            raise ValueError(f"the serial pipeline takes no parameters: {spec!r}")
        return SERIAL_PIPELINE
    if kind != "stream":
        raise ValueError(f"unknown pipeline spec {spec!r}; expected 'serial' or 'stream[:shard[:depth]]'")
    size_text, _, depth_text = rest.partition(":")
    try:
        shard_size = int(size_text) if size_text else DEFAULT_SHARD_SIZE
        queue_depth = int(depth_text) if depth_text else DEFAULT_QUEUE_DEPTH
    except ValueError as exc:
        raise ValueError(f"invalid pipeline spec {spec!r}") from exc
    return PipelineSpec(streaming=True, shard_size=shard_size, queue_depth=queue_depth)
