"""Random-linear-combination (small-exponent) batch verification.

Verifying ``n`` independent equations of the form ``LHS_i == RHS_i`` over a
prime-order group can be collapsed into the single check

    ∏_i LHS_i^{w_i}  ==  ∏_i RHS_i^{w_i}

for fresh random small exponents ``w_i``.  If every equation holds the
combined check always passes; if any single equation fails, the combined
check fails except with probability ``2^-|w|`` (Bellare–Garay–Rabin small
exponents test).  Because all terms land in one product, repeated bases —
the generator, the election public key, shared proof bases — collapse into a
*single* exponentiation with the summed exponent, which is where the batch
saves most of its work.

Three instantiations used by the tally hot paths:

* :func:`batch_schnorr_verify` — ballot signature checks in
  ``TallyPipeline._valid_ballots`` (one generator exponentiation for the
  whole batch instead of one per signature);
* :func:`batch_chaum_pedersen_verify` — Chaum–Pedersen transcripts
  (decryption-share and tagging-step proofs) in auditing paths;
* :func:`batch_reencryption_verify` — the shadow-mix openings of the shuffle
  proofs, where the per-item work drops from two full-width exponentiations
  to two ``|w|``-bit ones.

Batch checks are probabilistic accept/reject for the *whole* batch; callers
that need per-item verdicts use :func:`verify_signatures` which falls back to
a bisecting search only when a batch fails (the common all-valid case stays
on the fast path).
"""

from __future__ import annotations

import secrets
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.chaum_pedersen import (
    ChaumPedersenCommit,
    ChaumPedersenStatement,
    ChaumPedersenTranscript,
    fiat_shamir_challenge,
)
from repro.crypto.dlog_proof import DlogProof, dlog_challenge
from repro.crypto.elgamal import DecryptionShare, ElGamal, ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.crypto.schnorr import SchnorrSignature, schnorr_challenge, schnorr_verify
from repro.runtime.executor import Executor
from repro.runtime.precompute import multi_element_power
from repro.runtime.sharding import merge_shards, parallel_map, shard_contiguous

DEFAULT_WEIGHT_BITS = 128
DEFAULT_SIGNATURE_CHUNK = 64

SignatureItem = Tuple[GroupElement, bytes, SchnorrSignature]
ReencryptionItem = Tuple[ElGamalCiphertext, ElGamalCiphertext, int]


def _weight_bits(group: Group, weight_bits: int) -> int:
    # Weights must stay below the group order; for the toy test group this
    # degrades soundness to ~2^-60, which is still far beyond test flakiness.
    return max(8, min(weight_bits, group.order.bit_length() - 2))


def _random_weights(group: Group, count: int, weight_bits: int) -> List[int]:
    bits = _weight_bits(group, weight_bits)
    return [secrets.randbits(bits) | 1 for _ in range(count)]


class ProductAccumulator:
    """Accumulates ``∏ base^exponent`` terms, collapsing repeated bases.

    :meth:`value` evaluates the whole product in **one** multi-exponentiation
    (:func:`repro.runtime.precompute.multi_element_power`): hot bases with
    fixed-base tables go through their windowed tables, everything else
    shares a single Straus/Pippenger squaring chain.  Verifiers keep their
    LHS and RHS as *two* accumulators compared for equality rather than
    folding ``RHS^{-1}`` into one product — negating an RLC weight mod the
    order turns a deliberately small (``|w|``-bit) exponent into a full-width
    one, which would forfeit most of the batching win.
    """

    __slots__ = ("_group", "_terms")

    def __init__(self, group: Group):
        self._group = group
        self._terms: Dict[bytes, Tuple[GroupElement, int]] = {}

    def multiply(self, base: GroupElement, exponent: int) -> None:
        exponent %= self._group.order
        key = base.to_bytes()
        entry = self._terms.get(key)
        if entry is None:
            self._terms[key] = (base, exponent)
        else:
            self._terms[key] = (entry[0], (entry[1] + exponent) % self._group.order)

    def value(self) -> GroupElement:
        bases: List[GroupElement] = []
        exponents: List[int] = []
        for base, exponent in self._terms.values():
            if exponent:
                bases.append(base)
                exponents.append(exponent)
        return multi_element_power(self._group, bases, exponents)


# ---------------------------------------------------------------------------
# Schnorr signatures
# ---------------------------------------------------------------------------


def batch_schnorr_verify(items: Sequence[SignatureItem], weight_bits: int = DEFAULT_WEIGHT_BITS) -> bool:
    """Accept iff every ``(public, message, signature)`` triple verifies.

    Combined equation (weights ``w_i``, challenges ``e_i``):

        g^{Σ w_i·s_i}  ==  ∏ R_i^{w_i} · pk_i^{w_i·e_i}
    """
    if not items:
        return True
    if len(items) == 1:
        public, message, signature = items[0]
        return schnorr_verify(public, message, signature)
    group = items[0][0].group
    weights = _random_weights(group, len(items), weight_bits)
    response_sum = 0
    rhs = ProductAccumulator(group)
    for (public, message, signature), weight in zip(items, weights):
        challenge = schnorr_challenge(group, signature.commitment, public, message)
        response_sum = (response_sum + weight * signature.response) % group.order
        rhs.multiply(signature.commitment, weight)
        rhs.multiply(public, weight * challenge)
    return group.power(response_sum) == rhs.value()


def _verify_signature_chunk(items: Sequence[SignatureItem]) -> List[bool]:
    """Per-item verdicts for a chunk: batch first, bisect only on failure.

    The fold-then-bisect algorithm lives in :func:`repro.audit.kinds.
    chunk_verdicts` (generic over every registered check kind); this wrapper
    applies it to the ``schnorr`` kind, whose evidence tuples are exactly
    these items.
    """
    from repro.audit.kinds import chunk_verdicts, get_kind

    return chunk_verdicts(get_kind("schnorr"), items)


def verify_signatures(
    items: Sequence[SignatureItem],
    executor: Optional[Executor] = None,
    chunk_size: int = DEFAULT_SIGNATURE_CHUNK,
) -> List[bool]:
    """Per-item Schnorr verdicts with batch fast path and executor fan-out."""
    if not items:
        return []
    shards = shard_contiguous(list(items), max(1, (len(items) + chunk_size - 1) // chunk_size))
    return merge_shards(parallel_map(_verify_signature_chunk, shards, executor=executor, chunksize=1))


# ---------------------------------------------------------------------------
# Chaum–Pedersen transcripts
# ---------------------------------------------------------------------------


def batch_chaum_pedersen_verify(
    transcripts: Sequence[ChaumPedersenTranscript],
    context: Optional[bytes] = None,
    weight_bits: int = DEFAULT_WEIGHT_BITS,
) -> bool:
    """Accept iff every transcript satisfies the Chaum–Pedersen equations.

    With ``context`` given, each transcript's challenge is additionally
    required to equal its Fiat–Shamir hash (the non-interactive variant).
    Both verification equations of every transcript are folded into one
    product comparison with independent random weights.
    """
    if not transcripts:
        return True
    group = transcripts[0].statement.group
    weights = _random_weights(group, 2 * len(transcripts), weight_bits)
    lhs = ProductAccumulator(group)
    rhs = ProductAccumulator(group)
    for index, transcript in enumerate(transcripts):
        if context is not None:
            expected = fiat_shamir_challenge(transcript.statement, transcript.commit, context)
            if transcript.challenge != expected:
                return False
        statement = transcript.statement
        challenge = transcript.challenge
        response = transcript.response
        w_g, w_h = weights[2 * index], weights[2 * index + 1]
        lhs.multiply(statement.base_g, w_g * response)
        lhs.multiply(statement.value_g, w_g * challenge)
        rhs.multiply(transcript.commit.commit_g, w_g)
        lhs.multiply(statement.base_h, w_h * response)
        lhs.multiply(statement.value_h, w_h * challenge)
        rhs.multiply(transcript.commit.commit_h, w_h)
    return lhs.value() == rhs.value()


def decryption_share_transcript(
    public_share: GroupElement,
    ciphertext: ElGamalCiphertext,
    share: DecryptionShare,
) -> ChaumPedersenTranscript:
    """Express a decryption-share proof as a Chaum–Pedersen transcript.

    A decryption share proves ``log_g(pk_i) == log_c1(share)`` with an
    *addition-form* response ``r = w + e·sk``, whereas
    :func:`batch_chaum_pedersen_verify` folds the subtraction-form equation
    ``base^r · value^e == commit``.  Negating the challenge converts between
    the two: ``g^r == commit_g · pk_i^e  ⇔  g^r · pk_i^{-e} == commit_g``.
    The challenge is recomputed from the share data (there is no independent
    challenge field to cross-check), so the transcript is sound by
    construction and many shares fold into one RLC product.
    """
    group = public_share.group
    challenge = group.hash_to_scalar(
        b"elgamal-decryption-share",
        public_share.to_bytes(),
        share.share.to_bytes(),
        share.commitment_g.to_bytes(),
        share.commitment_c1.to_bytes(),
        ciphertext.to_bytes(),
    )
    return ChaumPedersenTranscript(
        statement=ChaumPedersenStatement(
            base_g=group.generator,
            base_h=ciphertext.c1,
            value_g=public_share,
            value_h=share.share,
        ),
        commit=ChaumPedersenCommit(commit_g=share.commitment_g, commit_h=share.commitment_c1),
        challenge=(-challenge) % group.order,
        response=share.response,
    )


DecryptionShareItem = Tuple[GroupElement, ElGamalCiphertext, DecryptionShare]


def batch_decryption_share_verify(
    items: Sequence[DecryptionShareItem],
    weight_bits: int = DEFAULT_WEIGHT_BITS,
) -> bool:
    """Accept iff every ``(public_share, ciphertext, share)`` triple verifies.

    Folds the two verification equations of every share into the
    Chaum–Pedersen RLC product via :func:`decryption_share_transcript`, which
    is what lets ``verify=True`` decryption paths check a whole quorum's
    shares at the cost of a couple of full-width exponentiations.
    """
    if not items:
        return True
    transcripts = [
        decryption_share_transcript(public_share, ciphertext, share)
        for public_share, ciphertext, share in items
    ]
    return batch_chaum_pedersen_verify(transcripts, context=None, weight_bits=weight_bits)


# ---------------------------------------------------------------------------
# Dlog (Schnorr PoK) proofs
# ---------------------------------------------------------------------------


DlogItem = Tuple[DlogProof, bytes]


def batch_dlog_verify(items: Sequence[DlogItem], weight_bits: int = DEFAULT_WEIGHT_BITS) -> bool:
    """Accept iff every ``(proof, context)`` dlog proof verifies.

    Single-equation fold: ``base^r == commit · value^e`` for every proof,
    weighted and collapsed into one product comparison.  Challenges are
    recomputed (Fiat–Shamir), so a tampered transcript fails either the
    recomputation implicitly (different ``e``) or the folded equation.
    """
    if not items:
        return True
    if len(items) == 1:
        proof, context = items[0]
        from repro.crypto.dlog_proof import verify_dlog

        return verify_dlog(proof, context)
    group = items[0][0].base.group
    weights = _random_weights(group, len(items), weight_bits)
    lhs = ProductAccumulator(group)
    rhs = ProductAccumulator(group)
    order = group.order
    for (proof, context), weight in zip(items, weights):
        challenge = dlog_challenge(proof, context)
        lhs.multiply(proof.base, weight * proof.response)
        lhs.multiply(proof.value, (-weight * challenge) % order)
        rhs.multiply(proof.commitment, weight)
    return lhs.value() == rhs.value()


# ---------------------------------------------------------------------------
# Re-encryption openings (shuffle proofs)
# ---------------------------------------------------------------------------


def batch_reencryption_verify(
    elgamal: ElGamal,
    public_key: GroupElement,
    items: Sequence[ReencryptionItem],
    weight_bits: int = DEFAULT_WEIGHT_BITS,
) -> bool:
    """Accept iff ``target_i == reencrypt(source_i, r_i)`` for every item.

    Expanding the re-encryption definition, each item contributes the two
    equations ``src.c1 · g^{r} == tgt.c1`` and ``src.c2 · pk^{r} == tgt.c2``;
    the weighted product collapses all generator (resp. public-key) factors
    into a single full-width exponentiation, leaving only ``|w|``-bit work
    per ciphertext component.
    """
    if not items:
        return True
    group = elgamal.group
    weights = _random_weights(group, 2 * len(items), weight_bits)
    lhs = ProductAccumulator(group)
    rhs = ProductAccumulator(group)
    generator_exponent = 0
    key_exponent = 0
    order = group.order
    for index, (source, target, randomness) in enumerate(items):
        w1, w2 = weights[2 * index], weights[2 * index + 1]
        generator_exponent = (generator_exponent + w1 * randomness) % order
        key_exponent = (key_exponent + w2 * randomness) % order
        lhs.multiply(source.c1, w1)
        rhs.multiply(target.c1, w1)
        lhs.multiply(source.c2, w2)
        rhs.multiply(target.c2, w2)
    lhs.multiply(group.generator, generator_exponent)
    lhs.multiply(public_key, key_exponent)
    return lhs.value() == rhs.value()
