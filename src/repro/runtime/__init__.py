"""repro.runtime — the parallel execution engine for the reproduction.

The hot paths of the Votegral pipeline (mix cascades, shuffle verification,
tag filtering, threshold decryption, ballot signature checks) are
embarrassingly parallel per ballot and per proof round.  This subsystem
gives them a single execution boundary plus the two classic algorithmic
accelerations that compose with any backend:

* :mod:`repro.runtime.executor` — pluggable ``Serial``/``Thread``/``Process``
  executors with order-preserving ``map``/``starmap`` and a module-level
  default (configure per election via
  :attr:`repro.election.config.ElectionConfig.executor_spec`);
* :mod:`repro.runtime.precompute` — windowed fixed-base exponentiation
  tables, transparently accelerating ``group.power`` and ElGamal operations
  on hot bases (generator, election public key);
* :mod:`repro.runtime.batch` — random-linear-combination batch verification
  for Schnorr signatures, Chaum–Pedersen transcripts, and the re-encryption
  openings of shuffle proofs;
* :mod:`repro.runtime.sharding` — how per-ballot work is split across
  workers so parallel output stays bit-identical to the serial reference;
* :mod:`repro.runtime.pipeline` — a streaming shard pipeline (bounded
  per-stage queues, order-preserving reassembly, backpressure, error
  propagation/cancellation) that lets the mix cascade and the
  filter→mix→decrypt path overlap stages instead of running phase barriers
  (configure per election via
  :attr:`repro.election.config.ElectionConfig.pipeline_spec`).

Importing this package installs the fixed-base accelerator hook; everything
else is opt-in per call (``executor=...``) or per election (config).
"""

from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_workers,
    executor_from_spec,
    get_default_executor,
    resolve_executor,
    set_default_executor,
)
from repro.runtime.pipeline import (
    MapStage,
    PipelineSpec,
    Shard,
    ShardReassembler,
    Stage,
    StopPipeline,
    StreamPipeline,
    iter_shards,
    pipeline_from_spec,
    shard_boundaries,
)
from repro.runtime.precompute import (
    FixedBaseTable,
    clear_tables,
    element_power,
    multi_element_power,
    set_precompute_enabled,
    warm_fixed_base,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_workers",
    "executor_from_spec",
    "get_default_executor",
    "set_default_executor",
    "resolve_executor",
    "FixedBaseTable",
    "element_power",
    "multi_element_power",
    "warm_fixed_base",
    "set_precompute_enabled",
    "clear_tables",
    "Shard",
    "Stage",
    "MapStage",
    "ShardReassembler",
    "StreamPipeline",
    "StopPipeline",
    "PipelineSpec",
    "pipeline_from_spec",
    "iter_shards",
    "shard_boundaries",
]
