"""Windowed fixed-base exponentiation tables for hot bases.

Almost every exponentiation in the pipeline uses one of two bases: the group
generator ``g`` (key generation, Schnorr commitments, trivial encryptions,
proof responses) or the election authority's public key ``A_pk`` (every
ElGamal encryption and re-encryption).  For the large-modulus groups the
paper's §7.3 blames for Civitas' slowness, a classic windowed fixed-base
table turns each such exponentiation from a full square-and-multiply into
roughly ``⌈bits/w⌉`` modular multiplications of precomputed powers.

The table for a base ``B`` with window width ``w`` stores

    T[i][j] = B^(j · 2^(w·i))        for j in [1, 2^w)

so ``B^e = ∏_i T[i][digit_i(e)]`` where ``digit_i`` is the i-th ``w``-bit
digit of ``e``.  Building a table costs about ``⌈bits/w⌉ · 2^w`` group
operations and therefore only pays off for bases that are reused; the module
keeps a small usage counter per base and builds a table automatically once a
base has been exponentiated :data:`AUTO_BUILD_THRESHOLD` times.  Setup code
that *knows* a base will be hot (the generator, the election public key)
calls :func:`warm_fixed_base` up front.

Acceleration is transparent:

* :func:`element_power` is the drop-in replacement for ``base ** scalar``
  used by :mod:`repro.crypto.elgamal`;
* importing this module installs a generator-power hook into
  :mod:`repro.crypto.group`, so every ``group.power(x)`` call in the code
  base benefits without modification.

Small groups (below :data:`MIN_ORDER_BITS` of order) are left untouched —
CPython's native ``pow`` beats any Python-level table there, and the test
suite's toy group stays on the exact reference path.

Tables are pure public data (powers of a public base), so they can be
**persisted**: point :func:`set_disk_cache` (or the
``REPRO_PRECOMPUTE_CACHE`` environment variable) at a directory and every
table built is serialized there, keyed by group, base and window width.
Process pools and repeated runs then load the table (one decode pass)
instead of rebuilding it (``⌈bits/w⌉ · 2^w`` group operations) — CI warms
the cache once per workspace via ``python -m repro.runtime.precompute``.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import bigint as _bigint_module
from repro.crypto import elgamal as _elgamal_module
from repro.crypto import group as _group_module
from repro.crypto.group import Group, GroupElement

MIN_ORDER_BITS = 192
DEFAULT_WINDOW_BITS = 5
AUTO_BUILD_THRESHOLD = 8
MAX_TABLES = 32
_MAX_TRACKED_BASES = 4096

#: Bump when the on-disk layout changes; stale entries are simply ignored.
DISK_FORMAT_VERSION = 1

_BaseKey = Tuple[int, bytes]


class FixedBaseTable:
    """A windowed precomputation table for one fixed base."""

    __slots__ = ("base", "window_bits", "_rows", "_order", "_identity")

    def __init__(self, base: GroupElement, window_bits: int = DEFAULT_WINDOW_BITS):
        if window_bits < 1:
            raise ValueError("window width must be at least one bit")
        group = base.group
        self.base = base
        self.window_bits = window_bits
        self._order = group.order
        self._identity = group.identity
        radix = 1 << window_bits
        digits = (self._order.bit_length() + window_bits - 1) // window_bits
        rows: List[List[GroupElement]] = []
        row_base = base
        for _ in range(digits):
            row: List[GroupElement] = [self._identity]
            current = row_base
            for _ in range(1, radix):
                row.append(current)
                current = current.operate(row_base)
            rows.append(row)
            row_base = current  # row_base ** radix
        self._rows = rows

    @classmethod
    def from_rows(
        cls, base: GroupElement, window_bits: int, rows: Sequence[Sequence[GroupElement]]
    ) -> "FixedBaseTable":
        """Rebuild a table from previously computed rows (disk-cache load)."""
        table = cls.__new__(cls)
        table.base = base
        table.window_bits = window_bits
        table._order = base.group.order
        table._identity = base.group.identity
        table._rows = [list(row) for row in rows]
        return table

    @property
    def num_group_elements(self) -> int:
        """How many precomputed elements the table holds (memory proxy)."""
        return sum(len(row) for row in self._rows)

    def power(self, scalar: int) -> GroupElement:
        """``base ** scalar`` via table lookups and multiplications."""
        exponent = scalar % self._order
        accumulator = self._identity
        mask = (1 << self.window_bits) - 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                accumulator = accumulator.operate(self._rows[index][digit])
            exponent >>= self.window_bits
            index += 1
        return accumulator


# ---------------------------------------------------------------------------
# Transparent per-base cache
# ---------------------------------------------------------------------------

_enabled = True
# LRU-ordered: most recently used table last.  When a new hot base would
# exceed MAX_TABLES, the least recently used table is evicted — long-lived
# processes running many elections keep acceleration for the *current*
# election's bases instead of pinning the first 32 forever.
_tables: "OrderedDict[_BaseKey, FixedBaseTable]" = OrderedDict()
_usage: Dict[_BaseKey, int] = {}


def set_precompute_enabled(flag: bool) -> bool:
    """Globally enable/disable table acceleration; returns the previous flag."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def precompute_enabled() -> bool:
    return _enabled


def clear_tables() -> None:
    """Drop every cached table and usage counter (mainly for tests)."""
    _tables.clear()
    _usage.clear()


def num_cached_tables() -> int:
    return len(_tables)


def _accelerable(group: Group) -> bool:
    return _enabled and group.order.bit_length() >= MIN_ORDER_BITS


def _base_key(base: GroupElement) -> _BaseKey:
    # Group backends are lru-cached singletons, so id() is a stable namespace;
    # the canonical encoding distinguishes bases within a group.
    return (id(base.group), base.to_bytes())


# ---------------------------------------------------------------------------
# Disk cache: tables are public data, so persist them across processes/runs
# ---------------------------------------------------------------------------

_disk_cache_dir: Optional[Path] = None
_disk_hits = 0
_disk_misses = 0


def set_disk_cache(path: Optional[os.PathLike]) -> Optional[Path]:
    """Point the table disk cache at ``path`` (``None`` disables it).

    Returns the previous cache directory.  The directory is created lazily on
    first write; loads and saves are best-effort — any I/O or decode problem
    silently falls back to an in-memory build, so a corrupt or unwritable
    cache can never break a tally.
    """
    global _disk_cache_dir
    previous = _disk_cache_dir
    # expanduser: CI and shells hand in "~/.cache/..." unexpanded via env vars.
    _disk_cache_dir = Path(path).expanduser() if path is not None else None
    return previous


def disk_cache_dir() -> Optional[Path]:
    return _disk_cache_dir


def disk_cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` of disk-cache lookups since process start."""
    return (_disk_hits, _disk_misses)


def _cache_file(group: Group, base_bytes: bytes, window_bits: int) -> Optional[Path]:
    if _disk_cache_dir is None:
        return None
    digest = hashlib.sha256(
        b"|".join(
            [
                b"fixed-base-table",
                str(DISK_FORMAT_VERSION).encode(),
                group.name.encode(),
                str(group.order).encode(),
                base_bytes,
                str(window_bits).encode(),
            ]
        )
    ).hexdigest()
    return _disk_cache_dir / f"table-{digest}.json"


def _save_table(table: FixedBaseTable) -> bool:
    """Serialize ``table`` into the disk cache; returns True on success.

    The format is plain JSON over hex strings — deliberately *not* pickle,
    so a crafted cache entry can corrupt at worst a lookup (caught below and
    by universal verification), never execute code at load time.
    """
    group = table.base.group
    path = _cache_file(group, table.base.to_bytes(), table.window_bits)
    if path is None:
        return False
    payload = {
        "format": DISK_FORMAT_VERSION,
        "group": group.name,
        "order": str(group.order),
        "base": table.base.to_bytes().hex(),
        "window_bits": table.window_bits,
        "rows": [[element.to_bytes().hex() for element in row] for row in table._rows],
    }
    temporary = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(temporary, "w") as handle:
            json.dump(payload, handle)
        os.replace(temporary, path)  # atomic: concurrent writers race benignly
        return True
    except (OSError, TypeError, ValueError):
        # Best-effort by contract: an unwritable directory must never break
        # the tally that triggered the build.
        try:
            temporary.unlink()
        except OSError:
            pass
        return False


def _load_table(base: GroupElement, window_bits: int) -> Optional[FixedBaseTable]:
    """Deserialize the table for ``base`` from the disk cache, if present.

    Validates the payload's identity fields and shape, decodes every element
    through the group's canonical decoder, and spot-checks the layout (row 0
    digit 1 must be the base itself).  A fully-consistent forgery beyond that
    would still be caught downstream: wrong powers produce wrong proofs,
    which universal verification rejects.
    """
    global _disk_hits, _disk_misses
    group = base.group
    path = _cache_file(group, base.to_bytes(), window_bits)
    if path is None:
        return None
    try:
        with open(path, "r") as handle:
            payload = json.load(handle)
        if (
            payload["format"] != DISK_FORMAT_VERSION
            or payload["group"] != group.name
            or payload["order"] != str(group.order)
            or payload["base"] != base.to_bytes().hex()
            or payload["window_bits"] != window_bits
        ):
            _disk_misses += 1
            return None
        radix = 1 << window_bits
        digits = (group.order.bit_length() + window_bits - 1) // window_bits
        raw_rows = payload["rows"]
        if len(raw_rows) != digits or any(len(row) != radix for row in raw_rows):
            _disk_misses += 1
            return None
        rows = [[group.element_from_bytes(bytes.fromhex(data)) for data in row] for row in raw_rows]
        if rows[0][1] != base or any(row[0] != group.identity for row in rows):
            _disk_misses += 1
            return None
        _disk_hits += 1
        return FixedBaseTable.from_rows(base, window_bits, rows)
    except (OSError, json.JSONDecodeError, KeyError, ValueError, EOFError, TypeError):
        _disk_misses += 1
        return None


def _install_table(key: _BaseKey, table: FixedBaseTable) -> None:
    while len(_tables) >= MAX_TABLES:
        _tables.popitem(last=False)  # evict least recently used
    _tables[key] = table
    _usage.pop(key, None)


def _build_or_load(base: GroupElement, window_bits: int) -> FixedBaseTable:
    """Load the table from the disk cache when possible, else build and save it."""
    table = _load_table(base, window_bits)
    if table is None:
        table = FixedBaseTable(base, window_bits)
        _save_table(table)
    return table


def warm_fixed_base(base: GroupElement, window_bits: int = DEFAULT_WINDOW_BITS) -> Optional[FixedBaseTable]:
    """Eagerly build (or fetch) the table for a known-hot base.

    Returns ``None`` when acceleration does not apply (disabled or small
    group).  A full cache evicts its least recently used table.
    """
    if not _accelerable(base.group):
        return None
    key = _base_key(base)
    table = _tables.get(key)
    if table is None:
        table = _build_or_load(base, window_bits)
        _install_table(key, table)
    else:
        _tables.move_to_end(key)
    return table


def element_power(base: GroupElement, scalar: int) -> GroupElement:
    """``base ** scalar``, through a fixed-base table once ``base`` proves hot."""
    if not _accelerable(base.group):
        return base.exponentiate(scalar)
    key = _base_key(base)
    table = _tables.get(key)
    if table is None:
        count = _usage.get(key, 0) + 1
        if count >= AUTO_BUILD_THRESHOLD:
            table = _build_or_load(base, DEFAULT_WINDOW_BITS)
            _install_table(key, table)
        else:
            if len(_usage) >= _MAX_TRACKED_BASES:
                _usage.clear()
            _usage[key] = count
            return base.exponentiate(scalar)
    else:
        _tables.move_to_end(key)
    return table.power(scalar)


def multi_element_power(
    group: Group, bases: Sequence[GroupElement], scalars: Sequence[int]
) -> GroupElement:
    """``∏ bases[i] ** scalars[i]`` with fixed-base tables folded in.

    The batched-verification folds (:mod:`repro.runtime.batch`) mix two kinds
    of bases: a few *hot* ones that recur in every equation (the generator,
    the election public key) and many one-shot ones (commitments,
    ciphertext components).  This entry point splits them: bases that
    already have a :class:`FixedBaseTable` are evaluated through their
    windowed table (each costs ``⌈bits/w⌉`` multiplications and nothing
    else), and only the remainder goes into the shared-squaring-chain
    multi-exponentiation (:meth:`Group.multi_exponentiate
    <repro.crypto.group.Group.multi_exponentiate>`).  Tables are *used* but
    never built here — one-shot RLC bases would churn the usage counters.

    Semantics are identical to ``group.multi_exponentiate(bases, scalars)``.
    """
    if len(bases) != len(scalars):
        raise ValueError(
            f"multi-exponentiation needs one scalar per base "
            f"(got {len(bases)} bases, {len(scalars)} scalars)"
        )
    if not _accelerable(group) or not _tables:
        return group.multi_exponentiate(bases, scalars)
    table_product: Optional[GroupElement] = None
    rest_bases: List[GroupElement] = []
    rest_scalars: List[int] = []
    for base, scalar in zip(bases, scalars):
        key = _base_key(base)
        table = _tables.get(key)
        if table is None:
            rest_bases.append(base)
            rest_scalars.append(scalar)
        else:
            _tables.move_to_end(key)
            term = table.power(scalar)
            table_product = term if table_product is None else table_product.operate(term)
    rest = group.multi_exponentiate(rest_bases, rest_scalars)
    return rest if table_product is None else table_product.operate(rest)


def _generator_power(group: Group, scalar: int) -> Optional[GroupElement]:
    """The hook :mod:`repro.crypto.group` consults for ``group.power``."""
    if not _accelerable(group):
        return None
    return element_power(group.generator, scalar)


# Install the accelerator hooks.  The crypto layer never imports the runtime;
# importing this module (or any part of repro.runtime) activates acceleration
# process-wide, and clearing the hooks restores the reference paths.
_group_module.set_power_accelerator(_generator_power)
_elgamal_module.set_element_power_hook(element_power)

# Cached tables hold elements of the pre-switch group singletons, so a bigint
# backend switch (test/tooling hook) must drop them alongside the groups.
_bigint_module.register_reset_hook(clear_tables)

# Honour the environment switch at import so forked workers, CLI runs and CI
# jobs share one cache directory without any plumbing.
if os.environ.get("REPRO_PRECOMPUTE_CACHE"):
    set_disk_cache(os.environ["REPRO_PRECOMPUTE_CACHE"])


def _warm_main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - CI entry point
    """``python -m repro.runtime.precompute``: pre-build generator tables.

    CI warms the cache once per (pip-cached) workspace so every subsequent
    test/bench process loads the large-group generator tables from disk.
    """
    import argparse

    parser = argparse.ArgumentParser(description="Warm the fixed-base table disk cache.")
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_PRECOMPUTE_CACHE") or str(Path.home() / ".cache" / "repro-votegral" / "precompute"),
        help="cache directory (default: $REPRO_PRECOMPUTE_CACHE or ~/.cache/repro-votegral/precompute)",
    )
    parser.add_argument(
        "--groups",
        nargs="*",
        default=["modp-2048", "modp-3072"],
        choices=["modp-2048", "modp-3072", "modp-256", "ed25519"],
        help="which groups' generator tables to warm",
    )
    args = parser.parse_args(argv)

    from repro.crypto.registry import group_by_name

    set_disk_cache(args.cache_dir)
    for name in args.groups:
        group = group_by_name(name)
        table = warm_fixed_base(group.generator)
        status = "skipped (small group)" if table is None else f"{table.num_group_elements} elements"
        print(f"warmed {name}: {status}")
    hits, misses = disk_cache_stats()
    print(f"disk cache at {args.cache_dir}: {hits} hit(s), {misses} miss(es)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_warm_main())
