"""Windowed fixed-base exponentiation tables for hot bases.

Almost every exponentiation in the pipeline uses one of two bases: the group
generator ``g`` (key generation, Schnorr commitments, trivial encryptions,
proof responses) or the election authority's public key ``A_pk`` (every
ElGamal encryption and re-encryption).  For the large-modulus groups the
paper's §7.3 blames for Civitas' slowness, a classic windowed fixed-base
table turns each such exponentiation from a full square-and-multiply into
roughly ``⌈bits/w⌉`` modular multiplications of precomputed powers.

The table for a base ``B`` with window width ``w`` stores

    T[i][j] = B^(j · 2^(w·i))        for j in [1, 2^w)

so ``B^e = ∏_i T[i][digit_i(e)]`` where ``digit_i`` is the i-th ``w``-bit
digit of ``e``.  Building a table costs about ``⌈bits/w⌉ · 2^w`` group
operations and therefore only pays off for bases that are reused; the module
keeps a small usage counter per base and builds a table automatically once a
base has been exponentiated :data:`AUTO_BUILD_THRESHOLD` times.  Setup code
that *knows* a base will be hot (the generator, the election public key)
calls :func:`warm_fixed_base` up front.

Acceleration is transparent:

* :func:`element_power` is the drop-in replacement for ``base ** scalar``
  used by :mod:`repro.crypto.elgamal`;
* importing this module installs a generator-power hook into
  :mod:`repro.crypto.group`, so every ``group.power(x)`` call in the code
  base benefits without modification.

Small groups (below :data:`MIN_ORDER_BITS` of order) are left untouched —
CPython's native ``pow`` beats any Python-level table there, and the test
suite's toy group stays on the exact reference path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.crypto import elgamal as _elgamal_module
from repro.crypto import group as _group_module
from repro.crypto.group import Group, GroupElement

MIN_ORDER_BITS = 192
DEFAULT_WINDOW_BITS = 5
AUTO_BUILD_THRESHOLD = 8
MAX_TABLES = 32
_MAX_TRACKED_BASES = 4096

_BaseKey = Tuple[int, bytes]


class FixedBaseTable:
    """A windowed precomputation table for one fixed base."""

    __slots__ = ("base", "window_bits", "_rows", "_order", "_identity")

    def __init__(self, base: GroupElement, window_bits: int = DEFAULT_WINDOW_BITS):
        if window_bits < 1:
            raise ValueError("window width must be at least one bit")
        group = base.group
        self.base = base
        self.window_bits = window_bits
        self._order = group.order
        self._identity = group.identity
        radix = 1 << window_bits
        digits = (self._order.bit_length() + window_bits - 1) // window_bits
        rows: List[List[GroupElement]] = []
        row_base = base
        for _ in range(digits):
            row: List[GroupElement] = [self._identity]
            current = row_base
            for _ in range(1, radix):
                row.append(current)
                current = current.operate(row_base)
            rows.append(row)
            row_base = current  # row_base ** radix
        self._rows = rows

    @property
    def num_group_elements(self) -> int:
        """How many precomputed elements the table holds (memory proxy)."""
        return sum(len(row) for row in self._rows)

    def power(self, scalar: int) -> GroupElement:
        """``base ** scalar`` via table lookups and multiplications."""
        exponent = scalar % self._order
        accumulator = self._identity
        mask = (1 << self.window_bits) - 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                accumulator = accumulator.operate(self._rows[index][digit])
            exponent >>= self.window_bits
            index += 1
        return accumulator


# ---------------------------------------------------------------------------
# Transparent per-base cache
# ---------------------------------------------------------------------------

_enabled = True
# LRU-ordered: most recently used table last.  When a new hot base would
# exceed MAX_TABLES, the least recently used table is evicted — long-lived
# processes running many elections keep acceleration for the *current*
# election's bases instead of pinning the first 32 forever.
_tables: "OrderedDict[_BaseKey, FixedBaseTable]" = OrderedDict()
_usage: Dict[_BaseKey, int] = {}


def set_precompute_enabled(flag: bool) -> bool:
    """Globally enable/disable table acceleration; returns the previous flag."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def precompute_enabled() -> bool:
    return _enabled


def clear_tables() -> None:
    """Drop every cached table and usage counter (mainly for tests)."""
    _tables.clear()
    _usage.clear()


def num_cached_tables() -> int:
    return len(_tables)


def _accelerable(group: Group) -> bool:
    return _enabled and group.order.bit_length() >= MIN_ORDER_BITS


def _base_key(base: GroupElement) -> _BaseKey:
    # Group backends are lru-cached singletons, so id() is a stable namespace;
    # the canonical encoding distinguishes bases within a group.
    return (id(base.group), base.to_bytes())


def _install_table(key: _BaseKey, table: FixedBaseTable) -> None:
    while len(_tables) >= MAX_TABLES:
        _tables.popitem(last=False)  # evict least recently used
    _tables[key] = table
    _usage.pop(key, None)


def warm_fixed_base(base: GroupElement, window_bits: int = DEFAULT_WINDOW_BITS) -> Optional[FixedBaseTable]:
    """Eagerly build (or fetch) the table for a known-hot base.

    Returns ``None`` when acceleration does not apply (disabled or small
    group).  A full cache evicts its least recently used table.
    """
    if not _accelerable(base.group):
        return None
    key = _base_key(base)
    table = _tables.get(key)
    if table is None:
        table = FixedBaseTable(base, window_bits)
        _install_table(key, table)
    else:
        _tables.move_to_end(key)
    return table


def element_power(base: GroupElement, scalar: int) -> GroupElement:
    """``base ** scalar``, through a fixed-base table once ``base`` proves hot."""
    if not _accelerable(base.group):
        return base.exponentiate(scalar)
    key = _base_key(base)
    table = _tables.get(key)
    if table is None:
        count = _usage.get(key, 0) + 1
        if count >= AUTO_BUILD_THRESHOLD:
            table = FixedBaseTable(base)
            _install_table(key, table)
        else:
            if len(_usage) >= _MAX_TRACKED_BASES:
                _usage.clear()
            _usage[key] = count
            return base.exponentiate(scalar)
    else:
        _tables.move_to_end(key)
    return table.power(scalar)


def _generator_power(group: Group, scalar: int) -> Optional[GroupElement]:
    """The hook :mod:`repro.crypto.group` consults for ``group.power``."""
    if not _accelerable(group):
        return None
    return element_power(group.generator, scalar)


# Install the accelerator hooks.  The crypto layer never imports the runtime;
# importing this module (or any part of repro.runtime) activates acceleration
# process-wide, and clearing the hooks restores the reference paths.
_group_module.set_power_accelerator(_generator_power)
_elgamal_module.set_element_power_hook(element_power)
