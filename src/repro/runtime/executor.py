"""Pluggable execution backends for the embarrassingly parallel hot paths.

Every heavy stage of the reproduction — mix-cascade re-encryption, shuffle
verification, tag blinding, threshold decryption, ballot signature checks —
is a pure function mapped over per-ballot (or per-round) work items.  This
module gives those stages a single, swappable execution boundary, in the
spirit of runtimes that hide the scheduling substrate behind a small API so
callers stay backend-agnostic:

* :class:`SerialExecutor` — a plain loop; the default, zero overhead, and the
  reference semantics every other backend must reproduce bit-for-bit;
* :class:`ThreadExecutor` — a thread pool; useful when the work releases the
  GIL (large-integer ``pow`` partially does) or is I/O-bound;
* :class:`ProcessExecutor` — a process pool (fork-server on POSIX); true
  multi-core scaling for the CPU-bound modular exponentiation workloads.

Backends preserve input order and surface worker exceptions unchanged, so a
caller cannot observe which backend ran its work (other than the wall clock).
Work functions handed to :class:`ProcessExecutor` must be module-level
(picklable); all runtime-internal helpers obey this rule.

A module-level *default executor* (initially serial) lets high-level code opt
a whole election into a backend once — e.g. via
:attr:`repro.election.config.ElectionConfig.executor_spec` — without threading
an executor argument through every call site.
"""

from __future__ import annotations

import abc
import os
import threading
import time
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro import telemetry


def available_workers() -> int:
    """The number of CPUs actually available to this process."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def chunk_evenly(items: Sequence[Any], num_chunks: int) -> List[List[Any]]:
    """Split ``items`` into at most ``num_chunks`` contiguous, near-equal chunks.

    Order is preserved: concatenating the chunks yields ``list(items)``.
    """
    n = len(items)
    num_chunks = max(1, min(num_chunks, n))
    base, extra = divmod(n, num_chunks)
    chunks: List[List[Any]] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


# Module-level chunk appliers so ProcessExecutor tasks stay picklable.


def _apply_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
    return [fn(item) for item in chunk]


def _star_chunk(fn: Callable[..., Any], chunk: Sequence[Tuple]) -> List[Any]:
    return [fn(*args) for args in chunk]


def _warm_task(seconds: float) -> None:
    """A short nap used by :meth:`Executor.warm` to force worker spawn."""
    time.sleep(seconds)


def _apply_with_context(carrier: str, applier: Callable, fn: Callable, chunk: Sequence[Any]) -> List[Any]:
    """Run one chunk under the submitting call's re-attached trace context.

    Pool workers do not inherit the submitter's ``contextvars`` state (thread
    pools reuse long-lived threads; fork-server processes snapshot whatever
    was active at fork time), so the trace context crosses the pool boundary
    as an encoded traceparent string.  Module-level so ProcessExecutor tasks
    stay picklable.
    """
    context = telemetry.parse_traceparent(carrier)
    if context is None:
        return applier(fn, chunk)
    token = telemetry.attach(context)
    try:
        return applier(fn, chunk)
    finally:
        telemetry.detach(token)


class Executor(abc.ABC):
    """An order-preserving ``map``/``starmap`` engine over a worker pool."""

    name: str = "abstract"

    @property
    @abc.abstractmethod
    def num_workers(self) -> int:
        """How many workers this executor fans out across (1 for serial)."""

    @abc.abstractmethod
    def _run_chunks(self, applier: Callable, fn: Callable, chunks: List[List[Any]]) -> List[List[Any]]:
        """Run ``applier(fn, chunk)`` for every chunk, preserving chunk order."""

    def close(self) -> None:
        """Release pool resources.  Safe to call more than once."""

    def warm(self) -> None:
        """Spin up any backing worker pool from the calling thread.

        Pool creation is otherwise lazy, which means a process pool could
        fork from inside a pipeline stage thread; calling ``warm`` before
        starting threads keeps the fork single-threaded.  A no-op for
        poolless backends.
        """

    # ------------------------------------------------------------------ mapping

    def _fan_out(self, applier: Callable, fn: Callable, items: Iterable[Any], chunksize: Optional[int]) -> List[Any]:
        work = list(items)
        if not work:
            return []
        if self.num_workers <= 1 or len(work) == 1:
            return applier(fn, work)
        if chunksize is not None and chunksize > 0:
            num_chunks = (len(work) + chunksize - 1) // chunksize
        else:
            # Fine enough for load balancing, coarse enough to amortize dispatch.
            num_chunks = self.num_workers * 4
        chunks = chunk_evenly(work, num_chunks)
        # One span per fan-out (not per item): the single-worker early return
        # above keeps the serial path span-free, so disabled-mode overhead on
        # the reference backend stays at zero.
        with telemetry.span(
            "executor.map",
            backend=self.name,
            op="star" if applier is _star_chunk else "map",
            items=len(work),
            chunks=len(chunks),
        ):
            results: List[Any] = []
            for chunk_result in self._run_chunks(applier, fn, chunks):
                results.extend(chunk_result)
            return results

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any], chunksize: Optional[int] = None) -> List[Any]:
        """``[fn(x) for x in items]`` with backend-defined parallelism."""
        return self._fan_out(_apply_chunk, fn, items, chunksize)

    def starmap(self, fn: Callable[..., Any], items: Iterable[Tuple], chunksize: Optional[int] = None) -> List[Any]:
        """``[fn(*args) for args in items]`` with backend-defined parallelism."""
        return self._fan_out(_star_chunk, fn, items, chunksize)

    # ------------------------------------------------------------------ context

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_workers={self.num_workers})"


class SerialExecutor(Executor):
    """The reference backend: a plain in-process loop."""

    name = "serial"

    @property
    def num_workers(self) -> int:
        return 1

    def _run_chunks(self, applier, fn, chunks):  # pragma: no cover - unreachable via _fan_out
        return [applier(fn, chunk) for chunk in chunks]


class _PoolExecutor(Executor):
    """Shared machinery for the concurrent.futures-backed backends."""

    def __init__(self, num_workers: Optional[int] = None):
        self._num_workers = max(1, num_workers if num_workers is not None else available_workers())
        self._pool = None
        self._pool_lock = threading.Lock()
        self._warmed = False

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @abc.abstractmethod
    def _make_pool(self):
        """Create the underlying concurrent.futures pool."""

    def _ensure_pool(self):
        # Locked: pipeline stages share one executor across threads, and two
        # racing first submissions must not each build a pool.
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def warm(self) -> None:
        """Create the pool and force every worker to spawn now.

        Submitting ``num_workers`` concurrent short sleeps makes
        ``concurrent.futures`` bring up its full worker complement now —
        pools otherwise spawn lazily, one worker per submit, so a
        partially-used pool could still fork from inside a stage thread.
        Idempotent per pool lifetime: after the first full warm, later calls
        return immediately (the streaming tally warms before every pipeline
        it builds).
        """
        if self._warmed and self._pool is not None:
            return
        with telemetry.span("executor.warm", backend=self.name, workers=self._num_workers):
            pool = self._ensure_pool()
            for future in [pool.submit(_warm_task, 0.01) for _ in range(self._num_workers)]:
                future.result()
            self._warmed = True

    def _run_chunks(self, applier, fn, chunks):
        pool = self._ensure_pool()
        context = telemetry.current_context() if telemetry.enabled() else None
        if context is None:
            futures = [pool.submit(applier, fn, chunk) for chunk in chunks]
        else:
            # Carry the fan-out span's context into every worker so spans
            # emitted inside ``fn`` parent under this map, not a stale trace.
            carrier = context.to_traceparent()
            futures = [
                pool.submit(_apply_with_context, carrier, applier, fn, chunk)
                for chunk in chunks
            ]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._warmed = False


class ThreadExecutor(_PoolExecutor):
    """A thread-pool backend (shared address space, subject to the GIL)."""

    name = "thread"

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self._num_workers, thread_name_prefix="repro-runtime")


class ProcessExecutor(_PoolExecutor):
    """A process-pool backend for true multi-core scaling.

    Work functions and their arguments must be picklable; the mod-p and
    Ed25519 group backends reduce to their canonical singletons so group
    identity checks keep holding across the process boundary.
    """

    name = "process"

    def _make_pool(self):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(max_workers=self._num_workers, mp_context=context)


# ---------------------------------------------------------------------------
# Default executor + spec parsing
# ---------------------------------------------------------------------------

_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}

_default_executor: Executor = SerialExecutor()


def get_default_executor() -> Executor:
    """The module-wide default used when a call site passes ``executor=None``."""
    return _default_executor


def set_default_executor(executor: Executor) -> Executor:
    """Install a new default executor; returns the previous one."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


def resolve_executor(executor: Optional[Executor]) -> Executor:
    """Resolve an optional per-call executor against the module default."""
    return executor if executor is not None else _default_executor


#: Spec prefixes served by :mod:`repro.cluster` (imported lazily so the
#: runtime layer never pays for — or cyclically depends on — the cluster
#: package unless a remote spec is actually requested).
_REMOTE_BACKENDS = ("remote", "cluster")


def executor_from_spec(spec: str) -> Executor:
    """Build an executor from a config string.

    Accepted forms: ``"serial"``, ``"thread"``, ``"thread:8"``, ``"process"``,
    ``"process:4"`` (worker counts default to the CPUs available to the
    process), plus the multi-node forms ``"cluster:N"`` (auto-spawn ``N``
    loopback worker subprocesses — tests, CI, benchmarks) and
    ``"remote:host:port[,host:port…]"`` (listen for
    ``python -m repro.cluster.worker`` daemons to enroll); see
    :func:`repro.cluster.executor.remote_executor_from_spec`.
    """
    text = (spec or "serial").strip().lower()
    backend, _, count_text = text.partition(":")
    if backend in _REMOTE_BACKENDS:
        from repro.cluster.executor import remote_executor_from_spec

        return remote_executor_from_spec(text)
    if backend not in _BACKENDS:
        expected = sorted(_BACKENDS) + sorted(_REMOTE_BACKENDS)
        raise ValueError(f"unknown executor backend {backend!r}; expected one of {expected}")
    if backend == "serial":
        if count_text:
            raise ValueError("the serial backend does not take a worker count")
        return SerialExecutor()
    workers: Optional[int] = None
    if count_text:
        try:
            workers = int(count_text)
        except ValueError as exc:
            raise ValueError(f"invalid worker count in executor spec {spec!r}") from exc
        if workers < 1:
            raise ValueError("executor worker count must be >= 1")
    return _BACKENDS[backend](num_workers=workers)
