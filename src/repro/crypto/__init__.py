"""Cryptographic substrate for the TRIP/Votegral reproduction.

Everything in Votegral runs over a cyclic group of prime order ``q`` with
generator ``g``.  The paper's prototype uses edwards25519 (via dedis/kyber);
this package exposes the same algebra behind an abstract :class:`Group`
interface with several interchangeable backends:

* :func:`repro.crypto.ed25519.ed25519_group` — the paper's curve, pure Python.
* :func:`repro.crypto.modp_group.modp_group_2048` — a 2048-bit Schnorr group
  (models the "large-modulus primitives" used by Civitas in §7.3).
* :func:`repro.crypto.modp_group.testing_group` — a small, *insecure* group for
  fast unit tests.

On top of the group the package provides ElGamal encryption, Schnorr
signatures, the interactive Chaum–Pedersen proof of discrete-log equality (the
Σ-protocol at the heart of TRIP, including the honest-verifier simulator used
to forge fake-credential transcripts), distributed key generation, verifiable
re-encryption shuffles, plaintext-equivalence tests and distributed
deterministic tagging.
"""

from repro.crypto.group import Group, GroupElement
from repro.crypto.modp_group import modp_group_2048, modp_group_3072, testing_group
from repro.crypto.ed25519 import ed25519_group
from repro.crypto.elgamal import ElGamal, ElGamalCiphertext, ElGamalKeyPair
from repro.crypto.schnorr import SchnorrSignature, SigningKeyPair, schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.chaum_pedersen import (
    ChaumPedersenProver,
    ChaumPedersenTranscript,
    chaum_pedersen_verify,
    simulate_chaum_pedersen,
)
from repro.crypto.dkg import DistributedKeyGeneration, AuthorityShare
from repro.crypto.mac import mac_sign, mac_verify

__all__ = [
    "Group",
    "GroupElement",
    "ed25519_group",
    "modp_group_2048",
    "modp_group_3072",
    "testing_group",
    "ElGamal",
    "ElGamalCiphertext",
    "ElGamalKeyPair",
    "SchnorrSignature",
    "SigningKeyPair",
    "schnorr_keygen",
    "schnorr_sign",
    "schnorr_verify",
    "ChaumPedersenProver",
    "ChaumPedersenTranscript",
    "chaum_pedersen_verify",
    "simulate_chaum_pedersen",
    "DistributedKeyGeneration",
    "AuthorityShare",
    "mac_sign",
    "mac_verify",
]
