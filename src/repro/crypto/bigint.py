"""Pluggable big-integer arithmetic backends for the mod-p groups.

CPython's arbitrary-precision integers are correct but leave a lot of raw
speed on the table for the 2048/3072-bit moduli the large-group benchmarks
run on: `gmpy2 <https://pypi.org/project/gmpy2/>`_ (GMP under the hood)
multiplies and exponentiates the same numbers several times faster.  This
module is the seam that lets :class:`~repro.crypto.modp_group.ModPGroup` use
either implementation without the rest of the stack noticing:

* the **python** backend is plain ``int`` arithmetic — always available, the
  reference semantics;
* the **gmpy2** backend stores element values as ``gmpy2.mpz`` and routes
  exponentiation through ``gmpy2.powmod``.  It is an optional dependency
  (``pip install repro-votegral[native]``); requesting it without the
  package installed raises :class:`BigIntError`.

Backend choice is a **per-process acceleration detail, never a protocol
parameter**: every element's canonical byte encoding, every hash, every
published transcript is bit-identical across backends (``mpz`` round-trips
exactly through ``int``), which the cross-backend test matrix pins down.  A
cluster can therefore mix workers with and without gmpy2 freely.

Selection:

* the ``REPRO_BIGINT`` environment variable (``auto`` | ``python`` |
  ``gmpy2``) picks the backend for the whole process, resolved lazily on
  first use and inherited by forked/spawned workers;
* ``auto`` (the default) uses gmpy2 when importable, else pure Python;
* :attr:`repro.election.config.ElectionConfig.bigint_spec` validates the
  same grammar per election — it never silently switches a live process
  (groups already constructed keep their arithmetic), it only *checks* that
  the requested backend is the active one and fails loudly otherwise.

Tests that genuinely need to switch backends mid-process use
:func:`set_active_backend`, which clears the registered group/table caches
so later group constructions pick up the new arithmetic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.errors import ReproError

#: Environment variable consulted (once, lazily) for the process-wide backend.
ENV_VAR = "REPRO_BIGINT"

#: The spec value meaning "fastest available backend".
AUTO = "auto"


class BigIntError(ReproError):
    """A big-integer backend was requested but cannot be used."""


@dataclass(frozen=True)
class BigIntBackend:
    """One big-integer arithmetic implementation.

    ``convert`` maps a Python ``int`` into the backend's value type (values
    support ``*``, ``%``, ``==``, ``hash`` and ``int()`` round-tripping);
    ``powmod``/``invert`` are the two operations whose native implementations
    carry almost all of the speedup.
    """

    name: str
    convert: Callable[[int], Any]
    powmod: Callable[[Any, int, Any], Any]
    invert: Callable[[Any, Any], Any]


def _python_backend() -> BigIntBackend:
    return BigIntBackend(
        name="python",
        convert=int,
        powmod=pow,
        invert=lambda value, modulus: pow(value, -1, modulus),
    )


def _gmpy2_backend() -> BigIntBackend:
    try:
        import gmpy2
    except ImportError as exc:  # pragma: no cover - exercised only without gmpy2
        raise BigIntError(
            "the gmpy2 big-integer backend was requested but gmpy2 is not "
            "installed (pip install gmpy2, or use REPRO_BIGINT=python)"
        ) from exc
    return BigIntBackend(
        name="gmpy2",
        convert=gmpy2.mpz,
        powmod=gmpy2.powmod,
        invert=gmpy2.invert,
    )


_FACTORIES: "dict[str, Callable[[], BigIntBackend]]" = {
    "python": _python_backend,
    "gmpy2": _gmpy2_backend,
}


def available_backends() -> List[str]:
    """Backend names that would resolve successfully in this process."""
    names = ["python"]
    try:
        import gmpy2  # noqa: F401
    except ImportError:
        pass
    else:
        names.append("gmpy2")
    return names


def resolve_backend(spec: str = AUTO) -> BigIntBackend:
    """Instantiate the backend for ``spec`` (``auto``/``python``/``gmpy2``).

    ``auto`` prefers gmpy2 when importable and silently falls back to pure
    Python; an explicit name is honoured exactly or raises
    :class:`BigIntError`.
    """
    name = (spec or AUTO).strip().lower()
    if name == AUTO:
        try:
            return _gmpy2_backend()
        except BigIntError:
            return _python_backend()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise BigIntError(
            f"unknown bigint backend {spec!r} (expected one of: auto, python, gmpy2)"
        )
    return factory()


_active: Optional[BigIntBackend] = None

# Callables that drop caches keyed to the previous backend's group instances
# (the mod-p group singletons, fixed-base tables).  Registered by the modules
# that own those caches so this module stays import-cycle free.
_reset_hooks: List[Callable[[], None]] = []


def register_reset_hook(hook: Callable[[], None]) -> None:
    """Register a cache-clearing callback invoked by :func:`set_active_backend`."""
    _reset_hooks.append(hook)


def active_backend() -> BigIntBackend:
    """The process-wide backend, resolved from ``REPRO_BIGINT`` on first use."""
    global _active
    if _active is None:
        _active = resolve_backend(os.environ.get(ENV_VAR, AUTO))
    return _active


def set_active_backend(spec: str) -> str:
    """Switch the process-wide backend; returns the previous backend's name.

    Clears every registered group/table cache so groups constructed *after*
    the switch use the new arithmetic.  Elements created before the switch
    keep their old group instances (mixing them with new ones raises the
    usual cross-group :class:`TypeError`), so this is a test/tooling hook —
    production processes select the backend once, via ``REPRO_BIGINT``,
    before any group exists.
    """
    global _active
    previous = active_backend().name
    _active = resolve_backend(spec)
    for hook in _reset_hooks:
        hook()
    return previous


def require(spec: str) -> BigIntBackend:
    """Validate an election's ``bigint_spec`` against the active backend.

    ``auto`` accepts whatever is active.  An explicit ``python``/``gmpy2``
    must *match* the active backend: arithmetic backends are fixed per
    process (group singletons and precomputed tables are built on one value
    type), so a mismatch means the environment was not set up as the config
    demands — fail loudly with the fix rather than silently running slower
    or half-switched.
    """
    name = (spec or AUTO).strip().lower()
    if name == AUTO:
        return active_backend()
    if name not in _FACTORIES:
        raise BigIntError(
            f"unknown bigint backend {spec!r} (expected one of: auto, python, gmpy2)"
        )
    active = active_backend()
    if active.name != name:
        raise BigIntError(
            f"bigint_spec={name!r} but this process resolved the "
            f"{active.name!r} backend; set {ENV_VAR}={name} in the "
            "environment before the first group is constructed"
        )
    return active
