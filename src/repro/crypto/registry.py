"""The named-group registry: one table from group *names* to factories.

Groups carry a ``name`` attribute (``"modp-2048"``, ``"ed25519"``, the toy
``"modp-toy-INSECURE"``), and several surfaces resolve a name back to the
canonical factory: the precompute warm CLI, the gateway's ``ElectionInfo``
schema (clients rebuild the election group from the name the service
advertises), and the benchmark scripts.  Keeping the mapping here — instead
of a private dict per call site — means a new group preset becomes usable
everywhere by adding one row.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.crypto.group import Group

__all__ = ["GROUP_NAMES", "group_by_name", "register_group"]

_FACTORIES: Dict[str, Callable[[], Group]] = {}


def register_group(name: str, factory: Callable[[], Group]) -> None:
    """Register (or replace) the canonical factory for a group name."""
    _FACTORIES[name] = factory


def _ensure_builtin() -> None:
    # Lazy: importing ed25519/modp at module import time would make this a
    # heavyweight import for consumers that never resolve a name.
    if _FACTORIES:
        return
    from repro.crypto.ed25519 import ed25519_group
    from repro.crypto.modp_group import (
        modp_group_256,
        modp_group_2048,
        modp_group_3072,
        testing_group,
    )

    register_group("modp-2048", modp_group_2048)
    register_group("modp-3072", modp_group_3072)
    register_group("modp-256", modp_group_256)
    register_group("ed25519", ed25519_group)
    register_group("modp-toy-INSECURE", testing_group)
    # Friendly aliases accepted on input surfaces (specs, CLI flags).
    register_group("toy", testing_group)


def GROUP_NAMES() -> List[str]:
    """Every registered group name, sorted (CLI ``choices`` and docs)."""
    _ensure_builtin()
    return sorted(_FACTORIES)


def group_by_name(name: str) -> Group:
    """Resolve a group name to its canonical instance.

    Raises :class:`ValueError` with the known names on an unknown name, so
    input surfaces (gateway schemas, CLI flags) get a usable error message.
    """
    _ensure_builtin()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"unknown group {name!r} (known: {', '.join(sorted(_FACTORIES))})")
    return factory()
