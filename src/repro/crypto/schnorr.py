"""Schnorr signatures over an abstract prime-order group.

The paper's prototype uses Schnorr signatures with SHA-256 on edwards25519
(§6).  Every TRIP credential is a Schnorr signing key pair; kiosks, officials
and envelope printers also hold Schnorr key pairs and sign the artefacts they
produce (commit codes, check-out tickets, envelope challenges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.group import Group, GroupElement
from repro.crypto.hashing import scalar_bytes


@dataclass(frozen=True)
class SigningKeyPair:
    """A Schnorr signing key pair ``(sk, pk = g^sk)``."""

    secret: int
    public: GroupElement

    @property
    def group(self) -> Group:
        return self.public.group


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(R, s)`` with ``s = k + H(R, pk, m)·sk``."""

    commitment: GroupElement
    response: int

    def to_bytes(self) -> bytes:
        return self.commitment.to_bytes() + scalar_bytes(self.response)


def schnorr_keygen(group: Group, secret: Optional[int] = None) -> SigningKeyPair:
    """Generate a Schnorr key pair over ``group``."""
    sk = secret if secret is not None else group.random_scalar()
    return SigningKeyPair(secret=sk, public=group.power(sk))


def public_key_from_secret(group: Group, secret: int) -> GroupElement:
    """Recompute the public key from a secret key (``Sig.PubKey`` in the paper)."""
    return group.power(secret)


def schnorr_challenge(group: Group, commitment: GroupElement, public: GroupElement, message: bytes) -> int:
    """The Fiat–Shamir challenge ``H(R, pk, m)`` (shared with batch verification)."""
    return group.hash_to_scalar(
        b"schnorr-signature",
        commitment.to_bytes(),
        public.to_bytes(),
        message,
    )


_challenge = schnorr_challenge


def schnorr_sign(keypair: SigningKeyPair, message: bytes, nonce: Optional[int] = None) -> SchnorrSignature:
    """Sign ``message`` with the key pair.

    A fresh random nonce is drawn unless one is supplied (deterministic nonces
    are only used in tests; reusing a nonce leaks the secret key).
    """
    group = keypair.group
    k = nonce if nonce is not None else group.random_scalar()
    commitment = group.power(k)
    challenge = _challenge(group, commitment, keypair.public, message)
    response = (k + challenge * keypair.secret) % group.order
    return SchnorrSignature(commitment=commitment, response=response)


def schnorr_verify(public: GroupElement, message: bytes, signature: SchnorrSignature) -> bool:
    """Verify a Schnorr signature; returns ``True`` iff it is valid."""
    group = public.group
    challenge = _challenge(group, signature.commitment, public, message)
    lhs = group.power(signature.response)
    rhs = signature.commitment * (public ** challenge)
    return lhs == rhs
