"""Message authentication codes.

TRIP's check-in tickets carry a MAC authorization tag ``τ`` computed under a
secret key shared between the registration officials and the kiosks
(Appendix E.3).  The paper uses a MAC rather than a signature because the
check-in ticket is a *barcode* with limited storage (§7.5, footnote 7).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets


def mac_keygen(length: int = 32) -> bytes:
    """Generate a fresh shared MAC key."""
    return secrets.token_bytes(length)


def mac_sign(key: bytes, message: bytes, length: int = 32) -> bytes:
    """HMAC-SHA256 authorization tag over ``message``.

    ``length`` truncates the tag; check-in tickets use 16-byte tags because
    they must fit in a 1-D barcode (§7.5, footnote 7).
    """
    if not 8 <= length <= 32:
        raise ValueError("MAC tags must be between 8 and 32 bytes")
    return hmac.new(key, message, hashlib.sha256).digest()[:length]


def mac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time verification of a (possibly truncated) authorization tag."""
    return len(tag) >= 8 and hmac.compare_digest(mac_sign(key, message, length=len(tag)), tag)
