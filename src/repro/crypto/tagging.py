"""Distributed deterministic tagging (linear-time credential filtering).

Votegral avoids Civitas' quadratic PET-based filtering by applying a
*deterministic blinding tag* to both sides of the match (§4.2, §7.4, and the
Weber-et-al. linear-work construction the paper cites):

* every ballot is submitted under a credential public key ``K`` (real or
  fake) — the tally service blinds it to ``K^z``;
* every active registration record carries the public credential tag
  ``c_pc = Enc_A(K_real)`` — the tally service exponentiates the ciphertext to
  obtain ``Enc_A(K_real^z)`` and then threshold-decrypts it to ``K_real^z``.

The blinding exponent ``z`` is the product of per-member secrets ``z_i``, so
no single member can link a blinded tag back to a credential, yet the same
credential always maps to the same tag — matching is a hash join, linear in
the number of ballots.  Every member's exponentiation step ships with a
Chaum–Pedersen proof of consistency so the whole filtering step is publicly
verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crypto.chaum_pedersen import (
    ChaumPedersenStatement,
    ChaumPedersenTranscript,
    chaum_pedersen_verify,
    fiat_shamir_challenge,
    fiat_shamir_prove,
)
from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.errors import VerificationError

#: Fiat–Shamir domain tags for the two tagging-proof families.
TAG_CONTEXT = b"deterministic-tag"
CIPHERTEXT_TAG_CONTEXT = b"deterministic-tag-ciphertext"


@dataclass(frozen=True)
class TaggingStep:
    """One member's exponentiation step with its correctness proof.

    The proof shows the member used the same secret exponent it committed to
    (``commitment = g^{z_i}``) when transforming ``before`` into ``after``.
    """

    member_index: int
    before: GroupElement
    after: GroupElement
    commitment: GroupElement
    proof: ChaumPedersenTranscript


@dataclass(frozen=True)
class BlindedTag:
    """A fully blinded tag ``value = m^{z_1·…·z_n}`` plus the per-member steps."""

    value: GroupElement
    steps: List[TaggingStep]

    def key(self) -> bytes:
        """A canonical byte key for hash-join matching."""
        return self.value.to_bytes()


@dataclass
class TaggingAuthority:
    """The per-member tagging secrets and their public commitments.

    A fresh tagging key must be drawn for every tally run; reusing the
    exponent across elections would let observers link ballots across runs.
    """

    group: Group
    secrets: List[int]
    commitments: List[GroupElement] = field(default_factory=list)

    @classmethod
    def create(cls, group: Group, num_members: int) -> "TaggingAuthority":
        secrets = [group.random_scalar() for _ in range(num_members)]
        commitments = [group.power(z) for z in secrets]
        return cls(group=group, secrets=secrets, commitments=commitments)

    @property
    def num_members(self) -> int:
        return len(self.secrets)

    # Blinding plain group elements (ballot credential keys) -------------------

    def blind_element(self, element: GroupElement) -> BlindedTag:
        """Blind a public group element through every member in turn."""
        current = element
        steps: List[TaggingStep] = []
        for index, (secret, commitment) in enumerate(zip(self.secrets, self.commitments), start=1):
            after = current ** secret
            statement = ChaumPedersenStatement(
                base_g=current,
                base_h=self.group.generator,
                value_g=after,
                value_h=commitment,
            )
            proof = fiat_shamir_prove(statement, secret, context=TAG_CONTEXT)
            steps.append(TaggingStep(index, current, after, commitment, proof))
            current = after
        return BlindedTag(value=current, steps=steps)

    # Blinding ciphertexts (registration credential tags) ----------------------

    def blind_ciphertext(self, ciphertext: ElGamalCiphertext) -> ElGamalCiphertext:
        """Raise a ciphertext to the collective tagging exponent.

        ``Enc(m)^z = Enc(m^z)``, so the subsequent threshold decryption reveals
        only the blinded tag, never the raw credential key.
        """
        current = ciphertext
        for secret in self.secrets:
            current = current.exponentiate(secret)
        return current

    def blind_ciphertext_with_proof(
        self, ciphertext: ElGamalCiphertext
    ) -> Tuple[ElGamalCiphertext, List["CiphertextTaggingStep"]]:
        """Like :meth:`blind_ciphertext`, but each member's step ships proofs.

        Per member, two Chaum–Pedersen transcripts show that *both* ciphertext
        components were raised to the same exponent the member committed to
        (``commitment = g^{z_i}``) — this is the transcript the paper's
        "publicly verifiable filtering" claim needs for the ciphertext side of
        the tag join, published as audit evidence by the tally when
        ``collect_evidence`` is on.  The blinded output is bit-identical to
        :meth:`blind_ciphertext` (same exponentiation chain; only proof nonces
        differ and they never touch the output).
        """
        current = ciphertext
        steps: List[CiphertextTaggingStep] = []
        for index, (secret, commitment) in enumerate(zip(self.secrets, self.commitments), start=1):
            after = current.exponentiate(secret)
            proofs = []
            for before_part, after_part in ((current.c1, after.c1), (current.c2, after.c2)):
                statement = ChaumPedersenStatement(
                    base_g=before_part,
                    base_h=self.group.generator,
                    value_g=after_part,
                    value_h=commitment,
                )
                proofs.append(fiat_shamir_prove(statement, secret, context=CIPHERTEXT_TAG_CONTEXT))
            steps.append(CiphertextTaggingStep(index, current, after, commitment, proofs[0], proofs[1]))
            current = after
        return current, steps

    def blind_and_decrypt(
        self,
        dkg: DistributedKeyGeneration,
        ciphertext: ElGamalCiphertext,
        verify: bool = True,
    ) -> GroupElement:
        """Blind a registration tag ciphertext and threshold-decrypt it."""
        blinded = self.blind_ciphertext(ciphertext)
        return dkg.decrypt(blinded, verify=verify)


@dataclass(frozen=True)
class CiphertextTaggingStep:
    """One member's ciphertext exponentiation step with its two proofs.

    ``proof_c1``/``proof_c2`` are Chaum–Pedersen transcripts over the two
    ciphertext components against the member's public commitment ``g^{z_i}``.
    """

    member_index: int
    before: ElGamalCiphertext
    after: ElGamalCiphertext
    commitment: GroupElement
    proof_c1: ChaumPedersenTranscript
    proof_c2: ChaumPedersenTranscript


def _step_structure_ok(
    statement: ChaumPedersenStatement,
    before: GroupElement,
    after: GroupElement,
    commitment: GroupElement,
    member_index: int,
    commitments: Optional[Sequence[GroupElement]],
) -> bool:
    """The non-cryptographic part of one tagging-step check: linkage + bases."""
    if not (statement.base_g == before and statement.value_g == after and statement.value_h == commitment):
        return False
    if commitments is not None and commitment != commitments[member_index - 1]:
        return False
    return True


def tag_chain_transcripts(
    tag: BlindedTag,
    original: GroupElement,
    commitments: Optional[Sequence[GroupElement]] = None,
) -> Optional[List[ChaumPedersenTranscript]]:
    """Structural walk of a tagging chain, separating structure from crypto.

    Returns the per-step Chaum–Pedersen transcripts (with their Fiat–Shamir
    challenges already confirmed against the hash) iff every structural check
    passes — step linkage, statement bases, commitment bindings, chain
    endpoint — otherwise ``None``.  The remaining work is exactly the two
    group equations per transcript, which the eager verifier checks
    one-by-one and :func:`repro.runtime.batch.batch_chaum_pedersen_verify`
    folds into one random-linear-combination product for whole batches of
    tag chains.
    """
    current = original
    transcripts: List[ChaumPedersenTranscript] = []
    for step in tag.steps:
        if step.before != current:
            return None
        if not _step_structure_ok(
            step.proof.statement, step.before, step.after, step.commitment, step.member_index, commitments
        ):
            return None
        expected = fiat_shamir_challenge(step.proof.statement, step.proof.commit, TAG_CONTEXT)
        if step.proof.challenge != expected:
            return None
        transcripts.append(step.proof)
        current = step.after
    if current != tag.value:
        return None
    return transcripts


def verify_blinded_tag(tag: BlindedTag, original: GroupElement, commitments: Optional[List[GroupElement]] = None) -> bool:
    """Publicly verify the chain of tagging steps from ``original`` to ``tag.value``.

    The reference (one-by-one) predicate behind the audit layer's
    ``tag-chain`` check kind; batches of chains fold their transcripts into
    the RLC batch verifier instead (see :mod:`repro.audit.kinds`).
    """
    transcripts = tag_chain_transcripts(tag, original, commitments)
    if transcripts is None:
        return False
    return all(chaum_pedersen_verify(transcript) for transcript in transcripts)


def ciphertext_tag_chain_transcripts(
    steps: Sequence[CiphertextTaggingStep],
    original: ElGamalCiphertext,
    final: ElGamalCiphertext,
    commitments: Optional[Sequence[GroupElement]] = None,
) -> Optional[List[ChaumPedersenTranscript]]:
    """Structural walk of a ciphertext tagging chain (two transcripts per step).

    Same contract as :func:`tag_chain_transcripts`: transcripts with
    confirmed challenges on structural success, ``None`` on any structural
    failure.
    """
    current = original
    transcripts: List[ChaumPedersenTranscript] = []
    for step in steps:
        if step.before != current:
            return None
        for proof, before_part, after_part in (
            (step.proof_c1, current.c1, step.after.c1),
            (step.proof_c2, current.c2, step.after.c2),
        ):
            if not _step_structure_ok(
                proof.statement, before_part, after_part, step.commitment, step.member_index, commitments
            ):
                return None
            expected = fiat_shamir_challenge(proof.statement, proof.commit, CIPHERTEXT_TAG_CONTEXT)
            if proof.challenge != expected:
                return None
            transcripts.append(proof)
        current = step.after
    if current != final:
        return None
    return transcripts


def verify_ciphertext_tag_chain(
    steps: Sequence[CiphertextTaggingStep],
    original: ElGamalCiphertext,
    final: ElGamalCiphertext,
    commitments: Optional[Sequence[GroupElement]] = None,
) -> bool:
    """Reference verification of a published ciphertext tagging chain."""
    transcripts = ciphertext_tag_chain_transcripts(steps, original, final, commitments)
    if transcripts is None:
        return False
    return all(chaum_pedersen_verify(transcript) for transcript in transcripts)


def assert_valid_tag(tag: BlindedTag, original: GroupElement, commitments: Optional[List[GroupElement]] = None) -> None:
    if not verify_blinded_tag(tag, original, commitments):
        raise VerificationError("deterministic tagging chain failed verification")
