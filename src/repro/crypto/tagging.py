"""Distributed deterministic tagging (linear-time credential filtering).

Votegral avoids Civitas' quadratic PET-based filtering by applying a
*deterministic blinding tag* to both sides of the match (§4.2, §7.4, and the
Weber-et-al. linear-work construction the paper cites):

* every ballot is submitted under a credential public key ``K`` (real or
  fake) — the tally service blinds it to ``K^z``;
* every active registration record carries the public credential tag
  ``c_pc = Enc_A(K_real)`` — the tally service exponentiates the ciphertext to
  obtain ``Enc_A(K_real^z)`` and then threshold-decrypts it to ``K_real^z``.

The blinding exponent ``z`` is the product of per-member secrets ``z_i``, so
no single member can link a blinded tag back to a credential, yet the same
credential always maps to the same tag — matching is a hash join, linear in
the number of ballots.  Every member's exponentiation step ships with a
Chaum–Pedersen proof of consistency so the whole filtering step is publicly
verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.chaum_pedersen import (
    ChaumPedersenStatement,
    ChaumPedersenTranscript,
    fiat_shamir_prove,
    fiat_shamir_verify,
)
from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.errors import VerificationError


@dataclass(frozen=True)
class TaggingStep:
    """One member's exponentiation step with its correctness proof.

    The proof shows the member used the same secret exponent it committed to
    (``commitment = g^{z_i}``) when transforming ``before`` into ``after``.
    """

    member_index: int
    before: GroupElement
    after: GroupElement
    commitment: GroupElement
    proof: ChaumPedersenTranscript


@dataclass(frozen=True)
class BlindedTag:
    """A fully blinded tag ``value = m^{z_1·…·z_n}`` plus the per-member steps."""

    value: GroupElement
    steps: List[TaggingStep]

    def key(self) -> bytes:
        """A canonical byte key for hash-join matching."""
        return self.value.to_bytes()


@dataclass
class TaggingAuthority:
    """The per-member tagging secrets and their public commitments.

    A fresh tagging key must be drawn for every tally run; reusing the
    exponent across elections would let observers link ballots across runs.
    """

    group: Group
    secrets: List[int]
    commitments: List[GroupElement] = field(default_factory=list)

    @classmethod
    def create(cls, group: Group, num_members: int) -> "TaggingAuthority":
        secrets = [group.random_scalar() for _ in range(num_members)]
        commitments = [group.power(z) for z in secrets]
        return cls(group=group, secrets=secrets, commitments=commitments)

    @property
    def num_members(self) -> int:
        return len(self.secrets)

    # Blinding plain group elements (ballot credential keys) -------------------

    def blind_element(self, element: GroupElement) -> BlindedTag:
        """Blind a public group element through every member in turn."""
        current = element
        steps: List[TaggingStep] = []
        for index, (secret, commitment) in enumerate(zip(self.secrets, self.commitments), start=1):
            after = current ** secret
            statement = ChaumPedersenStatement(
                base_g=current,
                base_h=self.group.generator,
                value_g=after,
                value_h=commitment,
            )
            proof = fiat_shamir_prove(statement, secret, context=b"deterministic-tag")
            steps.append(TaggingStep(index, current, after, commitment, proof))
            current = after
        return BlindedTag(value=current, steps=steps)

    # Blinding ciphertexts (registration credential tags) ----------------------

    def blind_ciphertext(self, ciphertext: ElGamalCiphertext) -> ElGamalCiphertext:
        """Raise a ciphertext to the collective tagging exponent.

        ``Enc(m)^z = Enc(m^z)``, so the subsequent threshold decryption reveals
        only the blinded tag, never the raw credential key.
        """
        current = ciphertext
        for secret in self.secrets:
            current = current.exponentiate(secret)
        return current

    def blind_and_decrypt(
        self,
        dkg: DistributedKeyGeneration,
        ciphertext: ElGamalCiphertext,
        verify: bool = True,
    ) -> GroupElement:
        """Blind a registration tag ciphertext and threshold-decrypt it."""
        blinded = self.blind_ciphertext(ciphertext)
        return dkg.decrypt(blinded, verify=verify)


def verify_blinded_tag(tag: BlindedTag, original: GroupElement, commitments: Optional[List[GroupElement]] = None) -> bool:
    """Publicly verify the chain of tagging steps from ``original`` to ``tag.value``."""
    current = original
    for step in tag.steps:
        if step.before != current:
            return False
        statement = step.proof.statement
        consistent = (
            statement.base_g == step.before
            and statement.value_g == step.after
            and statement.value_h == step.commitment
        )
        if commitments is not None:
            consistent = consistent and step.commitment == commitments[step.member_index - 1]
        if not consistent or not fiat_shamir_verify(step.proof, context=b"deterministic-tag"):
            return False
        current = step.after
    if current != tag.value:
        return False
    return True


def assert_valid_tag(tag: BlindedTag, original: GroupElement, commitments: Optional[List[GroupElement]] = None) -> None:
    if not verify_blinded_tag(tag, original, commitments):
        raise VerificationError("deterministic tagging chain failed verification")
