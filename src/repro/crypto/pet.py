"""Plaintext-equivalence tests (PETs).

Civitas/JCJ tallying (§7.4) removes duplicate ballots and filters out ballots
cast with unauthorized credentials by running *pairwise* PETs, which is what
makes its tally quadratic in the number of ballots — the paper estimates
1,768 years for a million voters.  We implement the standard Jakobsson–Juels
mix-and-match PET so the Civitas baseline is faithful.

A PET on ciphertexts ``C_a`` and ``C_b`` (same key) proceeds as follows: each
authority member raises the quotient ciphertext ``C_a / C_b`` to a secret
random exponent (publishing a correctness proof), the blinded quotients are
multiplied together and jointly decrypted; the plaintexts are equal iff the
decryption yields the identity element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.crypto.chaum_pedersen import (
    ChaumPedersenStatement,
    ChaumPedersenTranscript,
    fiat_shamir_prove,
    fiat_shamir_verify,
)
from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamalCiphertext
from repro.errors import VerificationError


@dataclass(frozen=True)
class PetContribution:
    """One authority member's blinded quotient with a correctness proof."""

    blinded: ElGamalCiphertext
    proof_c1: ChaumPedersenTranscript
    proof_c2: ChaumPedersenTranscript


@dataclass(frozen=True)
class PetResult:
    """The outcome of a PET: contributions, the joint decryption, the verdict."""

    contributions: List[PetContribution]
    equal: bool


def _quotient(a: ElGamalCiphertext, b: ElGamalCiphertext) -> ElGamalCiphertext:
    return ElGamalCiphertext(a.c1 * b.c1.inverse(), a.c2 * b.c2.inverse())


def pet_contribution(quotient: ElGamalCiphertext, exponent: int) -> PetContribution:
    """Blind the quotient ciphertext by ``exponent`` and prove it was done right.

    The proofs show that both components were raised to the *same* secret
    exponent: log_{q.c1}(blinded.c1) == log_{q.c2}(blinded.c2) == exponent.
    """
    group = quotient.group
    blinded = quotient.exponentiate(exponent)
    statement_c1 = ChaumPedersenStatement(
        base_g=quotient.c1,
        base_h=group.generator,
        value_g=blinded.c1,
        value_h=group.power(exponent),
    )
    statement_c2 = ChaumPedersenStatement(
        base_g=quotient.c2,
        base_h=group.generator,
        value_g=blinded.c2,
        value_h=group.power(exponent),
    )
    return PetContribution(
        blinded=blinded,
        proof_c1=fiat_shamir_prove(statement_c1, exponent, context=b"pet-c1"),
        proof_c2=fiat_shamir_prove(statement_c2, exponent, context=b"pet-c2"),
    )


def verify_pet_contribution(quotient: ElGamalCiphertext, contribution: PetContribution) -> bool:
    """Check that a member's blinding proofs are valid and consistent."""
    ok_c1 = (
        contribution.proof_c1.statement.base_g == quotient.c1
        and contribution.proof_c1.statement.value_g == contribution.blinded.c1
        and fiat_shamir_verify(contribution.proof_c1, context=b"pet-c1")
    )
    ok_c2 = (
        contribution.proof_c2.statement.base_g == quotient.c2
        and contribution.proof_c2.statement.value_g == contribution.blinded.c2
        and fiat_shamir_verify(contribution.proof_c2, context=b"pet-c2")
    )
    same_exponent = contribution.proof_c1.statement.value_h == contribution.proof_c2.statement.value_h
    return ok_c1 and ok_c2 and same_exponent


def plaintext_equivalence_test(
    dkg: DistributedKeyGeneration,
    a: ElGamalCiphertext,
    b: ElGamalCiphertext,
    verify: bool = True,
) -> PetResult:
    """Run a full PET between ciphertexts ``a`` and ``b`` under ``dkg``'s key."""
    group = dkg.group
    quotient = _quotient(a, b)
    contributions = []
    combined = None
    for member in dkg.members:
        exponent = group.random_scalar()
        contribution = pet_contribution(quotient, exponent)
        if verify and not verify_pet_contribution(quotient, contribution):
            raise VerificationError("invalid PET contribution")
        contributions.append(contribution)
        combined = contribution.blinded if combined is None else combined.multiply(contribution.blinded)
    plaintext = dkg.decrypt(combined, verify=verify)
    return PetResult(contributions=contributions, equal=plaintext == group.identity)
