"""Distributed key generation for the election authority.

Votegral's threat model (Appendix D) assumes the election authority consists
of ``n_A`` members and remains secure as long as not all members are
compromised.  The members jointly generate an ElGamal key pair whose private
key no single member knows:

* each member i draws a secret ``a_i`` and publishes ``A_i = g^{a_i}``;
* the collective public key is ``A_pk = ∏ A_i`` (additive sharing), so the
  collective secret is ``Σ a_i``;
* each member additionally Shamir-shares its secret with the others so a
  threshold subset can recover a missing member's contribution (simple
  joint-Feldman style robustness — enough for the simulation; byzantine
  complaint rounds are out of scope, as they are in the paper's prototype).

Decryption never reconstructs the secret: each member contributes a
decryption share ``c1^{a_i}`` with a Chaum–Pedersen correctness proof
(:meth:`repro.crypto.elgamal.ElGamal.decryption_share`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.crypto.elgamal import DecryptionShare, ElGamal, ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.crypto.shamir import Share, split_secret
from repro.errors import VerificationError


@dataclass
class AuthorityShare:
    """One authority member's key material."""

    index: int
    secret: int
    public: GroupElement
    backup_shares: List[Share] = field(default_factory=list)

    def decryption_share(self, elgamal: ElGamal, ciphertext: ElGamalCiphertext) -> DecryptionShare:
        return elgamal.decryption_share(self.secret, ciphertext)


@dataclass
class DistributedKeyGeneration:
    """The result of a DKG run: member shares plus the collective public key."""

    group: Group
    members: List[AuthorityShare]
    public_key: GroupElement

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def member_public_keys(self) -> List[GroupElement]:
        return [member.public for member in self.members]

    def collective_secret(self) -> int:
        """Reconstruct the collective secret (testing/auditing only)."""
        return sum(member.secret for member in self.members) % self.group.order

    @classmethod
    def run(cls, group: Group, num_members: int, threshold: Optional[int] = None) -> "DistributedKeyGeneration":
        """Run the DKG among ``num_members`` simulated authority members."""
        if num_members < 1:
            raise ValueError("at least one authority member is required")
        threshold = threshold if threshold is not None else num_members
        members: List[AuthorityShare] = []
        public_key = group.identity
        for index in range(1, num_members + 1):
            secret = group.random_scalar()
            public = group.power(secret)
            backups = split_secret(secret, threshold, num_members, group.order)
            members.append(AuthorityShare(index=index, secret=secret, public=public, backup_shares=backups))
            public_key = public_key * public
        return cls(group=group, members=members, public_key=public_key)

    # Threshold decryption ----------------------------------------------------

    def decrypt(
        self,
        ciphertext: ElGamalCiphertext,
        participating: Optional[Sequence[int]] = None,
        verify: bool = True,
    ) -> GroupElement:
        """Jointly decrypt ``ciphertext`` using all (or the listed) members."""
        elgamal = ElGamal(self.group)
        indices = list(participating) if participating is not None else [m.index for m in self.members]
        by_index: Dict[int, AuthorityShare] = {m.index: m for m in self.members}
        missing = [i for i in indices if i not in by_index]
        if missing:
            raise ValueError(f"unknown authority member indices: {missing}")
        if set(indices) != set(by_index):
            raise VerificationError(
                "additive DKG requires all members for decryption; "
                "use member backup shares to recover absentees"
            )
        shares = [by_index[i].decryption_share(elgamal, ciphertext) for i in indices]
        publics = [by_index[i].public for i in indices]
        return elgamal.combine_decryption_shares(ciphertext, publics, shares, verify=verify)

    def decrypt_int(self, ciphertext: ElGamalCiphertext, max_value: int = 10_000) -> int:
        """Decrypt an exponentially-encoded integer."""
        return self.group.decode_int(self.decrypt(ciphertext), max_value)
