"""ElGamal encryption over an abstract prime-order group.

TRIP encrypts the real credential's public key under the election authority's
collective public key to form the *public credential tag* ``c_pc`` (§4.2,
Appendix E.4).  The same scheme (with exponential message encoding) is used
for ballots in the voting/tallying pipeline and in every baseline system.

The implementation exposes:

* key generation, encryption, decryption;
* re-encryption (used by the mix cascade);
* the multiplicative homomorphism (used for blinding and PETs);
* decryption *shares* with Chaum–Pedersen correctness proofs, so a threshold
  of authority members can jointly decrypt with a publicly verifiable
  transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.crypto.group import Group, GroupElement
from repro.errors import VerificationError

# Optional fixed-base accelerator for ``base ** scalar`` on hot bases (the
# election public key, above all).  Installed by importing
# :mod:`repro.runtime.precompute`; left unset, the reference path runs.
_element_power_hook = None


def set_element_power_hook(hook) -> None:
    """Install (or clear, with ``None``) the fixed-base exponentiation hook."""
    global _element_power_hook
    _element_power_hook = hook


def _power(base: GroupElement, scalar: int) -> GroupElement:
    hook = _element_power_hook
    if hook is not None:
        return hook(base, scalar)
    return base.exponentiate(scalar)


@dataclass(frozen=True)
class ElGamalKeyPair:
    """A private/public ElGamal key pair."""

    secret: int
    public: GroupElement

    @property
    def group(self) -> Group:
        return self.public.group


@dataclass(frozen=True)
class ElGamalCiphertext:
    """An ElGamal ciphertext ``(c1, c2) = (g^r, pk^r · m)``."""

    c1: GroupElement
    c2: GroupElement

    @property
    def group(self) -> Group:
        return self.c1.group

    def to_bytes(self) -> bytes:
        return self.c1.to_bytes() + self.c2.to_bytes()

    def multiply(self, other: "ElGamalCiphertext") -> "ElGamalCiphertext":
        """Homomorphic combination: encrypts the product of the plaintexts."""
        return ElGamalCiphertext(self.c1 * other.c1, self.c2 * other.c2)

    def exponentiate(self, scalar: int) -> "ElGamalCiphertext":
        """Raise the plaintext to ``scalar`` (used for blinding and PETs)."""
        return ElGamalCiphertext(self.c1 ** scalar, self.c2 ** scalar)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ElGamalCiphertext)
            and self.c1 == other.c1
            and self.c2 == other.c2
        )

    def __hash__(self) -> int:
        return hash((self.c1, self.c2))


@dataclass(frozen=True)
class DecryptionShare:
    """One authority member's partial decryption ``c1^sk_i`` with a proof."""

    share: GroupElement
    commitment_g: GroupElement
    commitment_c1: GroupElement
    response: int


class ElGamal:
    """ElGamal over a :class:`~repro.crypto.group.Group`."""

    def __init__(self, group: Group):
        self.group = group

    # Key management ---------------------------------------------------------

    def keygen(self, secret: Optional[int] = None) -> ElGamalKeyPair:
        sk = secret if secret is not None else self.group.random_scalar()
        return ElGamalKeyPair(secret=sk, public=self.group.power(sk))

    # Core operations ---------------------------------------------------------

    def encrypt(
        self,
        public_key: GroupElement,
        message: GroupElement,
        randomness: Optional[int] = None,
    ) -> ElGamalCiphertext:
        r = randomness if randomness is not None else self.group.random_scalar()
        return ElGamalCiphertext(self.group.power(r), _power(public_key, r) * message)

    def decrypt(self, secret_key: int, ciphertext: ElGamalCiphertext) -> GroupElement:
        return ciphertext.c2 * (ciphertext.c1 ** secret_key).inverse()

    def encrypt_int(
        self,
        public_key: GroupElement,
        value: int,
        randomness: Optional[int] = None,
    ) -> ElGamalCiphertext:
        """Exponential ElGamal: encrypt g**value (homomorphic in the exponent)."""
        return self.encrypt(public_key, self.group.encode_int(value), randomness)

    def decrypt_int(self, secret_key: int, ciphertext: ElGamalCiphertext, max_value: int = 10_000) -> int:
        return self.group.decode_int(self.decrypt(secret_key, ciphertext), max_value)

    def reencrypt(
        self,
        public_key: GroupElement,
        ciphertext: ElGamalCiphertext,
        randomness: Optional[int] = None,
    ) -> ElGamalCiphertext:
        """Refresh the randomness of a ciphertext without knowing the plaintext."""
        r = randomness if randomness is not None else self.group.random_scalar()
        return ElGamalCiphertext(
            ciphertext.c1 * self.group.power(r),
            ciphertext.c2 * _power(public_key, r),
        )

    def encrypt_identity(self, public_key: GroupElement, randomness: Optional[int] = None) -> ElGamalCiphertext:
        """An encryption of the identity element (a "zero" ciphertext)."""
        return self.encrypt(public_key, self.group.identity, randomness)

    # Threshold decryption -----------------------------------------------------

    def decryption_share(self, secret_share: int, ciphertext: ElGamalCiphertext) -> DecryptionShare:
        """Produce ``c1^sk_i`` with a Chaum–Pedersen proof of correctness.

        The proof shows log_g(pk_i) == log_c1(share), i.e. the member used the
        same secret it committed to at DKG time.
        """
        group = self.group
        w = group.random_scalar()
        commitment_g = group.power(w)
        commitment_c1 = ciphertext.c1 ** w
        share = ciphertext.c1 ** secret_share
        public_share = group.power(secret_share)
        challenge = group.hash_to_scalar(
            b"elgamal-decryption-share",
            public_share.to_bytes(),
            share.to_bytes(),
            commitment_g.to_bytes(),
            commitment_c1.to_bytes(),
            ciphertext.to_bytes(),
        )
        response = (w + challenge * secret_share) % group.order
        return DecryptionShare(share, commitment_g, commitment_c1, response)

    def verify_decryption_share(
        self,
        public_share: GroupElement,
        ciphertext: ElGamalCiphertext,
        share: DecryptionShare,
    ) -> bool:
        group = self.group
        challenge = group.hash_to_scalar(
            b"elgamal-decryption-share",
            public_share.to_bytes(),
            share.share.to_bytes(),
            share.commitment_g.to_bytes(),
            share.commitment_c1.to_bytes(),
            ciphertext.to_bytes(),
        )
        lhs_g = group.power(share.response)
        rhs_g = share.commitment_g * (public_share ** challenge)
        lhs_c1 = ciphertext.c1 ** share.response
        rhs_c1 = share.commitment_c1 * (share.share ** challenge)
        return lhs_g == rhs_g and lhs_c1 == rhs_c1

    def combine_decryption_shares(
        self,
        ciphertext: ElGamalCiphertext,
        public_shares: Sequence[GroupElement],
        shares: Sequence[DecryptionShare],
        verify: bool = True,
    ) -> GroupElement:
        """Combine additive decryption shares into the plaintext.

        With additive key sharing (the DKG in :mod:`repro.crypto.dkg`), the
        full decryption factor is the product of all members' ``c1^sk_i``.
        """
        if len(public_shares) != len(shares):
            raise ValueError("mismatched share lists")
        if verify and len(shares) > 1:
            # Fold every member's two proof equations into one RLC product
            # (Bellare–Garay–Rabin small exponents); only on rejection fall
            # back to per-share checks to name the offending member.
            from repro.runtime.batch import batch_decryption_share_verify

            items = [(public_share, ciphertext, share) for public_share, share in zip(public_shares, shares)]
            if not batch_decryption_share_verify(items):
                for public_share, share in zip(public_shares, shares):
                    if not self.verify_decryption_share(public_share, ciphertext, share):
                        raise VerificationError("invalid decryption share")
                raise VerificationError("decryption share batch check failed")
            verify = False
        factor = self.group.identity
        for public_share, share in zip(public_shares, shares):
            if verify and not self.verify_decryption_share(public_share, ciphertext, share):
                raise VerificationError("invalid decryption share")
            factor = factor * share.share
        return ciphertext.c2 * factor.inverse()
