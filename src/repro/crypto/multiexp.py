"""Straus and Pippenger multi-exponentiation kernels.

Computing ``∏ bases[i] ** scalars[i]`` term by term costs one full
exponentiation per term — ``n · 1.5·|q|`` group operations for a naive
double-and-add ladder, or ``n`` native ``pow`` calls for the mod-p backends.
Both classic multi-exponentiation algorithms share the *squaring chain*
across all terms, so the per-term cost drops to roughly ``|q|/w`` operations
for a window of ``w`` bits:

* **Straus (interleaved windows)** precomputes the powers ``1 .. 2^w - 1`` of
  every base, then walks the exponents most-significant-window first: ``w``
  squarings of one shared accumulator per window, plus one table
  multiplication per base whose current digit is non-zero.  The per-base
  table costs ``2^w - 2`` multiplications, so Straus wins for small-to-medium
  batches.
* **Pippenger (bucket method)** keeps no per-base tables: within each window
  it multiplies every base into the bucket indexed by its digit, then folds
  the buckets with the running-suffix-sum trick (≤ ``2·B`` multiplications
  for ``B`` buckets).  With an inversion hook the digits are *signed*, which
  halves the bucket count; the bucket cost is independent of ``n``, so
  Pippenger wins for large batches.

The kernels are written against a tiny :class:`GroupOps` parameterisation
instead of :class:`~repro.crypto.group.GroupElement` so each backend can run
them on its native representation — raw integers mod ``p`` for the Schnorr
groups (skipping one redundant ``% p`` per element construction), extended
Edwards coordinates for the curve (skipping point re-wrapping), and plain
elements for any other backend.  :func:`plan_multi_exponentiation` picks the
algorithm and window width from a calibrated operation-count model, so
callers simply hand every ``(base, scalar)`` term to
:meth:`Group.multi_exponentiate <repro.crypto.group.Group.multi_exponentiate>`
and let the crossover decide.

This module deliberately has no imports from the rest of the package: the
kernels are pure algorithms over an abstract multiply/advance/invert triple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: Widest window the planner will consider.  2^16 buckets / table entries is
#: already past the point of diminishing returns for any realistic batch.
MAX_WINDOW_BITS = 16

#: Ceiling on ``num_terms · 2^window`` Straus table entries (memory guard —
#: ~16 MiB of 2048-bit integers).  Batches that would exceed it fall back to
#: Pippenger, whose memory is ``O(n + 2^window)``.
MAX_STRAUS_TABLE_ENTRIES = 1 << 16

Value = Any


@dataclass(frozen=True)
class GroupOps:
    """The operations a backend exposes to the multi-exponentiation kernels.

    ``identity``/``multiply`` are the group's neutral element and operation on
    the backend's *native* value type.  ``advance(v, k)`` computes
    ``v^(2^k)`` — backends with a native ``pow`` implement it as one call
    (``pow(v, 1 << k, p)``) instead of ``k`` Python-level squarings.
    ``invert`` is optional; when present, Pippenger uses signed digits
    (half the buckets at the price of one inversion per distinct base).
    """

    identity: Value
    multiply: Callable[[Value, Value], Value]
    advance: Callable[[Value, int], Value]
    invert: Optional[Callable[[Value], Value]] = None


@dataclass(frozen=True)
class MultiExpPlan:
    """The planner's verdict: which algorithm at which window width."""

    algorithm: str  # "naive" | "straus" | "pippenger"
    window: int
    estimated_operations: float


def plan_multi_exponentiation(
    num_terms: int,
    max_scalar_bits: int,
    *,
    exponentiate_cost: Optional[float] = None,
    square_cost: float = 1.0,
    invert_cost: Optional[float] = None,
) -> MultiExpPlan:
    """Choose algorithm and window width from an operation-count model.

    All costs are in units of one group multiplication.  ``exponentiate_cost``
    is the price of a single naive ``base ** scalar`` (defaults to the
    ``1.5·bits`` of a double-and-add ladder; mod-p backends pass a smaller
    value because CPython's native ``pow`` uses a sliding window).
    ``square_cost`` discounts the shared squaring chain (mod-p squaring and
    native ``pow`` advancement are cheaper than a generic multiplication).
    ``invert_cost`` enables the signed-digit Pippenger variant; leave ``None``
    for backends whose inversion is too expensive to amortise.

    The model only has to rank alternatives, not predict wall time, so the
    constants are deliberately coarse (calibrated once on the 2048-bit
    group; see ``benchmarks/bench_multiexp.py`` for the measured curves).
    """
    if num_terms < 1 or max_scalar_bits < 1:
        return MultiExpPlan("naive", 1, 0.0)
    if exponentiate_cost is None:
        exponentiate_cost = 1.5 * max_scalar_bits
    best = MultiExpPlan("naive", 1, num_terms * exponentiate_cost)
    squarings = max_scalar_bits * square_cost
    for window in range(1, MAX_WINDOW_BITS + 1):
        num_windows = -(-max_scalar_bits // window)
        table_entries = num_terms * (1 << window)
        if table_entries <= MAX_STRAUS_TABLE_ENTRIES:
            straus_cost = (
                squarings
                + num_terms * ((1 << window) - 2)
                + num_windows * num_terms * (1.0 - 0.5**window)
            )
            if straus_cost < best.estimated_operations:
                best = MultiExpPlan("straus", window, straus_cost)
        if invert_cost is not None and window >= 2:
            # Signed digits: buckets halve, each base pays one inversion.
            pippenger_cost = (
                squarings
                + num_windows * (num_terms + 2.0 * (1 << (window - 1)))
                + num_terms * invert_cost
            )
        else:
            pippenger_cost = squarings + num_windows * (num_terms + 2.0 * (1 << window))
        if pippenger_cost < best.estimated_operations:
            best = MultiExpPlan("pippenger", window, pippenger_cost)
    return best


def straus_multi_exponentiate(
    ops: GroupOps,
    values: Sequence[Value],
    scalars: Sequence[int],
    window: int,
) -> Value:
    """Interleaved fixed-window multi-exponentiation (Straus' algorithm).

    Scalars must already be reduced to non-negative integers.  One shared
    accumulator is advanced ``window`` bits per step; each base contributes
    its precomputed ``digit``-th power whenever its current digit is
    non-zero.
    """
    if window < 1:
        raise ValueError("window width must be at least one bit")
    if not values:
        return ops.identity
    multiply = ops.multiply
    radix = 1 << window
    tables: List[List[Value]] = []
    for value in values:
        row: List[Value] = [ops.identity, value]
        current = value
        for _ in range(2, radix):
            current = multiply(current, value)
            row.append(current)
        tables.append(row)
    max_bits = max(scalar.bit_length() for scalar in scalars)
    num_windows = -(-max_bits // window) if max_bits else 0
    mask = radix - 1
    result: Optional[Value] = None
    for window_index in range(num_windows - 1, -1, -1):
        if result is not None:
            result = ops.advance(result, window)
        shift = window_index * window
        for row, scalar in zip(tables, scalars):
            digit = (scalar >> shift) & mask
            if digit:
                entry = row[digit]
                result = entry if result is None else multiply(result, entry)
    return ops.identity if result is None else result


def _signed_digits(scalar: int, window: int) -> List[int]:
    """Least-significant-first signed digits of ``scalar`` in base ``2^window``.

    Digits lie in ``[-2^(window-1), 2^(window-1) - 1]`` with a carry folded
    into the next digit, so every digit's magnitude fits the halved bucket
    range.  Requires ``window >= 2`` (with one-bit windows the carry for an
    odd scalar never terminates).
    """
    if window < 2:
        raise ValueError("signed digits need a window of at least two bits")
    radix = 1 << window
    half = radix >> 1
    digits: List[int] = []
    while scalar:
        digit = scalar & (radix - 1)
        if digit >= half:
            digits.append(digit - radix)
            scalar = (scalar >> window) + 1
        else:
            digits.append(digit)
            scalar >>= window
    return digits


def pippenger_multi_exponentiate(
    ops: GroupOps,
    values: Sequence[Value],
    scalars: Sequence[int],
    window: int,
) -> Value:
    """Bucket-method multi-exponentiation (Pippenger's algorithm).

    Scalars must already be reduced to non-negative integers.  When
    ``ops.invert`` is available (and ``window >= 2``), digits are signed and
    the bucket count halves; otherwise plain unsigned digits are used.  The
    bucket fold uses the running-suffix-sum identity
    ``Σ d·B_d = Σ_d Σ_{j≥d} B_j`` — at most two multiplications per bucket.
    """
    if window < 1:
        raise ValueError("window width must be at least one bit")
    if not values:
        return ops.identity
    multiply = ops.multiply
    signed = ops.invert is not None and window >= 2
    if signed:
        assert ops.invert is not None
        digit_lists = [_signed_digits(scalar, window) for scalar in scalars]
        num_windows = max((len(digits) for digits in digit_lists), default=0)
        num_buckets = (1 << (window - 1)) + 1
        inverses = [ops.invert(value) for value in values]
    else:
        max_bits = max(scalar.bit_length() for scalar in scalars)
        num_windows = -(-max_bits // window) if max_bits else 0
        num_buckets = 1 << window
    mask = (1 << window) - 1
    result: Optional[Value] = None
    for window_index in range(num_windows - 1, -1, -1):
        if result is not None:
            result = ops.advance(result, window)
        buckets: List[Optional[Value]] = [None] * num_buckets
        if signed:
            for index, digits in enumerate(digit_lists):
                if window_index >= len(digits):
                    continue
                digit = digits[window_index]
                if digit > 0:
                    entry = buckets[digit]
                    buckets[digit] = values[index] if entry is None else multiply(entry, values[index])
                elif digit < 0:
                    entry = buckets[-digit]
                    buckets[-digit] = inverses[index] if entry is None else multiply(entry, inverses[index])
        else:
            shift = window_index * window
            for value, scalar in zip(values, scalars):
                digit = (scalar >> shift) & mask
                if digit:
                    entry = buckets[digit]
                    buckets[digit] = value if entry is None else multiply(entry, value)
        running: Optional[Value] = None
        window_sum: Optional[Value] = None
        for digit in range(num_buckets - 1, 0, -1):
            bucket = buckets[digit]
            if bucket is not None:
                running = bucket if running is None else multiply(running, bucket)
            if running is not None:
                window_sum = running if window_sum is None else multiply(window_sum, running)
        if window_sum is not None:
            result = window_sum if result is None else multiply(result, window_sum)
    return ops.identity if result is None else result


def execute_plan(
    ops: GroupOps,
    values: Sequence[Value],
    scalars: Sequence[int],
    plan: MultiExpPlan,
    exponentiate: Callable[[Value, int], Value],
) -> Value:
    """Run ``plan`` over the terms; ``exponentiate`` backs the naive branch."""
    if plan.algorithm == "straus":
        return straus_multi_exponentiate(ops, values, scalars, plan.window)
    if plan.algorithm == "pippenger":
        return pippenger_multi_exponentiate(ops, values, scalars, plan.window)
    result: Optional[Value] = None
    for value, scalar in zip(values, scalars):
        term = exponentiate(value, scalar)
        result = term if result is None else ops.multiply(result, term)
    return ops.identity if result is None else result


def collapse_terms(
    order: int,
    bases: Sequence[Any],
    scalars: Sequence[int],
    key: Callable[[Any], Any],
) -> List[Tuple[Any, int]]:
    """Normalise ``(base, scalar)`` terms for a multi-exponentiation.

    Reduces every scalar into ``[0, order)`` (so negative scalars and scalars
    at or above the group order are handled uniformly), merges duplicate
    bases under ``key`` by summing their scalars, and drops terms whose
    reduced scalar is zero.  Raises :class:`ValueError` on mismatched input
    lengths — a silent ``zip`` truncation here would quietly verify fewer
    equations than the caller folded.
    """
    if len(bases) != len(scalars):
        raise ValueError(
            f"multi-exponentiation needs one scalar per base "
            f"(got {len(bases)} bases, {len(scalars)} scalars)"
        )
    merged: "dict[Any, Tuple[Any, int]]" = {}
    for base, scalar in zip(bases, scalars):
        scalar %= order
        if not scalar:
            continue
        base_key = key(base)
        entry = merged.get(base_key)
        if entry is None:
            merged[base_key] = (base, scalar)
        else:
            merged[base_key] = (entry[0], (entry[1] + scalar) % order)
    return [(base, scalar) for base, scalar in merged.values() if scalar]
