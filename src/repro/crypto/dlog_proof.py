"""Non-interactive Schnorr proofs of knowledge of a discrete logarithm.

Used wherever a party must show it knows the secret behind a public value
without revealing it: ballot submitters prove knowledge of the credential
secret key they sign with, Civitas voters prove knowledge of their credential
share, and mix servers prove knowledge of re-encryption factors in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.group import Group, GroupElement
from repro.crypto.hashing import scalar_bytes


@dataclass(frozen=True)
class DlogProof:
    """A Fiat–Shamir Schnorr proof of knowledge of ``x`` with ``y = base^x``."""

    base: GroupElement
    value: GroupElement
    commitment: GroupElement
    response: int

    def to_bytes(self) -> bytes:
        return (
            self.base.to_bytes()
            + self.value.to_bytes()
            + self.commitment.to_bytes()
            + scalar_bytes(self.response)
        )


def _challenge(group: Group, proof_base: GroupElement, value: GroupElement, commitment: GroupElement, context: bytes) -> int:
    return group.hash_to_scalar(
        b"dlog-proof",
        context,
        proof_base.to_bytes(),
        value.to_bytes(),
        commitment.to_bytes(),
    )


def prove_dlog(
    base: GroupElement,
    witness: int,
    context: bytes = b"",
    nonce: Optional[int] = None,
) -> DlogProof:
    """Prove knowledge of ``witness`` such that ``value = base^witness``."""
    group = base.group
    value = base ** witness
    k = nonce if nonce is not None else group.random_scalar()
    commitment = base ** k
    challenge = _challenge(group, base, value, commitment, context)
    response = (k + challenge * witness) % group.order
    return DlogProof(base=base, value=value, commitment=commitment, response=response)


def dlog_challenge(proof: DlogProof, context: bytes = b"") -> int:
    """The Fiat–Shamir challenge a proof's transcript commits to.

    Public so batch verifiers can recompute challenges structurally and fold
    the remaining group equations into one random-linear-combination check.
    """
    return _challenge(proof.base.group, proof.base, proof.value, proof.commitment, context)


def verify_dlog(proof: DlogProof, context: bytes = b"") -> bool:
    """Verify a :class:`DlogProof`."""
    challenge = dlog_challenge(proof, context)
    lhs = proof.base ** proof.response
    rhs = proof.commitment * (proof.value ** challenge)
    return lhs == rhs
