"""Verifiable re-encryption shuffles (the mix cascade).

Votegral anonymizes registration tags and ballots with verifiable shuffles in
a mix cascade (§4.2).  The paper's prototype links against a C implementation
of the Bayer–Groth argument; re-implementing Bayer–Groth's polynomial
machinery in Python is out of scope, so this module provides a classic
*shadow-mix (cut-and-choose)* proof of shuffle instead:

* the mixer publishes the shuffled, re-encrypted output;
* it also publishes ``K`` independent "shadow" shuffles of the same input;
* a Fiat–Shamir coin per shadow asks the mixer to open either the
  input→shadow mapping or the shadow→output mapping (never both), revealing
  the permutation and re-encryption randomness of that half;
* a cheating mixer survives each round with probability ½, so the soundness
  error is 2^-K.

The proof is linear in ``n·K``, so the asymptotics that drive Figure 5b
(linear per mix for Votegral/Swiss Post/VoteAgain vs. quadratic PETs for
Civitas) are preserved; the substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import GroupElement
from repro.crypto.hashing import sha256
from repro.errors import VerificationError

DEFAULT_SOUNDNESS_ROUNDS = 16


def random_permutation(n: int) -> List[int]:
    """A uniformly random permutation of range(n) (Fisher–Yates)."""
    permutation = list(range(n))
    for i in range(n - 1, 0, -1):
        j = secrets.randbelow(i + 1)
        permutation[i], permutation[j] = permutation[j], permutation[i]
    return permutation


def _apply(permutation: Sequence[int], items: Sequence) -> List:
    """Output[i] = items[permutation[i]]."""
    return [items[p] for p in permutation]


def _compose(outer: Sequence[int], inner: Sequence[int]) -> List[int]:
    """The permutation equivalent to applying ``inner`` then ``outer``."""
    return [inner[o] for o in outer]


def _invert(permutation: Sequence[int]) -> List[int]:
    inverse = [0] * len(permutation)
    for position, source in enumerate(permutation):
        inverse[source] = position
    return inverse


@dataclass(frozen=True)
class ShuffleOpening:
    """A revealed half of a shadow round: permutation plus re-encryption factors."""

    permutation: List[int]
    randomness: List[int]


@dataclass(frozen=True)
class ShadowRound:
    """One cut-and-choose round: the shadow list and the opened half."""

    shadow: List[ElGamalCiphertext]
    opens_input_side: bool
    opening: ShuffleOpening


@dataclass(frozen=True)
class ShuffleProof:
    """A complete shadow-mix proof for one mixer's shuffle."""

    rounds: List[ShadowRound]

    @property
    def soundness_bits(self) -> int:
        return len(self.rounds)


@dataclass(frozen=True)
class VerifiableShuffle:
    """A mixer's output together with its proof."""

    outputs: List[ElGamalCiphertext]
    proof: ShuffleProof


def reencryption_shuffle(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[ElGamalCiphertext],
    permutation: Optional[Sequence[int]] = None,
    randomness: Optional[Sequence[int]] = None,
) -> tuple:
    """Shuffle and re-encrypt ``inputs``; returns (outputs, permutation, randomness).

    Outputs[i] is a re-encryption of inputs[permutation[i]].
    """
    n = len(inputs)
    permutation = list(permutation) if permutation is not None else random_permutation(n)
    randomness = list(randomness) if randomness is not None else [elgamal.group.random_scalar() for _ in range(n)]
    outputs = [
        elgamal.reencrypt(public_key, inputs[source], randomness[position])
        for position, source in enumerate(permutation)
    ]
    return outputs, permutation, randomness


def _challenge_bits(
    inputs: Sequence[ElGamalCiphertext],
    outputs: Sequence[ElGamalCiphertext],
    shadows: Sequence[Sequence[ElGamalCiphertext]],
) -> List[bool]:
    """Fiat–Shamir coins, one per round: True means "open the input side".

    All shadows are committed before any coin is derived — deriving each coin
    from its own shadow alone would let a cheating mixer regenerate shadows
    until every coin lands on the side it can open.
    """
    seed = sha256(
        b"shuffle-shadow-rounds",
        *[c.to_bytes() for c in inputs],
        *[c.to_bytes() for c in outputs],
        *[c.to_bytes() for shadow in shadows for c in shadow],
    )
    bits: List[bool] = []
    counter = 0
    while len(bits) < len(shadows):
        block = sha256(seed, counter.to_bytes(4, "big"))
        for byte in block:
            for shift in range(8):
                bits.append(bool((byte >> shift) & 1))
                if len(bits) == len(shadows):
                    return bits
        counter += 1
    return bits


def shuffle_with_proof(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[ElGamalCiphertext],
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
) -> VerifiableShuffle:
    """Produce a verifiable shuffle of ``inputs`` with 2^-rounds soundness error."""
    outputs, permutation, randomness = reencryption_shuffle(elgamal, public_key, inputs)

    shadow_lists: List[List[ElGamalCiphertext]] = []
    shadow_perms: List[List[int]] = []
    shadow_rands: List[List[int]] = []
    for _ in range(rounds):
        shadow, perm, rand = reencryption_shuffle(elgamal, public_key, inputs)
        shadow_lists.append(shadow)
        shadow_perms.append(perm)
        shadow_rands.append(rand)

    coins = _challenge_bits(inputs, outputs, shadow_lists)
    proof_rounds: List[ShadowRound] = []
    for index in range(rounds):
        open_input_side = coins[index]
        if open_input_side:
            opening = ShuffleOpening(permutation=shadow_perms[index], randomness=shadow_rands[index])
        else:
            # Open shadow -> output: output[i] re-encrypts shadow[bridge[i]] with
            # the difference of the re-encryption factors.
            bridge = _compose(permutation, _invert(shadow_perms[index]))
            delta = [
                (randomness[i] - shadow_rands[index][bridge[i]]) % elgamal.group.order
                for i in range(len(inputs))
            ]
            opening = ShuffleOpening(permutation=bridge, randomness=delta)
        proof_rounds.append(
            ShadowRound(shadow=shadow_lists[index], opens_input_side=open_input_side, opening=opening)
        )
    return VerifiableShuffle(outputs=outputs, proof=ShuffleProof(rounds=proof_rounds))


def _check_reencryption_mapping(
    elgamal: ElGamal,
    public_key: GroupElement,
    sources: Sequence[ElGamalCiphertext],
    targets: Sequence[ElGamalCiphertext],
    opening: ShuffleOpening,
) -> bool:
    """Check targets[i] == ReEnc(sources[opening.permutation[i]], opening.randomness[i])."""
    if sorted(opening.permutation) != list(range(len(sources))):
        return False
    if len(opening.randomness) != len(sources) or len(targets) != len(sources):
        return False
    for position, source_index in enumerate(opening.permutation):
        expected = elgamal.reencrypt(public_key, sources[source_index], opening.randomness[position])
        if expected != targets[position]:
            return False
    return True


def verify_shuffle(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[ElGamalCiphertext],
    shuffle: VerifiableShuffle,
) -> bool:
    """Verify a shadow-mix shuffle proof."""
    shadows = [round_.shadow for round_ in shuffle.proof.rounds]
    coins = _challenge_bits(inputs, shuffle.outputs, shadows)
    for index, round_ in enumerate(shuffle.proof.rounds):
        if round_.opens_input_side != coins[index]:
            return False
        if round_.opens_input_side:
            ok = _check_reencryption_mapping(elgamal, public_key, inputs, round_.shadow, round_.opening)
        else:
            ok = _check_reencryption_mapping(elgamal, public_key, round_.shadow, shuffle.outputs, round_.opening)
        if not ok:
            return False
    return True


def assert_valid_shuffle(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[ElGamalCiphertext],
    shuffle: VerifiableShuffle,
) -> None:
    if not verify_shuffle(elgamal, public_key, inputs, shuffle):
        raise VerificationError("shuffle proof failed verification")


@dataclass(frozen=True)
class MixCascadeResult:
    """The output of a cascade of mixers, with one verifiable shuffle per mixer."""

    stages: List[VerifiableShuffle]

    @property
    def outputs(self) -> List[ElGamalCiphertext]:
        return self.stages[-1].outputs if self.stages else []


def mix_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[ElGamalCiphertext],
    num_mixers: int,
    rounds: int = DEFAULT_SOUNDNESS_ROUNDS,
) -> MixCascadeResult:
    """Run ``num_mixers`` verifiable shuffles in sequence (the paper uses four)."""
    stages: List[VerifiableShuffle] = []
    current = list(inputs)
    for _ in range(num_mixers):
        stage = shuffle_with_proof(elgamal, public_key, current, rounds=rounds)
        stages.append(stage)
        current = stage.outputs
    return MixCascadeResult(stages=stages)


def verify_mix_cascade(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence[ElGamalCiphertext],
    cascade: MixCascadeResult,
) -> bool:
    """Verify every stage of a mix cascade against the original inputs."""
    current = list(inputs)
    for stage in cascade.stages:
        if not verify_shuffle(elgamal, public_key, current, stage):
            return False
        current = stage.outputs
    return True
