"""Hashing helpers (the paper uses SHA-256 with 2λ-bit outputs)."""

from __future__ import annotations

import hashlib


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over a length-prefixed concatenation of ``parts``.

    Length prefixing prevents ambiguity between e.g. ``(b"ab", b"c")`` and
    ``(b"a", b"bc")``, which matters for transcripts and signatures.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def sha512(*parts: bytes) -> bytes:
    """SHA-512 over a length-prefixed concatenation of ``parts``."""
    h = hashlib.sha512()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hash_hex(*parts: bytes) -> str:
    """Convenience: the hex digest of :func:`sha256`."""
    return sha256(*parts).hex()


def scalar_bytes(value: int) -> bytes:
    """A deterministic big-endian encoding for a group scalar.

    Fixed 64 bytes (the historical width, covering every ≤512-bit order) so
    existing transcripts keep their byte layout, widening only for the
    large-modulus groups (2048/3072-bit orders) that overflow it.
    """
    width = max(64, (value.bit_length() + 7) // 8)
    return value.to_bytes(width, "big")
