"""Abstract cyclic-group interface used throughout the library.

TRIP, Votegral and all baselines are written against this interface so that
the same protocol code runs over Edwards25519 (the paper's curve), a 2048-bit
mod-p Schnorr group (the "large modulus" setting Civitas uses), or a small
insecure group used to keep unit tests fast.

A :class:`Group` exposes the usual prime-order-group API:

* the order ``q`` and a fixed generator ``g``;
* scalar arithmetic mod ``q`` (plain Python integers);
* element operations: multiply (group operation), exponentiation, inverse;
* hashing to scalars and encoding elements to bytes.

Elements are immutable value objects (:class:`GroupElement`) that carry a
reference to their group, support ``*`` (group operation), ``**`` (scalar
exponentiation), ``==`` and hashing, and serialize via :meth:`GroupElement.to_bytes`.
"""

from __future__ import annotations

import abc
import hashlib
import secrets
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.crypto.multiexp import (
    GroupOps,
    collapse_terms,
    execute_plan,
    plan_multi_exponentiation,
)

# An optional accelerator for generator exponentiations, installed by
# :mod:`repro.runtime.precompute` (fixed-base tables).  The hook returns
# ``None`` when it declines (disabled, small group), in which case the plain
# square-and-multiply reference path runs.  Kept as a late-bound module
# global so the crypto layer has no import-time dependency on the runtime.
_power_accelerator: Optional[Callable[["Group", int], Optional["GroupElement"]]] = None


def set_power_accelerator(
    hook: Optional[Callable[["Group", int], Optional["GroupElement"]]],
) -> None:
    """Install (or clear, with ``None``) the fixed-base generator accelerator."""
    global _power_accelerator
    _power_accelerator = hook


class GroupElement(abc.ABC):
    """A single element of a cyclic group.

    Concrete backends subclass this with their internal representation
    (an integer mod p, or a curve point).  All elements are immutable.
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def group(self) -> "Group":
        """The group this element belongs to."""

    @abc.abstractmethod
    def operate(self, other: "GroupElement") -> "GroupElement":
        """Group operation (written multiplicatively)."""

    @abc.abstractmethod
    def exponentiate(self, scalar: int) -> "GroupElement":
        """Raise this element to ``scalar`` (mod the group order)."""

    @abc.abstractmethod
    def inverse(self) -> "GroupElement":
        """The inverse element."""

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """A canonical, fixed-length byte encoding."""

    @abc.abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abc.abstractmethod
    def __hash__(self) -> int: ...

    # Operator sugar -------------------------------------------------------

    def __mul__(self, other: "GroupElement") -> "GroupElement":
        return self.operate(other)

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        return self.operate(other.inverse())

    def __pow__(self, scalar: int) -> "GroupElement":
        return self.exponentiate(scalar)


class Group(abc.ABC):
    """A cyclic group of prime order ``q`` with a fixed generator ``g``."""

    name: str

    @property
    @abc.abstractmethod
    def order(self) -> int:
        """The prime order q of the group."""

    @property
    @abc.abstractmethod
    def generator(self) -> GroupElement:
        """The fixed generator g."""

    @property
    @abc.abstractmethod
    def identity(self) -> GroupElement:
        """The neutral element."""

    @abc.abstractmethod
    def element_from_bytes(self, data: bytes) -> GroupElement:
        """Decode a canonical encoding produced by :meth:`GroupElement.to_bytes`."""

    @abc.abstractmethod
    def hash_to_element(self, data: bytes) -> GroupElement:
        """Deterministically derive a group element from ``data``.

        Used for independent generators (Pedersen commitments, shuffle proofs)
        whose discrete log relative to ``g`` must be unknown.
        """

    # Scalar helpers ---------------------------------------------------------

    def random_scalar(self) -> int:
        """A uniform scalar in [1, q-1]."""
        return secrets.randbelow(self.order - 1) + 1

    def hash_to_scalar(self, *parts: bytes) -> int:
        """Hash arbitrary byte strings to a scalar in [0, q-1] (Fiat–Shamir)."""
        h = hashlib.sha512()
        for part in parts:
            h.update(len(part).to_bytes(8, "big"))
            h.update(part)
        return int.from_bytes(h.digest(), "big") % self.order

    def scalar_from_bytes(self, data: bytes) -> int:
        return int.from_bytes(data, "big") % self.order

    # Convenience ------------------------------------------------------------

    def power(self, scalar: int) -> GroupElement:
        """g**scalar for the fixed generator (fixed-base accelerated when hot)."""
        hook = _power_accelerator
        if hook is not None:
            result = hook(self, scalar)
            if result is not None:
                return result
        return self.generator.exponentiate(scalar)

    def encode_int(self, value: int) -> GroupElement:
        """Map a small non-negative integer to a group element as g**value.

        Exponential encoding: homomorphic addition of plaintexts corresponds to
        multiplication of ciphertexts.  Decoding requires a small-range discrete
        log (see :meth:`decode_int`).
        """
        if value < 0:
            raise ValueError("encode_int expects a non-negative integer")
        return self.power(value)

    def decode_int(self, element: GroupElement, max_value: int = 10_000) -> int:
        """Brute-force the small discrete log of ``element`` base ``g``.

        **Cost: O(max_value) group operations in the worst case.**  The probe
        walks ``identity, g, g², …`` one multiplication at a time, and the
        walk restarts from the identity on *every* call — there is no cache
        shared between call sites, so decoding ``k`` elements costs
        ``O(k · max_value)``.  Callers decoding many elements against the
        same range (exponential-ElGamal tallies) should keep ``max_value``
        as tight as the plaintext domain allows (e.g. ``num_options - 1``).

        Raises :class:`ValueError` if the value is not in [0, max_value].
        """
        if max_value == 0:
            # Short-circuit the degenerate range: no probe chain to walk.
            if element == self.identity:
                return 0
            raise ValueError("element does not encode an integer in range")
        probe = self.identity
        g = self.generator
        for candidate in range(max_value + 1):
            if probe == element:
                return candidate
            probe = probe.operate(g)
        raise ValueError("element does not encode an integer in range")

    def multi_exponentiate(
        self, bases: Sequence[GroupElement], scalars: Sequence[int]
    ) -> GroupElement:
        """Product of ``bases[i] ** scalars[i]`` via Straus/Pippenger.

        The workhorse behind every random-linear-combination fold in
        :mod:`repro.runtime.batch`: instead of one full exponentiation per
        term, the shared squaring chain of an interleaved-window (Straus) or
        bucket-method (Pippenger) evaluation brings the per-term cost down
        to ``~|q|/w`` group operations (see :mod:`repro.crypto.multiexp`
        for the algorithms and the size-based crossover).

        Semantics match the naive fold exactly: scalars are reduced mod the
        group order (negative scalars act as inverses), duplicate bases are
        merged by summing their scalars, zero-scalar terms vanish, an empty
        term list yields the identity.  ``bases`` and ``scalars`` must have
        equal length (:class:`ValueError` otherwise).

        Backends override :meth:`_multi_exponentiate_terms` to run the same
        algorithms on their native representation; this entry point owns the
        term normalisation so every backend agrees on edge cases.
        """
        terms = collapse_terms(self.order, bases, scalars, key=lambda base: base.to_bytes())
        if not terms:
            return self.identity
        if len(terms) == 1:
            base, scalar = terms[0]
            return base.exponentiate(scalar)
        return self._multi_exponentiate_terms(terms)

    def _multi_exponentiate_terms(
        self, terms: Sequence[Tuple[GroupElement, int]]
    ) -> GroupElement:
        """Evaluate normalised ``(base, scalar)`` terms (backend hook).

        The default runs the kernels over :class:`GroupElement` operations,
        assuming a double-and-add ladder for the naive alternative — correct
        for any backend.  Concrete groups override this with their native
        value types and calibrated cost constants.
        """
        values: List[GroupElement] = [base for base, _ in terms]
        scalars = [scalar for _, scalar in terms]
        max_bits = max(scalar.bit_length() for scalar in scalars)
        ops = GroupOps(
            identity=self.identity,
            multiply=lambda a, b: a.operate(b),
            advance=lambda a, k: a.exponentiate(1 << k),
            invert=lambda a: a.inverse(),
        )
        plan = plan_multi_exponentiation(
            len(terms),
            max_bits,
            exponentiate_cost=1.5 * max_bits,
            invert_cost=10.0,
        )
        return execute_plan(ops, values, scalars, plan, lambda base, scalar: base.exponentiate(scalar))


@dataclass(frozen=True)
class GroupDescription:
    """A lightweight, serializable description of a group choice.

    Protocol messages and ledger records refer to groups by description so a
    verifier can re-instantiate the correct backend.
    """

    name: str
    bits: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.bits} bits)"
