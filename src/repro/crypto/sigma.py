"""Generic Σ-protocol machinery: interactive transcripts and printing order.

TRIP's central trick (§4.3) is that a Σ-protocol transcript proves nothing by
itself — soundness comes from the *order* in which the three moves happened:

* **sound** order:   prover commits, verifier picks a fresh challenge, prover
  responds — only a prover who knows the witness can answer;
* **unsound** order: the prover learns the challenge first and runs the
  honest-verifier simulator, producing a transcript that verifies perfectly
  but proves nothing.

This module captures that distinction explicitly.  A
:class:`SigmaTranscript` is the paper artefact (what is printed on the
receipt); a :class:`SigmaSession` records the *order* of moves (what the
voter observes in the booth) and refuses to emit a "sound" transcript if the
challenge was supplied before the commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.crypto.hashing import scalar_bytes
from repro.errors import ProtocolError


class Move(enum.Enum):
    """The three moves of a Σ-protocol."""

    COMMIT = "commit"
    CHALLENGE = "challenge"
    RESPONSE = "response"


SOUND_ORDER = (Move.COMMIT, Move.CHALLENGE, Move.RESPONSE)
UNSOUND_ORDER = (Move.CHALLENGE, Move.COMMIT, Move.RESPONSE)


@dataclass
class SigmaSession:
    """Records the observable order of Σ-protocol moves in a session.

    The voter in the booth cannot check any algebra, but they *can* observe
    which of the commit / challenge steps happened first (it is materialized
    as the order of printing versus envelope scanning).  This object is that
    observation.
    """

    moves: List[Move] = field(default_factory=list)

    def record(self, move: Move) -> None:
        if move in self.moves:
            raise ProtocolError(f"duplicate Σ-protocol move: {move.value}")
        self.moves.append(move)

    @property
    def is_complete(self) -> bool:
        return len(self.moves) == 3

    @property
    def is_sound_order(self) -> bool:
        """True iff the moves followed commit → challenge → response."""
        return tuple(self.moves) == SOUND_ORDER

    @property
    def observed_order(self) -> tuple:
        return tuple(self.moves)


@dataclass(frozen=True)
class SigmaTranscript:
    """A (commit, challenge, response) triple as printed on paper.

    Deliberately order-free: given only the transcript, a coercer cannot tell
    whether the commit or the challenge came first, which is exactly why fake
    credentials are indistinguishable from real ones once printed.
    """

    statement: bytes
    commit: bytes
    challenge: int
    response: int

    def fingerprint(self) -> bytes:
        from repro.crypto.hashing import sha256

        return sha256(
            self.statement,
            self.commit,
            scalar_bytes(self.challenge),
            scalar_bytes(self.response),
        )


@dataclass(frozen=True)
class InteractiveProofResult:
    """The outcome of running a Σ-protocol inside a registration session."""

    transcript: "object"
    session: SigmaSession
    claimed_sound: bool

    def voter_observes_sound_order(self) -> bool:
        """What the voter can verify without a device: the printing order."""
        return self.session.is_sound_order

    def consistent(self) -> bool:
        """A *claimed-real* credential must have been produced in sound order."""
        return self.claimed_sound == self.session.is_sound_order


def require_move_order(session: SigmaSession, expected: tuple, context: str = "") -> None:
    """Raise :class:`ProtocolError` unless the session followed ``expected``."""
    if tuple(session.moves) != expected:
        raise ProtocolError(
            f"Σ-protocol moves out of order{f' in {context}' if context else ''}: "
            f"observed {[m.value for m in session.moves]}"
        )
