"""Shamir secret sharing over the group's scalar field.

Used by the distributed key generation (:mod:`repro.crypto.dkg`) so the
election authority's private key is reconstructable by any threshold subset,
and by the social-key-recovery extension discussed in Appendix K.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Share:
    """A single Shamir share: the evaluation of the secret polynomial at ``index``."""

    index: int
    value: int


def split_secret(secret: int, threshold: int, num_shares: int, modulus: int) -> List[Share]:
    """Split ``secret`` into ``num_shares`` shares with reconstruction threshold ``threshold``.

    The polynomial is of degree ``threshold - 1`` with the secret as the
    constant coefficient; shares are evaluations at x = 1..num_shares.
    """
    if not 1 <= threshold <= num_shares:
        raise ValueError("threshold must satisfy 1 <= threshold <= num_shares")
    if not 0 <= secret < modulus:
        raise ValueError("secret must be reduced modulo the field order")
    coefficients = [secret] + [secrets.randbelow(modulus) for _ in range(threshold - 1)]
    shares = []
    for index in range(1, num_shares + 1):
        value = 0
        for power, coefficient in enumerate(coefficients):
            value = (value + coefficient * pow(index, power, modulus)) % modulus
        shares.append(Share(index=index, value=value))
    return shares


def lagrange_coefficient(index: int, indices: Sequence[int], modulus: int) -> int:
    """The Lagrange basis polynomial for ``index`` evaluated at zero."""
    numerator, denominator = 1, 1
    for other in indices:
        if other == index:
            continue
        numerator = (numerator * (-other)) % modulus
        denominator = (denominator * (index - other)) % modulus
    return (numerator * pow(denominator, -1, modulus)) % modulus


def reconstruct_secret(shares: Sequence[Share], modulus: int) -> int:
    """Reconstruct the secret from at least ``threshold`` distinct shares."""
    if not shares:
        raise ValueError("at least one share is required")
    indices = [share.index for share in shares]
    if len(set(indices)) != len(indices):
        raise ValueError("shares must have distinct indices")
    secret = 0
    for share in shares:
        coefficient = lagrange_coefficient(share.index, indices, modulus)
        secret = (secret + share.value * coefficient) % modulus
    return secret


def reconstruct_in_exponent(points: Dict[int, "object"], modulus: int):
    """Lagrange interpolation "in the exponent".

    ``points`` maps share indices to group elements ``c1^{sk_i}``.  Returns the
    product ``∏ (c1^{sk_i})^{λ_i}`` which equals ``c1^{sk}``; used for threshold
    ElGamal decryption with Shamir-shared keys.
    """
    indices = list(points.keys())
    result = None
    for index, element in points.items():
        coefficient = lagrange_coefficient(index, indices, modulus)
        term = element ** coefficient
        result = term if result is None else result * term
    return result
