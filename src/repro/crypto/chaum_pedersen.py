"""Chaum–Pedersen proof of discrete-log equality — TRIP's core Σ-protocol.

The kiosk must convince the voter that the public credential tag

    c_pc = (C1, C2) = (g^x, A_pk^x · c_pk)

really encrypts the credential's public key ``c_pk`` under the authority key
``A_pk``.  Equivalently, with ``X = C2 / c_pk``, the kiosk proves knowledge of
``x`` such that ``C1 = g^x`` and ``X = A_pk^x`` — a proof of equality of
discrete logarithms (ZKPoE, Appendix E.1).

* :class:`ChaumPedersenProver` runs the **sound** interactive protocol used
  for real credentials: the commit is fixed before the challenge is known and
  the response requires the witness ``x``.
* :func:`simulate_chaum_pedersen` runs the honest-verifier **simulator** used
  for fake credentials: given the challenge first, it fabricates a transcript
  that verifies although no witness exists (Fig. 9b of the paper).
* :func:`chaum_pedersen_verify` checks a transcript; it accepts real and fake
  transcripts alike — by design, the transcript alone cannot reveal which is
  which.
* :func:`fiat_shamir_prove` / :func:`fiat_shamir_verify` provide the
  non-interactive variant used by the baselines (Swiss Post ballot proofs,
  Civitas credential proofs) and by ballot-wellformedness proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.group import Group, GroupElement
from repro.crypto.hashing import scalar_bytes
from repro.errors import ProtocolError


@dataclass(frozen=True)
class ChaumPedersenStatement:
    """The public statement: ``C1 = g^x`` and ``X = h^x`` for bases (g, h)."""

    base_g: GroupElement
    base_h: GroupElement
    value_g: GroupElement  # C1
    value_h: GroupElement  # X

    def to_bytes(self) -> bytes:
        return (
            self.base_g.to_bytes()
            + self.base_h.to_bytes()
            + self.value_g.to_bytes()
            + self.value_h.to_bytes()
        )

    @property
    def group(self) -> Group:
        return self.base_g.group


@dataclass(frozen=True)
class ChaumPedersenCommit:
    """The prover's first move ``(Y1, Y2) = (g^y, h^y)``."""

    commit_g: GroupElement
    commit_h: GroupElement

    def to_bytes(self) -> bytes:
        return self.commit_g.to_bytes() + self.commit_h.to_bytes()


@dataclass(frozen=True)
class ChaumPedersenTranscript:
    """A full (statement, commit, challenge, response) transcript.

    Printed on TRIP receipts; verifiable by anyone; silent about whether the
    commit or the challenge was chosen first.
    """

    statement: ChaumPedersenStatement
    commit: ChaumPedersenCommit
    challenge: int
    response: int

    def to_bytes(self) -> bytes:
        return (
            self.statement.to_bytes()
            + self.commit.to_bytes()
            + scalar_bytes(self.challenge)
            + scalar_bytes(self.response)
        )


class ChaumPedersenProver:
    """The sound, interactive prover used when issuing a *real* credential.

    The object enforces the Σ-protocol move order: :meth:`commit` must be
    called before :meth:`respond`, and :meth:`respond` requires the verifier's
    challenge.  A kiosk that wants to cheat cannot use this class — it has to
    use the simulator, which requires the challenge up front, and the voter
    can observe that difference in the physical printing order.
    """

    def __init__(self, statement: ChaumPedersenStatement, witness: int):
        self.statement = statement
        self.witness = witness
        self._nonce: Optional[int] = None
        self._commit: Optional[ChaumPedersenCommit] = None

    def commit(self, nonce: Optional[int] = None) -> ChaumPedersenCommit:
        """First move: choose y and output (g^y, h^y)."""
        if self._commit is not None:
            raise ProtocolError("commit was already produced for this proof")
        group = self.statement.group
        self._nonce = nonce if nonce is not None else group.random_scalar()
        self._commit = ChaumPedersenCommit(
            commit_g=self.statement.base_g ** self._nonce,
            commit_h=self.statement.base_h ** self._nonce,
        )
        return self._commit

    def respond(self, challenge: int) -> ChaumPedersenTranscript:
        """Third move: r = y − e·x (mod q).  Requires :meth:`commit` first."""
        if self._commit is None or self._nonce is None:
            raise ProtocolError("respond() called before commit(): unsound order")
        group = self.statement.group
        response = (self._nonce - challenge * self.witness) % group.order
        return ChaumPedersenTranscript(
            statement=self.statement,
            commit=self._commit,
            challenge=challenge % group.order,
            response=response,
        )


def simulate_chaum_pedersen(
    statement: ChaumPedersenStatement,
    challenge: int,
    response: Optional[int] = None,
) -> ChaumPedersenTranscript:
    """Honest-verifier simulator: forge a verifying transcript from the challenge.

    Given the challenge ``e`` *before* committing, pick the response ``r`` at
    random and back-compute the commit ``(g^r·C1^e, h^r·X^e)``.  The resulting
    transcript satisfies the verification equations even though no witness is
    known — this is exactly how the kiosk prints fake credentials (Fig. 9b).
    """
    group = statement.group
    r = response if response is not None else group.random_scalar()
    e = challenge % group.order
    commit = ChaumPedersenCommit(
        commit_g=(statement.base_g ** r) * (statement.value_g ** e),
        commit_h=(statement.base_h ** r) * (statement.value_h ** e),
    )
    return ChaumPedersenTranscript(statement=statement, commit=commit, challenge=e, response=r)


def chaum_pedersen_verify(transcript: ChaumPedersenTranscript) -> bool:
    """Check the verification equations ``Y1 = g^r·C1^e`` and ``Y2 = h^r·X^e``."""
    statement = transcript.statement
    e = transcript.challenge
    r = transcript.response
    lhs_g = (statement.base_g ** r) * (statement.value_g ** e)
    lhs_h = (statement.base_h ** r) * (statement.value_h ** e)
    return lhs_g == transcript.commit.commit_g and lhs_h == transcript.commit.commit_h


# ---------------------------------------------------------------------------
# Non-interactive (Fiat–Shamir) variant
# ---------------------------------------------------------------------------


def fiat_shamir_challenge(statement: ChaumPedersenStatement, commit: ChaumPedersenCommit, context: bytes) -> int:
    return statement.group.hash_to_scalar(
        b"chaum-pedersen-fiat-shamir",
        context,
        statement.to_bytes(),
        commit.to_bytes(),
    )


def fiat_shamir_prove(
    statement: ChaumPedersenStatement,
    witness: int,
    context: bytes = b"",
) -> ChaumPedersenTranscript:
    """A non-interactive proof (challenge = hash of commit).

    Used by baselines and by internal consistency proofs.  TRIP deliberately
    does **not** hand such a proof to the voter for credential realness — a
    NIZK would be transferable to a coercer (§4.3's straw-man).
    """
    prover = ChaumPedersenProver(statement, witness)
    commit = prover.commit()
    challenge = fiat_shamir_challenge(statement, commit, context)
    return prover.respond(challenge)


def fiat_shamir_verify(transcript: ChaumPedersenTranscript, context: bytes = b"") -> bool:
    expected = fiat_shamir_challenge(transcript.statement, transcript.commit, context)
    return transcript.challenge == expected and chaum_pedersen_verify(transcript)
