"""Multiplicative (Schnorr) subgroups of Z_p* as a :class:`~repro.crypto.group.Group`.

Two roles in the reproduction:

* ``modp_group_2048`` / ``modp_group_3072`` model the "large-modulus
  primitives" the Civitas implementation uses (§7.3 of the paper attributes a
  large part of Civitas' slowness to this choice versus elliptic curves).
* ``testing_group`` is a small, fast, **insecure** group used to keep the unit
  tests quick.  Its parameters are clearly labelled and must never be used
  outside tests.

A Schnorr group is the order-``q`` subgroup of Z_p* where ``p = 2q·r + 1``.
We use safe primes (``p = 2q + 1``) so every quadratic residue generates the
subgroup, which makes hashing to the group trivial (square the hash).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any, List, Sequence, Tuple

from repro.crypto import bigint
from repro.crypto.group import Group, GroupElement
from repro.crypto.multiexp import GroupOps, execute_plan, plan_multi_exponentiation

#: Below this subgroup-order size, CPython's native ``pow`` beats any
#: Python-level multi-exponentiation (interpreter overhead dominates small
#: bigint arithmetic), so `multi_exponentiate` stays on the naive per-term
#: loop.  Mirrors ``repro.runtime.precompute.MIN_ORDER_BITS``.
MULTIEXP_MIN_ORDER_BITS = 192


class ModPElement(GroupElement):
    """An element of a Schnorr subgroup, stored as an integer mod p.

    The integer type is the group's big-integer backend value
    (:mod:`repro.crypto.bigint`): plain ``int`` by default, ``gmpy2.mpz``
    when the gmpy2 backend is active.  Both hash and compare identically and
    encode to the same canonical bytes.
    """

    __slots__ = ("_value", "_group")

    def __init__(self, value: int, group: "ModPGroup"):
        # ``modulus`` is a backend value, so the reduction also converts
        # plain-int inputs into the backend's representation.
        self._value = value % group.modulus
        self._group = group

    @property
    def value(self) -> int:
        return self._value

    @property
    def group(self) -> "ModPGroup":
        return self._group

    def operate(self, other: GroupElement) -> "ModPElement":
        if not isinstance(other, ModPElement) or other._group is not self._group:
            raise TypeError("cannot combine elements from different groups")
        return ModPElement((self._value * other._value) % self._group.modulus, self._group)

    def exponentiate(self, scalar: int) -> "ModPElement":
        group = self._group
        return ModPElement(
            group._backend.powmod(self._value, scalar % group.order, group.modulus), group
        )

    def inverse(self) -> "ModPElement":
        return ModPElement(self._group._backend.invert(self._value, self._group.modulus), self._group)

    def to_bytes(self) -> bytes:
        return int(self._value).to_bytes(self._group.element_bytes, "big")

    def __reduce__(self):
        # Normalise to a plain int for transport: a pickled element must
        # unpickle in processes whose bigint backend differs (a cluster may
        # mix gmpy2 and pure-python workers).
        return (ModPElement, (int(self._value), self._group))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ModPElement)
            and other._group is self._group
            and other._value == self._value
        )

    def __hash__(self) -> int:
        return hash((id(self._group), self._value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModPElement({self._value:#x})"


class ModPGroup(Group):
    """The order-q subgroup of Z_p* for a safe prime p = 2q + 1.

    Arithmetic runs on the process-wide big-integer backend
    (:func:`repro.crypto.bigint.active_backend`): the modulus and all element
    values are backend values, and exponentiation/inversion route through the
    backend's ``powmod``/``invert``.  The backend is captured at construction
    time, which is why switching backends requires rebuilding the group
    singletons (see :func:`repro.crypto.bigint.set_active_backend`).
    """

    def __init__(self, name: str, modulus: int, order: int, generator: int):
        self.name = name
        self._backend = bigint.active_backend()
        self.modulus = self._backend.convert(modulus)
        self._order = order
        self.element_bytes = (int(modulus).bit_length() + 7) // 8
        self._generator = ModPElement(generator, self)
        self._identity = ModPElement(1, self)
        if self._backend.powmod(self._generator.value, order, self.modulus) != 1:
            raise ValueError("generator does not have the declared order")

    @property
    def order(self) -> int:
        return self._order

    @property
    def generator(self) -> ModPElement:
        return self._generator

    @property
    def identity(self) -> ModPElement:
        return self._identity

    def element(self, value: int) -> ModPElement:
        """Wrap a raw integer (assumed to be a subgroup member)."""
        return ModPElement(value, self)

    def element_from_bytes(self, data: bytes) -> ModPElement:
        value = int.from_bytes(data, "big")
        if not 1 <= value < self.modulus:
            raise ValueError("encoded value outside the field")
        return ModPElement(value, self)

    def hash_to_element(self, data: bytes) -> ModPElement:
        """Hash into the subgroup by squaring a field element derived from data."""
        digest = hashlib.sha512(data).digest()
        candidate = int.from_bytes(digest, "big") % self.modulus
        if candidate == 0:
            candidate = 1
        return ModPElement(self._backend.powmod(candidate, 2, self.modulus), self)

    def is_member(self, element: ModPElement) -> bool:
        """Subgroup membership test: x^q == 1 mod p."""
        return self._backend.powmod(element.value, self._order, self.modulus) == 1

    def _multi_exponentiate_terms(
        self, terms: Sequence[Tuple[GroupElement, int]]
    ) -> ModPElement:
        """Straus/Pippenger over raw residues with backend-native inner ops.

        Runs the kernels on bare backend integers rather than
        :class:`ModPElement` wrappers (no per-step object churn), advances
        the shared squaring chain with one native ``powmod(acc, 2**k, p)``
        instead of ``k`` interpreted squarings, and feeds the planner cost
        constants calibrated for CPython bigints: a native full
        exponentiation costs ≈0.87·|q| mulmod-units at 2048 bits (less at
        smaller sizes, interpolated below), a squaring ≈0.8 of a
        multiplication, a modular inverse ≈25.

        Below :data:`MULTIEXP_MIN_ORDER_BITS` the naive native-pow loop is
        unbeatable from Python, so small (toy/test) groups keep it.
        """
        modulus = self.modulus
        backend = self._backend
        bits = self._order.bit_length()
        if bits < MULTIEXP_MIN_ORDER_BITS:
            accumulator = self._identity
            for base, scalar in terms:
                accumulator = accumulator.operate(base.exponentiate(scalar))
            return accumulator
        values: List[Any] = [base.value for base, _ in terms]
        scalars = [scalar for _, scalar in terms]
        max_bits = max(scalar.bit_length() for scalar in scalars)
        ops = GroupOps(
            identity=backend.convert(1),
            multiply=lambda a, b: (a * b) % modulus,
            advance=lambda a, k: backend.powmod(a, 1 << k, modulus),
            invert=lambda a: backend.invert(a, modulus),
        )
        # Native pow's advantage over interpreted mulmod grows as operands
        # shrink (C loop vs. bytecode): ≈0.87·bits at 2048 bits, roughly
        # 0.3·bits around 256 bits.  Linear interpolation is plenty — the
        # planner only needs the naive/Straus/Pippenger ordering right.
        exponentiate_cost = max_bits * (0.3 + 0.57 * min(1.0, modulus.bit_length() / 2048))
        plan = plan_multi_exponentiation(
            len(terms),
            max_bits,
            exponentiate_cost=exponentiate_cost,
            square_cost=0.8,
            invert_cost=25.0,
        )
        result = execute_plan(
            ops,
            values,
            scalars,
            plan,
            lambda value, scalar: backend.powmod(value, scalar, modulus),
        )
        return ModPElement(result, self)

    def __reduce__(self):
        # Groups are compared by identity (``is``) in element operations, so
        # pickling — e.g. shipping work to a :class:`ProcessExecutor` worker —
        # must resolve back to the per-process canonical instance for these
        # parameters rather than construct a fresh object.  Parameters are
        # normalised to plain ints so the payload is backend-independent.
        return (
            _group_from_params,
            (self.name, int(self.modulus), self._order, int(self._generator.value)),
        )


# ---------------------------------------------------------------------------
# Parameter presets
# ---------------------------------------------------------------------------

# RFC 3526 MODP group 14 (2048-bit) prime.  It is not a safe prime of the form
# 2q+1 with prime q for the full group, but (p-1)/2 is prime for this modulus,
# so the quadratic-residue subgroup has prime order (p-1)/2.
_RFC3526_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

# RFC 3526 MODP group 15 (3072-bit) prime.
_RFC3526_3072_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33"
    "A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7"
    "ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864"
    "D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2"
    "08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A93AD2CAFFFFFFFFFFFFFFFF",
    16,
)

# A 256-bit Schnorr group with a safe prime, generated offline.  Used as the
# "elliptic-curve-equivalent small group" when Ed25519 is too slow for a given
# workload; its exponent size (≈255 bits) matches the paper's curve order.
_SAFE_256_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF72EF
_SAFE_256_Q = (_SAFE_256_P - 1) // 2

# Small toy parameters for tests: p = 2q+1 with q prime (63-bit p).  NOT SECURE.
_TOY_P = 9223372036854771239
_TOY_Q = (_TOY_P - 1) // 2


def _quadratic_residue_generator(p: int) -> int:
    """Return a generator of the quadratic-residue subgroup of Z_p*."""
    return pow(2, 2, p) if pow(2, (p - 1) // 2, p) != 1 else 2


@lru_cache(maxsize=None)
def _group_from_params(name: str, modulus: int, order: int, generator: int) -> ModPGroup:
    """The canonical (per-process) group instance for a parameter set.

    Both the preset factories below and :meth:`ModPGroup.__reduce__` resolve
    through this cache, so elements that round-trip through pickle (process
    executors) land back on the same group object as locally created ones.
    """
    return ModPGroup(name, modulus, order, generator)


@lru_cache(maxsize=None)
def modp_group_2048() -> ModPGroup:
    """The 2048-bit "Civitas-style" large-modulus group."""
    p = _RFC3526_2048_P
    q = (p - 1) // 2
    return _group_from_params("modp-2048", p, q, _quadratic_residue_generator(p))


@lru_cache(maxsize=None)
def modp_group_3072() -> ModPGroup:
    """A 3072-bit large-modulus group (higher-security Civitas setting)."""
    p = _RFC3526_3072_P
    q = (p - 1) // 2
    return _group_from_params("modp-3072", p, q, _quadratic_residue_generator(p))


@lru_cache(maxsize=None)
def modp_group_256() -> ModPGroup:
    """A 256-bit safe-prime group whose exponent size matches edwards25519."""
    if not _is_probable_prime(_SAFE_256_Q) or not _is_probable_prime(_SAFE_256_P):
        raise RuntimeError("256-bit preset parameters are not prime")  # pragma: no cover
    return _group_from_params("modp-256", _SAFE_256_P, _SAFE_256_Q, _quadratic_residue_generator(_SAFE_256_P))


@lru_cache(maxsize=None)
def testing_group() -> ModPGroup:
    """A tiny, fast, **insecure** group for unit tests only."""
    if not _is_probable_prime(_TOY_Q) or not _is_probable_prime(_TOY_P):
        raise RuntimeError("testing group parameters are not prime")  # pragma: no cover
    return _group_from_params("modp-toy-INSECURE", _TOY_P, _TOY_Q, _quadratic_residue_generator(_TOY_P))


def _reset_group_caches() -> None:
    """Drop the canonical group instances (bigint backend switched).

    Registered with :func:`repro.crypto.bigint.register_reset_hook`; groups
    constructed after a backend switch must capture the new backend, and the
    cached singletons hold the old one.
    """
    _group_from_params.cache_clear()
    modp_group_2048.cache_clear()
    modp_group_3072.cache_clear()
    modp_group_256.cache_clear()
    testing_group.cache_clear()


bigint.register_reset_hook(_reset_group_caches)


def _is_probable_prime(n: int, rounds: int = 20) -> bool:
    """Miller–Rabin primality test (deterministic witnesses + random rounds)."""
    if n < 2:
        return False
    small_primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
    for p in small_primes:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    import random

    # Witnesses are drawn from an RNG seeded by the candidate itself: the
    # same n always gets the same witness set, so a primality verdict is
    # replayable across processes and schedules (REP002).  Soundness is
    # unchanged — Miller-Rabin only needs witnesses the adversary cannot
    # choose *after* seeing n, and group moduli here are fixed constants.
    rng = random.Random(n)
    witnesses = small_primes + [rng.randrange(2, n - 1) for _ in range(rounds)]
    for a in witnesses:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True
