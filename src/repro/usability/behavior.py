"""Voter behaviour profiles for the usability simulation."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BehaviorProfile:
    """Per-voter behavioural rates, taken from the paper where published.

    * ``registration_success_rate`` — fraction of participants who created and
      used their real credential to cast a mock vote (83 % in the main study);
    * ``detection_rate_educated`` / ``detection_rate_uneducated`` — fraction
      who identified and reported a misbehaving kiosk with / without security
      education (47 % / 10 %);
    * ``sus_mean`` / ``sus_std`` — System Usability Scale score distribution
    * ``mean_fake_credentials`` — how many fake credentials voters choose to
      create (not published per-voter; defaults to one, the scripted setup).
    """

    registration_success_rate: float = 0.83
    detection_rate_educated: float = 0.47
    detection_rate_uneducated: float = 0.10
    sus_mean: float = 70.4
    sus_std: float = 16.0
    mean_fake_credentials: float = 1.0


PUBLISHED_STUDY = BehaviorProfile()


@dataclass
class VoterBehaviorModel:
    """Samples individual voter behaviour from a :class:`BehaviorProfile`."""

    profile: BehaviorProfile = PUBLISHED_STUDY
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def completes_registration(self) -> bool:
        """Does this participant complete registration and cast a mock vote?"""
        return self._rng.random() < self.profile.registration_success_rate

    def detects_malicious_kiosk(self, educated: bool) -> bool:
        """Does this participant notice and report the wrong step order?"""
        rate = (
            self.profile.detection_rate_educated
            if educated
            else self.profile.detection_rate_uneducated
        )
        return self._rng.random() < rate

    def sus_score(self) -> float:
        """A System Usability Scale response (clamped to the 0-100 scale)."""
        score = self._rng.gauss(self.profile.sus_mean, self.profile.sus_std)
        return min(100.0, max(0.0, score))

    def num_fake_credentials(self) -> int:
        """How many fake credentials this voter creates (geometric, mean as configured)."""
        mean = self.profile.mean_fake_credentials
        if mean <= 0:
            return 0
        p = 1.0 / (1.0 + mean)
        count = 0
        while self._rng.random() > p and count < 10:
            count += 1
        return count
