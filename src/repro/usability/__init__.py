"""The §7.5 usability-study model.

We cannot re-run a 150-participant human-subject study, so this package
models voter behaviour stochastically with the published rates and reproduces
the quantitative claims of §7.5: the 83 % end-to-end success rate, the System
Usability Scale score of 70.4, the 47 % (with security education) and 10 %
(without) malicious-kiosk detection rates, and the derived probability that a
malicious kiosk survives 50 / 1000 voters undetected.
"""

from repro.usability.behavior import VoterBehaviorModel, BehaviorProfile, PUBLISHED_STUDY
from repro.usability.study import UsabilityStudy, StudyResults, run_published_study

__all__ = [
    "VoterBehaviorModel",
    "BehaviorProfile",
    "PUBLISHED_STUDY",
    "UsabilityStudy",
    "StudyResults",
    "run_published_study",
]
