"""Simulation of the §7.5 user study.

:class:`UsabilityStudy` runs ``n`` simulated participants through an actual
TRIP registration (on the toy group, so a 150-participant study takes
seconds), applying the behaviour model to decide who completes the workflow,
who detects a malicious kiosk when exposed to one, and what SUS score they
report.  The aggregate :class:`StudyResults` mirror the numbers in §7.5 and
feed the E8 benchmark table.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.group import Group
from repro.crypto.modp_group import testing_group
from repro.registration.protocol import RegistrationSession
from repro.registration.setup import ElectionSetup
from repro.registration.voter import Voter
from repro.security.analysis import kiosk_undetected_probability
from repro.usability.behavior import PUBLISHED_STUDY, BehaviorProfile, VoterBehaviorModel


@dataclass
class StudyResults:
    """Aggregate outcomes of a simulated usability study."""

    participants: int
    completed_registration: int
    detections_educated: int
    exposed_educated: int
    detections_uneducated: int
    exposed_uneducated: int
    sus_scores: List[float] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.completed_registration / self.participants if self.participants else 0.0

    @property
    def detection_rate_educated(self) -> float:
        return self.detections_educated / self.exposed_educated if self.exposed_educated else 0.0

    @property
    def detection_rate_uneducated(self) -> float:
        return self.detections_uneducated / self.exposed_uneducated if self.exposed_uneducated else 0.0

    @property
    def sus_mean(self) -> float:
        return statistics.fmean(self.sus_scores) if self.sus_scores else 0.0

    def kiosk_survival_probability(self, num_voters: int, educated: bool = False) -> float:
        """P[a malicious kiosk survives ``num_voters`` registrations undetected]."""
        rate = self.detection_rate_educated if educated else self.detection_rate_uneducated
        return kiosk_undetected_probability(rate, num_voters)


@dataclass
class UsabilityStudy:
    """Drives simulated participants through real TRIP registrations."""

    participants: int = 150
    educated_fraction: float = 0.5
    exposed_to_malicious_kiosk_fraction: float = 0.5
    profile: BehaviorProfile = PUBLISHED_STUDY
    seed: Optional[int] = None
    group: Optional[Group] = None

    def run(self) -> StudyResults:
        group = self.group if self.group is not None else testing_group()
        behavior = VoterBehaviorModel(profile=self.profile, seed=self.seed)
        voter_ids = [f"participant-{index:03d}" for index in range(self.participants)]
        setup = ElectionSetup.run(group, voter_ids, num_authority_members=2, envelopes_per_voter=3)
        session = RegistrationSession(setup=setup)

        completed = 0
        detections_educated = exposed_educated = 0
        detections_uneducated = exposed_uneducated = 0
        sus_scores: List[float] = []

        for index, voter_id in enumerate(voter_ids):
            educated = (index / self.participants) < self.educated_fraction
            exposed = ((index % 100) / 100.0) < self.exposed_to_malicious_kiosk_fraction

            voter = Voter(voter_id, num_fake_credentials=max(0, behavior.num_fake_credentials()))
            if behavior.completes_registration():
                outcome = session.register(voter, activate=True)
                if outcome.real_activated:
                    completed += 1
            sus_scores.append(behavior.sus_score())

            if exposed:
                detected = behavior.detects_malicious_kiosk(educated)
                if educated:
                    exposed_educated += 1
                    detections_educated += int(detected)
                else:
                    exposed_uneducated += 1
                    detections_uneducated += int(detected)

        return StudyResults(
            participants=self.participants,
            completed_registration=completed,
            detections_educated=detections_educated,
            exposed_educated=exposed_educated,
            detections_uneducated=detections_uneducated,
            exposed_uneducated=exposed_uneducated,
            sus_scores=sus_scores,
        )


def run_published_study(seed: Optional[int] = 7) -> StudyResults:
    """The 150-participant configuration of the paper's main study."""
    return UsabilityStudy(participants=150, seed=seed).run()
