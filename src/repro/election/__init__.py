"""Full Votegral election orchestration: setup → registration → voting → tally."""

from repro.election.config import ElectionConfig
from repro.election.pipeline import VotegralElection, ElectionReport

__all__ = ["ElectionConfig", "VotegralElection", "ElectionReport"]
