"""The complete Votegral election pipeline.

:class:`VotegralElection` strings together every phase the paper's end-to-end
evaluation (§7.4) measures: setup, in-person registration via TRIP, ballot
casting (real and fake), and the verifiable tally.  It is the object the
examples and the Figure 5 benchmarks drive.
"""

from __future__ import annotations

import random
import secrets
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.audit.api import AuditReport
from repro.audit.checks import audit_election
from repro.election.config import ElectionConfig
from repro.errors import ProtocolError
from repro.peripherals.hardware import hardware_profile
from repro.registration.protocol import RegistrationOutcome, RegistrationSession
from repro.registration.setup import ElectionSetup
from repro.registration.voter import Voter
from repro.tally.pipeline import TallyPipeline, TallyResult
from repro.voting.client import VotingClient


@dataclass
class PhaseTiming:
    """Wall-clock seconds spent in each election phase (the Fig. 5 quantities)."""

    setup_seconds: float = 0.0
    registration_seconds: float = 0.0
    voting_seconds: float = 0.0
    tally_seconds: float = 0.0

    def per_voter(self, num_voters: int) -> Dict[str, float]:
        voters = max(1, num_voters)
        return {
            "registration": self.registration_seconds / voters,
            "voting": self.voting_seconds / voters,
            "tally": self.tally_seconds / voters,
        }


@dataclass
class ElectionReport:
    """The outcome of a complete simulated election."""

    config: ElectionConfig
    result: TallyResult
    timing: PhaseTiming
    intended_counts: Dict[int, int]
    registration_outcomes: List[RegistrationOutcome]
    universally_verified: bool

    @property
    def counts_match_intent(self) -> bool:
        """Did the published tally equal the voters' real intentions?"""
        return self.result.counts == self.intended_counts


class VotegralElection:
    """Drives a full election according to an :class:`ElectionConfig`."""

    def __init__(self, config: Optional[ElectionConfig] = None):
        self.config = config or ElectionConfig()
        # Telemetry attaches first so executor construction (pool spin-up,
        # cluster enrollment) is already observable.
        self.config.make_telemetry()
        self.group = self.config.make_group()
        self.executor = self.config.make_executor()
        self.pipeline_spec = self.config.make_pipeline()
        self.setup: Optional[ElectionSetup] = None
        self.clients: Dict[str, VotingClient] = {}
        self.outcomes: List[RegistrationOutcome] = []
        self.timing = PhaseTiming()
        # Phase outputs, initialized up front so report paths cannot hit
        # AttributeError when phases are driven out of order.
        self._intended: Dict[str, int] = {}
        self._verified: bool = False
        #: The structured outcome of the post-tally audit (set by run_tally).
        self.audit_report: Optional[AuditReport] = None

    def close(self) -> None:
        """Release the runtime executor's worker pool and the board backend.

        Pool-backed executors (``thread``/``process`` specs) hold OS threads
        or processes, and board backends may hold flusher threads or database
        connections; long-lived callers running many elections should close
        each one (or use the election as a context manager).
        """
        self.executor.close()
        if self.setup is not None:
            self.setup.board.close()

    def __enter__(self) -> "VotegralElection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ phases

    def run_setup(self) -> ElectionSetup:
        start = time.perf_counter()
        self.setup = ElectionSetup.run(
            self.group,
            self.config.voter_ids(),
            num_authority_members=self.config.num_authority_members,
            envelopes_per_voter=self.config.envelopes_per_voter,
            board=self.config.make_board(self.group),
        )
        self.timing.setup_seconds = time.perf_counter() - start
        return self.setup

    def run_registration(self, activate: bool = True) -> List[RegistrationOutcome]:
        if self.setup is None:
            self.run_setup()
        start = time.perf_counter()
        session = RegistrationSession(
            setup=self.setup, profile=hardware_profile(self.config.hardware_profile)
        )
        for voter_id in self.config.voter_ids():
            voter = Voter(voter_id, num_fake_credentials=self.config.fake_credentials_per_voter)
            outcome = session.register(voter, activate=activate)
            self.outcomes.append(outcome)
            client = VotingClient(
                group=self.group,
                board=self.setup.board,
                authority_public_key=self.setup.authority_public_key,
            )
            for report in outcome.activation_reports:
                if report.success and report.credential is not None:
                    client.add_credential(report.credential)
            self.clients[voter_id] = client
        self.timing.registration_seconds = time.perf_counter() - start
        return self.outcomes

    def run_voting(
        self,
        choices: Optional[Dict[str, int]] = None,
        fake_vote_probability: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> Dict[str, int]:
        """Cast one real ballot per voter (and, with some probability, a fake one).

        ``rng`` injects the randomness source for generated choices and the
        fake-vote coin flips — pass a seeded :class:`random.Random` for
        reproducible benchmark runs and cross-backend equivalence tests.  The
        default draws from :mod:`secrets`, the adversarial-model-appropriate
        source.
        """
        if not self.clients:
            self.run_registration()
        randbelow = rng.randrange if rng is not None else secrets.randbelow
        if choices is None:
            choices = {
                voter_id: randbelow(self.config.num_options)
                for voter_id in self.config.voter_ids()
            }
        start = time.perf_counter()
        for voter_id, client in self.clients.items():
            choice = choices[voter_id]
            client.cast_real(choice, self.config.num_options, election_id=self.config.election_id)
            if client.fake_credentials() and randbelow(1000) < fake_vote_probability * 1000:
                decoy = randbelow(self.config.num_options)
                client.cast_fake(decoy, self.config.num_options, election_id=self.config.election_id)
        self.timing.voting_seconds = time.perf_counter() - start
        self._intended = choices
        return choices

    def run_tally(self, verify: bool = True) -> TallyResult:
        if self.setup is None or self.setup.board.num_ballots == 0:
            raise ProtocolError("voting must happen before tallying")
        start = time.perf_counter()
        pipeline = TallyPipeline(
            group=self.group,
            authority=self.setup.authority,
            num_mixers=self.config.num_mixers,
            proof_rounds=self.config.proof_rounds,
            executor=self.executor,
            pipeline=self.pipeline_spec,
            collect_evidence=self.config.audit_evidence,
        )
        result = pipeline.run(self.setup.board, self.config.num_options, self.config.election_id)
        self.timing.tally_seconds = time.perf_counter() - start
        if verify:
            # The external-auditor path: chains, registration records and the
            # full tally re-verification, under the configured strategy.
            self.audit_report = audit_election(
                self.setup.board,
                self.config,
                authority=self.setup.authority,
                result=result,
                kiosk_public_keys=self.setup.registrar.kiosk_public_keys,
                executor=self.executor,
            )
            self._verified = self.audit_report.ok
        else:
            self._verified = False
        return result

    # ------------------------------------------------------------------ end-to-end

    def run(
        self,
        choices: Optional[Dict[str, int]] = None,
        verify: bool = True,
        rng: Optional[random.Random] = None,
    ) -> ElectionReport:
        """Run every phase and return the consolidated report."""
        self.run_setup()
        self.run_registration()
        cast = self.run_voting(choices, rng=rng)
        result = self.run_tally(verify=verify)
        intended: Dict[int, int] = {option: 0 for option in range(self.config.num_options)}
        for choice in cast.values():
            intended[choice] += 1
        return ElectionReport(
            config=self.config,
            result=result,
            timing=self.timing,
            intended_counts=intended,
            registration_outcomes=self.outcomes,
            universally_verified=self._verified if verify else False,
        )
