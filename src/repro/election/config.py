"""Election configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import telemetry
from repro.audit.api import Verifier, verifier_from_spec
from repro.crypto import bigint
from repro.crypto.group import Group
from repro.crypto.modp_group import testing_group
from repro.ledger.api import LedgerBackend, board_from_spec
from repro.ledger.bulletin_board import BulletinBoard
from repro.runtime.executor import Executor, executor_from_spec
from repro.runtime.pipeline import PipelineSpec, pipeline_from_spec


@dataclass
class ElectionConfig:
    """Parameters of a simulated Votegral election.

    The defaults favour fast simulation (toy group, few proof rounds); the
    benchmarks override ``group`` with Ed25519 or the 2048-bit group and raise
    ``proof_rounds`` when measuring realistic costs.

    ``executor_spec`` selects the :mod:`repro.runtime` backend the tally's
    parallel stages run on — ``"serial"`` (default), ``"thread[:N]"`` or
    ``"process[:N]"`` with ``N`` workers (defaulting to the CPUs available);
    the multi-node forms ``"cluster:N"`` (auto-spawn ``N`` loopback worker
    subprocesses — tests, CI, benchmarks) and
    ``"remote:host:port[,host:port…]"`` (listen for
    ``python -m repro.cluster.worker`` daemons, authenticated by the
    ``REPRO_CLUSTER_SECRET`` signed hello) dispatch the same shards to
    :mod:`repro.cluster` workers on other processes or machines.  Every
    backend produces bit-identical results; only the wall clock moves.

    ``board_spec`` selects the :mod:`repro.ledger` backend the bulletin board
    stores its three sub-ledgers on — ``"memory"`` (default, thread-safe
    in-process), ``"sqlite[:path]"`` (persistent) or ``"batched[:N[:inner]]"``
    (write-behind ingestion batching; see
    :func:`repro.ledger.api.board_from_spec`).  Every backend accepts the
    same append commands and produces bit-identical hash chains; only
    ingestion latency and durability move.

    ``pipeline_spec`` selects the tally's dataflow schedule — ``"serial"``
    (default: each phase runs to completion) or
    ``"stream[:shard_size[:queue_depth]]"`` (ballot shards flow through the
    signature check, all mixers, tagging, the join and decryption
    concurrently; see :func:`repro.runtime.pipeline.pipeline_from_spec`).
    Both schedules publish bit-identical results; only the wall clock moves.

    ``audit_spec`` selects the :mod:`repro.audit` verification strategy —
    ``"batched[:chunk]"`` (default, matching the historical ``batch=True``
    verification path: same-kind checks folded into RLC batch equations,
    bisected on failure to exact per-check verdicts), ``"eager"`` (reference
    one-by-one checking), ``"stream[:shard[:depth]]"`` (check shards with
    first-failure cancellation) or ``"dist[:shard]"`` (contiguous check
    shards shipped one task each over the configured executor — with a
    cluster ``executor_spec`` the shards verify on remote workers and merge
    into one report).  Every strategy produces bit-identical
    :class:`~repro.audit.api.AuditReport` outcomes; only the wall clock (and
    how soon a corrupted transcript stops the audit) moves.

    ``audit_evidence`` makes the tally publish tagging-chain and
    decryption-share transcripts (:class:`repro.audit.evidence.TallyEvidence`)
    on its result, so external auditors can re-check filtering and decryption
    — a few extra exponentiations per ciphertext per member, hence opt-in.

    ``telemetry_spec`` selects the :mod:`repro.telemetry` observability sink
    — ``"off"`` (default: every span and counter is a no-op), ``"mem"``
    (buffer events in process memory; read them back through
    :func:`repro.telemetry.snapshot`) or ``"jsonl:<path>"`` (append one JSON
    event per line, summarizable with ``python -m repro.telemetry summarize``).
    Cluster executors propagate collection to their workers automatically
    (worker spans ride back on RESULT frames), and process pools re-attach
    through the ``REPRO_TELEMETRY`` environment variable.  Telemetry never
    changes results; it only records where the wall clock went.

    ``gateway_spec`` optionally exposes the election over HTTP through
    :mod:`repro.gateway` — ``"off"`` (default: no network surface),
    ``"serve"`` (loopback, ephemeral port), ``"serve:8080"`` or
    ``"serve:0.0.0.0:8080"``.  :meth:`make_gateway` builds (but does not
    start) a :class:`repro.gateway.routes.GatewayServer` whose tenants reuse
    this config's board, executor and audit specs; ``python -m repro.gateway``
    is the standalone CLI over the same machinery.

    ``bigint_spec`` pins the :mod:`repro.crypto.bigint` arithmetic backend
    the mod-p groups must be running on — ``"auto"`` (default: whatever the
    process resolved, gmpy2 when importable else pure Python), ``"python"``
    or ``"gmpy2"``.  Unlike the other specs this one does not *construct*
    anything: backends are process-wide (selected once via the
    ``REPRO_BIGINT`` environment variable before the first group exists), so
    :meth:`make_group` merely validates that the active backend matches and
    raises :class:`~repro.crypto.bigint.BigIntError` on a mismatch instead
    of silently running on the wrong arithmetic.  Every backend produces
    bit-identical transcripts; only the wall clock moves.

    The spec grammars above are the whole deployment surface of a simulated
    election; ``docs/architecture.md`` maps the subsystems they select
    between and ``docs/performance.md`` explains which knob moves which
    benchmark.
    """

    num_voters: int = 10
    num_options: int = 2
    num_authority_members: int = 4
    num_mixers: int = 4
    proof_rounds: int = 4
    envelopes_per_voter: int = 3
    fake_credentials_per_voter: int = 1
    election_id: str = "default"
    hardware_profile: str = "H1"
    group_factory: Callable[[], Group] = testing_group
    executor_spec: str = "serial"
    board_spec: str = "memory"
    pipeline_spec: str = "serial"
    audit_spec: str = "batched"
    audit_evidence: bool = False
    telemetry_spec: str = "off"
    bigint_spec: str = "auto"
    gateway_spec: str = "off"

    def voter_ids(self) -> List[str]:
        width = max(4, len(str(self.num_voters)))
        return [f"voter-{index:0{width}d}" for index in range(self.num_voters)]

    def make_group(self) -> Group:
        # Fail loudly *before* building the group if the election demands a
        # specific bigint backend this process did not resolve.
        bigint.require(self.bigint_spec)
        return self.group_factory()

    def make_telemetry(self) -> None:
        """Attach the configured telemetry sink for this process.

        The default ``"off"`` deliberately leaves ambient state alone, so a
        caller who attached a sink directly (or through ``REPRO_TELEMETRY``)
        is not silently disconnected by constructing a default config.
        """
        if self.telemetry_spec and self.telemetry_spec != "off":
            telemetry.configure(self.telemetry_spec)

    def make_executor(self) -> Executor:
        executor = executor_from_spec(self.executor_spec)
        # Remote executors advertise warm work in their WELCOME frames; give
        # them this election's group so enrolling workers precompute the
        # generator table before their first shard (unpicklable factories —
        # e.g. a lambda — are dropped by set_warm, never fatal).
        set_warm = getattr(executor, "set_warm", None)
        if callable(set_warm):
            set_warm(groups=[self.group_factory])
        return executor

    def make_pipeline(self) -> PipelineSpec:
        return pipeline_from_spec(self.pipeline_spec)

    def make_verifier(self, executor: Optional[Executor] = None) -> "Verifier":
        return verifier_from_spec(self.audit_spec, executor=executor)

    def make_board_backend(self, group: Optional[Group] = None) -> LedgerBackend:
        return board_from_spec(self.board_spec, group=group)

    def make_board(self, group: Optional[Group] = None) -> BulletinBoard:
        return BulletinBoard(self.make_board_backend(group=group))

    def make_gateway(self):
        """Build (not start) the HTTP gateway selected by ``gateway_spec``.

        Returns ``None`` for ``"off"``; otherwise a
        :class:`repro.gateway.routes.GatewayServer` whose tenants are
        provisioned with this config's board/executor/audit specs and group.
        Imported lazily — an election that never serves HTTP never pays for
        the gateway package.
        """
        from repro.gateway.routes import server_from_spec
        from repro.gateway.service import service_from_config

        if (self.gateway_spec or "off").strip().lower() == "off":
            return None
        return server_from_spec(self.gateway_spec, service_from_config(self))
