"""Benchmark harness helpers: workload generation and table/series formatting."""

from repro.bench.harness import SeriesPoint, ResultTable, format_seconds, median
from repro.bench.workloads import registration_workload, election_workload

__all__ = [
    "SeriesPoint",
    "ResultTable",
    "format_seconds",
    "median",
    "registration_workload",
    "election_workload",
]
