"""Formatting and aggregation helpers shared by the benchmark scripts.

The benchmarks print the same rows/series the paper's figures report; these
helpers keep that presentation uniform (a plain-text table per figure, with a
"paper" column next to the "measured" column where the paper states a
number).
"""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence


def median(values: Sequence[float]) -> float:
    """The median of a non-empty sequence."""
    return statistics.median(values)


def format_seconds(seconds: float) -> str:
    """Human-readable duration (µs/ms/s/min/h/years as appropriate)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    if seconds < 86400 * 3:
        return f"{seconds / 3600:.1f} h"
    years = seconds / (365.25 * 86400)
    if years >= 1:
        return f"{years:,.0f} years"
    return f"{seconds / 86400:.1f} days"


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a figure series (e.g. tally latency at a voter count)."""

    series: str
    x: float
    y: float
    extrapolated: bool = False


@dataclass
class ResultTable:
    """A simple fixed-width table printer for benchmark output."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console output
        print("\n" + self.render() + "\n")


def emit_bench_json(name: str, payload: Dict[str, object]) -> Optional[Path]:
    """Write machine-readable results to ``$REPRO_BENCH_JSON_DIR/BENCH_<name>.json``.

    CI sets ``REPRO_BENCH_JSON_DIR`` and uploads the resulting files as build
    artifacts, so perf regressions are diagnosable from numbers rather than
    captured stdout.  A no-op (returning ``None``) when the variable is
    unset, so local runs and plain pytest invocations stay side-effect free.
    """
    directory = os.environ.get("REPRO_BENCH_JSON_DIR")
    if not directory:
        return None
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path


def format_speedup(baseline_seconds: float, value_seconds: float) -> str:
    """Render ``baseline/value`` as a speedup factor (e.g. ``3.2x``)."""
    if value_seconds <= 0:
        return "-"
    return f"{baseline_seconds / value_seconds:.2f}x"


def speedup_table(
    title: str,
    baseline_label: str,
    timings: "Dict[str, float]",
) -> ResultTable:
    """A table of wall-clock timings with a speedup column vs. a baseline.

    ``timings`` maps a configuration label (e.g. ``"process:4"``) to wall
    seconds; the entry named ``baseline_label`` anchors the speedup column.
    """
    baseline = timings[baseline_label]
    table = ResultTable(title=title, columns=["backend", "wall clock", "speedup"])
    for label, seconds in timings.items():
        table.add_row(label, format_seconds(seconds), format_speedup(baseline, seconds))
    return table


def series_to_table(title: str, points: Iterable[SeriesPoint], x_label: str = "voters") -> ResultTable:
    """Pivot a list of series points into a table with one column per series."""
    by_series: Dict[str, Dict[float, SeriesPoint]] = {}
    xs: List[float] = []
    for point in points:
        by_series.setdefault(point.series, {})[point.x] = point
        if point.x not in xs:
            xs.append(point.x)
    xs.sort()
    table = ResultTable(title=title, columns=[x_label] + list(by_series))
    for x in xs:
        row = [f"{int(x):,}"]
        for series in by_series:
            point = by_series[series].get(x)
            if point is None:
                row.append("-")
            else:
                suffix = " *" if point.extrapolated else ""
                row.append(format_seconds(point.y) + suffix)
        table.add_row(*row)
    return table
