"""Workload generators for the benchmarks."""

from __future__ import annotations

import secrets
from typing import Callable, Optional, Tuple

from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamal
from repro.crypto.group import Group
from repro.crypto.hashing import sha256
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign
from repro.election.config import ElectionConfig
from repro.ledger.api import board_from_spec
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import RegistrationRecord
from repro.registration.setup import ElectionSetup
from repro.runtime.precompute import warm_fixed_base
from repro.voting.ballot import make_ballot


def registration_workload(
    group: Group,
    num_voters: int,
    envelopes_per_voter: int = 3,
    num_authority_members: int = 4,
) -> ElectionSetup:
    """A ready-to-register election setup with ``num_voters`` eligible voters."""
    voter_ids = [f"voter-{index:06d}" for index in range(num_voters)]
    return ElectionSetup.run(
        group,
        voter_ids,
        num_authority_members=num_authority_members,
        envelopes_per_voter=envelopes_per_voter,
    )


def tally_workload(
    group: Group,
    num_voters: int,
    num_options: int = 2,
    num_authority_members: int = 4,
    board_spec: str = "memory",
) -> Tuple[DistributedKeyGeneration, BulletinBoard]:
    """A voted bulletin board ready for :class:`repro.tally.pipeline.TallyPipeline`.

    Synthesizes registrations and ballots directly (valid credentials, public
    credential tags, signed well-formed ballots) without the in-person TRIP
    ceremony, so tally-phase benchmarks can run over groups the kiosk
    peripherals cannot physically carry — e.g. the 2048-bit large-modulus
    setting, whose credential keys exceed the QR capacity the hardware model
    faithfully enforces.  ``board_spec`` selects the ledger backend the
    synthetic election is ingested into (see
    :func:`repro.ledger.api.board_from_spec`).
    """
    authority = DistributedKeyGeneration.run(group, num_authority_members)
    warm_fixed_base(group.generator)
    warm_fixed_base(authority.public_key)
    board = BulletinBoard(board_from_spec(board_spec, group=group))
    voter_ids = [f"voter-{index:06d}" for index in range(num_voters)]
    board.publish_electoral_roll(voter_ids)
    elgamal = ElGamal(group)
    kiosk = schnorr_keygen(group)
    official = schnorr_keygen(group)
    for voter_id in voter_ids:
        credential = schnorr_keygen(group)
        tag = elgamal.encrypt(authority.public_key, credential.public)
        board.post_registration(
            RegistrationRecord(
                voter_id=voter_id,
                public_credential_c1=tag.c1,
                public_credential_c2=tag.c2,
                kiosk_public_key=kiosk.public,
                kiosk_signature=schnorr_sign(kiosk, sha256(b"bench-checkout", voter_id.encode())),
                official_public_key=official.public,
                official_signature=schnorr_sign(official, sha256(b"bench-approval", voter_id.encode())),
            )
        )
        ballot = make_ballot(
            group,
            authority.public_key,
            credential,
            choice=secrets.randbelow(num_options),
            num_options=num_options,
        )
        board.post_ballot(ballot.to_record())
    return authority, board


def election_workload(
    num_voters: int,
    num_options: int = 2,
    group_factory: Optional[Callable[[], Group]] = None,
    proof_rounds: int = 2,
    num_mixers: int = 4,
) -> ElectionConfig:
    """An election configuration sized for benchmarking."""
    config = ElectionConfig(
        num_voters=num_voters,
        num_options=num_options,
        proof_rounds=proof_rounds,
        num_mixers=num_mixers,
    )
    if group_factory is not None:
        config.group_factory = group_factory
    return config
