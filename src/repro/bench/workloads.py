"""Workload generators for the benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.crypto.group import Group
from repro.crypto.modp_group import testing_group
from repro.election.config import ElectionConfig
from repro.registration.setup import ElectionSetup


def registration_workload(
    group: Group,
    num_voters: int,
    envelopes_per_voter: int = 3,
    num_authority_members: int = 4,
) -> ElectionSetup:
    """A ready-to-register election setup with ``num_voters`` eligible voters."""
    voter_ids = [f"voter-{index:06d}" for index in range(num_voters)]
    return ElectionSetup.run(
        group,
        voter_ids,
        num_authority_members=num_authority_members,
        envelopes_per_voter=envelopes_per_voter,
    )


def election_workload(
    num_voters: int,
    num_options: int = 2,
    group_factory: Optional[Callable[[], Group]] = None,
    proof_rounds: int = 2,
    num_mixers: int = 4,
) -> ElectionConfig:
    """An election configuration sized for benchmarking."""
    config = ElectionConfig(
        num_voters=num_voters,
        num_options=num_options,
        proof_rounds=proof_rounds,
        num_mixers=num_mixers,
    )
    if group_factory is not None:
        config.group_factory = group_factory
    return config
