"""Plan builders: turn domain objects into typed checks, plus the front door.

Builders are pure functions from published artifacts (ballots, cascades,
boards, evidence bundles) to lists of :class:`~repro.audit.api.Check`; the
rewired ``verify_*`` entry points build one-object plans and return
``report.ok``, while :func:`tally_audit_plan` / :func:`audit_election`
assemble the whole election into a single plan for any strategy.

Locus naming convention: ``<surface>[<index-or-id>].<predicate>`` — e.g.
``ballot-mix[2].round[5]``, ``registration[voter-0007].kiosk-signature``,
``tag[ballot][3].share[2]`` — so a failed audit names the offending record
and predicate without any log archaeology.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import ElGamal, ElGamalCiphertext
from repro.crypto.group import Group, GroupElement
from repro.audit.api import AuditPlan, AuditReport, Check, Verifier, verifier_from_spec
from repro.audit.evidence import DecryptionTranscript, TagChainEvidence, TallyEvidence
from repro.ledger.api import BoardView, as_board_view, chain_logs
from repro.ledger.backends.batched import BatchedBoard
from repro.ledger.bulletin_board import BulletinBoard
from repro.ledger.records import RegistrationRecord
from repro.registration.official import check_out_ticket_message, official_approval_message
from repro.runtime.executor import Executor

# ---------------------------------------------------------------------------
# Module-level predicate helpers (picklable, deterministic)
# ---------------------------------------------------------------------------


def _values_equal(left, right) -> bool:
    return left == right


def _int_le(left: int, right: int) -> bool:
    return left <= right


def _contains(collection, value) -> bool:
    return value in collection


def _product_binds(factors: Sequence[GroupElement], expected: GroupElement) -> bool:
    """Do the member public keys multiply to the collective authority key?"""
    if not factors:
        return False
    accumulator = factors[0].group.identity
    for factor in factors:
        accumulator = accumulator * factor
    return accumulator == expected


def _transcript_value_is(transcript: DecryptionTranscript, expected: GroupElement) -> bool:
    return transcript.plaintext() == expected


def _tag_bytes_match(tag: GroupElement, expected: bytes) -> bool:
    return tag.to_bytes() == expected


def _join_consistent(registration_tag_bytes, tagged_votes, filter_result) -> bool:
    """Re-run the linear hash join over *verified* tags; compare to the claim.

    ``registration_tag_bytes``/``tagged_votes`` come from evidence whose
    tagging chains and decryptions the plan verifies independently, so this
    predicate binds the published counted/discarded/duplicate outcome to the
    verified cascade outputs end to end.
    """
    from repro.tally.filter import TagJoiner

    joiner = TagJoiner(list(registration_tag_bytes))
    joiner.feed(list(tagged_votes))
    rejoined = joiner.result()
    return (
        rejoined.counted == list(filter_result.counted)
        and rejoined.discarded == filter_result.discarded
        and rejoined.duplicate_tags == filter_result.duplicate_tags
    )


def _vote_decodes(
    group: Group, transcript: DecryptionTranscript, num_options: int, expected_choice: int
) -> bool:
    try:
        choice = group.decode_int(transcript.plaintext(), max_value=num_options - 1)
    except ValueError:
        return False
    return choice == expected_choice


# ---------------------------------------------------------------------------
# Per-artifact builders
# ---------------------------------------------------------------------------


def ballot_checks(
    group: Group,
    authority_public_key: GroupElement,
    ballot,
    num_options: int,
    label: str = "ballot",
) -> List[Check]:
    """The four proof obligations of one cast ballot."""
    return [
        Check(
            "schnorr",
            f"{label}.signature",
            (ballot.credential_public_key, ballot.signed_message(), ballot.signature),
        ),
        Check(
            "predicate",
            f"{label}.key-binding",
            (_values_equal, ballot.key_proof.value, ballot.credential_public_key),
        ),
        Check("dlog", f"{label}.credential-key-proof", (ballot.key_proof, b"ballot-credential-key")),
        Check(
            "wellformedness",
            f"{label}.wellformedness",
            (group, authority_public_key, ballot.ciphertext, ballot.wellformedness, num_options),
        ),
    ]


def registration_record_checks(
    record: RegistrationRecord,
    kiosk_public_keys: Optional[Sequence[GroupElement]] = None,
    label: Optional[str] = None,
) -> List[Check]:
    """Kiosk authorization (when the key list is known) plus both signatures."""
    label = label if label is not None else f"registration[{record.voter_id}]"
    checks: List[Check] = []
    if kiosk_public_keys is not None:
        checks.append(
            Check(
                "predicate",
                f"{label}.kiosk-authorized",
                (_contains, tuple(kiosk_public_keys), record.kiosk_public_key),
            )
        )
    checks.append(
        Check(
            "schnorr",
            f"{label}.kiosk-signature",
            (record.kiosk_public_key, check_out_ticket_message(record), record.kiosk_signature),
        )
    )
    checks.append(
        Check(
            "schnorr",
            f"{label}.official-signature",
            (record.official_public_key, official_approval_message(record), record.official_signature),
        )
    )
    return checks


def rotation_checks(record, label: Optional[str] = None) -> List[Check]:
    """The single signature obligation of a credential rotation record."""
    if label is None:
        label = f"rotation[{record.old_public_key.to_bytes().hex()[:12]}]"
    return [
        Check("schnorr", f"{label}.signature", (record.old_public_key, record.message(), record.signature))
    ]


def cascade_checks(
    elgamal: ElGamal,
    public_key: GroupElement,
    inputs: Sequence,
    cascade,
    label: str = "cascade",
) -> List[Check]:
    """Every proof obligation of a mix cascade: per-stage coins + per-round openings.

    Under the batched strategy the ``shuffle-round`` checks of *all* stages
    fold their re-encryption openings into one RLC product per public key —
    the largest single saving in tally verification.
    """
    from repro.tally.mixnet import round_mapping_sides

    checks: List[Check] = []
    current = list(inputs)
    for stage_index, stage in enumerate(cascade.stages):
        checks.append(Check("shuffle-coins", f"{label}[{stage_index}].coins", (tuple(current), stage)))
        for round_index, round_ in enumerate(stage.rounds):
            sources, targets = round_mapping_sides(current, stage.outputs, round_)
            checks.append(
                Check(
                    "shuffle-round",
                    f"{label}[{stage_index}].round[{round_index}]",
                    (elgamal, public_key, tuple(sources), tuple(targets), round_.opening),
                )
            )
        current = stage.outputs
    return checks


def chain_checks(board, label: str = "ledger") -> List[Check]:
    """One chain-walk check per sub-ledger, plus the ingest-batch chain if any.

    Evidence is a snapshot of the log entries (not the live log), so chain
    checks survive pickling into process workers and keep auditing what was
    read even if the board keeps ingesting.
    """
    view = as_board_view(board)
    checks = [
        Check("ledger-chain", f"{label}.{name}-chain", (name, tuple(log.entries())))
        for name, log in chain_logs(view)
    ]
    backend = board
    if isinstance(backend, BoardView):
        backend = backend._backend  # noqa: SLF001 - package-internal unwrap
    elif isinstance(backend, BulletinBoard):
        backend = backend.backend
    if isinstance(backend, BatchedBoard):
        backend.flush()
        checks.append(Check("batch-chain", f"{label}.ingest-batches", (tuple(backend.batches),)))
    return checks


def decryption_checks(
    transcript: DecryptionTranscript,
    member_public_keys: Sequence[GroupElement],
    label: str,
) -> List[Check]:
    """One quorum-binding predicate plus one share proof per authority member."""
    checks = [
        Check(
            "predicate",
            f"{label}.quorum",
            (_values_equal, tuple(transcript.public_shares), tuple(member_public_keys)),
        )
    ]
    for member, (public_share, share) in enumerate(
        zip(transcript.public_shares, transcript.shares), start=1
    ):
        checks.append(
            Check(
                "decryption-share",
                f"{label}.share[{member}]",
                (public_share, transcript.ciphertext, share),
            )
        )
    return checks


def _tag_evidence_checks(
    evidence: TagChainEvidence,
    commitments: Sequence[GroupElement],
    member_public_keys: Sequence[GroupElement],
    expected_source: ElGamalCiphertext,
    expected_tag_bytes: bytes,
    label: str,
) -> List[Check]:
    checks = [
        Check("predicate", f"{label}.source", (_values_equal, evidence.source, expected_source)),
        Check(
            "ciphertext-tag-chain",
            f"{label}.blind-steps",
            (evidence.steps, evidence.source, evidence.blinded, tuple(commitments)),
        ),
        Check(
            "predicate",
            f"{label}.decryption-input",
            (_values_equal, evidence.decryption.ciphertext, evidence.blinded),
        ),
    ]
    checks.extend(decryption_checks(evidence.decryption, member_public_keys, label))
    checks.append(
        Check("predicate", f"{label}.value", (_transcript_value_is, evidence.decryption, evidence.tag))
    )
    checks.append(
        Check("predicate", f"{label}.published", (_tag_bytes_match, evidence.tag, expected_tag_bytes))
    )
    return checks


def evidence_checks(
    group: Group,
    authority_public_key: GroupElement,
    result,
    evidence: TallyEvidence,
    mixed_registrations: Sequence[ElGamalCiphertext],
) -> List[Check]:
    """Checks over the published tagging/decryption evidence bundle.

    Binds the bundle to the election (member keys multiply to the authority
    key), re-checks every tagging chain and decryption share, and ties each
    transcript back to the published filter tags and vote list.
    """
    # Count predicates anchor every evidence list to an *independently
    # verified* quantity — the cascade outputs re-derived from the ledger and
    # the published vote list — never only to other attacker-published lists;
    # the per-entry loops below then zip safely (a fabricated surplus entry
    # cannot pass unchecked: the count check covering it has already failed).
    mixed_pairs = result.ballot_cascade.outputs
    checks: List[Check] = [
        Check(
            "predicate",
            "evidence.member-keys-bind",
            (_product_binds, tuple(evidence.member_public_keys), authority_public_key),
        ),
        Check(
            "predicate",
            "evidence.registration-tag-count",
            (
                _values_equal,
                (len(evidence.registration_tags), len(result.filter_result.registration_tags)),
                (len(mixed_registrations), len(mixed_registrations)),
            ),
        ),
        Check(
            "predicate",
            "evidence.ballot-tag-count",
            (
                _values_equal,
                (len(evidence.ballot_tags), len(result.filter_result.ballot_tags)),
                (len(mixed_pairs), len(mixed_pairs)),
            ),
        ),
        Check(
            "predicate",
            "evidence.decryption-count",
            (
                _values_equal,
                (len(evidence.decryptions), len(result.filter_result.counted), result.num_counted),
                (len(result.votes), len(result.votes), len(result.votes)),
            ),
        ),
    ]
    for index, tag_evidence in enumerate(evidence.registration_tags):
        if index >= len(mixed_registrations) or index >= len(result.filter_result.registration_tags):
            break
        checks.extend(
            _tag_evidence_checks(
                tag_evidence,
                evidence.tagging_commitments,
                evidence.member_public_keys,
                mixed_registrations[index],
                result.filter_result.registration_tags[index],
                f"tag[registration][{index}]",
            )
        )
    for index, tag_evidence in enumerate(evidence.ballot_tags):
        if index >= len(mixed_pairs) or index >= len(result.filter_result.ballot_tags):
            break
        checks.extend(
            _tag_evidence_checks(
                tag_evidence,
                evidence.tagging_commitments,
                evidence.member_public_keys,
                mixed_pairs[index][1],
                result.filter_result.ballot_tags[index],
                f"tag[ballot][{index}]",
            )
        )
    if len(evidence.registration_tags) == len(mixed_registrations) and len(
        evidence.ballot_tags
    ) == len(mixed_pairs):
        checks.append(
            Check(
                "predicate",
                "evidence.join-consistent",
                (
                    _join_consistent,
                    tuple(tag.tag.to_bytes() for tag in evidence.registration_tags),
                    tuple(
                        (mixed_pairs[index][0], evidence.ballot_tags[index].tag.to_bytes())
                        for index in range(len(mixed_pairs))
                    ),
                    result.filter_result,
                ),
            )
        )
    for index, transcript in enumerate(evidence.decryptions):
        if index >= len(result.filter_result.counted) or index >= len(result.votes):
            break
        label = f"decryption[{index}]"
        checks.append(
            Check(
                "predicate",
                f"{label}.ciphertext",
                (_values_equal, transcript.ciphertext, result.filter_result.counted[index]),
            )
        )
        checks.extend(decryption_checks(transcript, evidence.member_public_keys, label))
        checks.append(
            Check(
                "predicate",
                f"{label}.vote",
                (_vote_decodes, group, transcript, result.num_options, result.votes[index].choice),
            )
        )
    return checks


# ---------------------------------------------------------------------------
# Whole-tally plan + front doors
# ---------------------------------------------------------------------------


def tally_audit_plan(
    group: Group,
    authority: DistributedKeyGeneration,
    board,
    result,
    election_id: str = "default",
    rotations=None,
    executor: Optional[Executor] = None,
    include_chains: bool = True,
) -> AuditPlan:
    """Everything :func:`repro.tally.pipeline.verify_tally` used to check, as a plan.

    Re-derives the mix inputs from the ledger through the cursor API exactly
    as the tally did (signature-checked, deduplicated, rotation-resolved),
    then adds chain checks, both cascades' proof obligations, the published
    evidence bundle (when the result carries one) and the count invariants.
    """
    from repro.tally.pipeline import TallyPipeline

    elgamal = ElGamal(group)
    view = as_board_view(board)
    plan = AuditPlan()
    if include_chains:
        plan.extend(chain_checks(board))

    registrations = view.active_registrations()
    registration_inputs = [
        (ElGamalCiphertext(record.public_credential_c1, record.public_credential_c2),)
        for record in registrations
    ]
    plan.extend(
        cascade_checks(
            elgamal, authority.public_key, registration_inputs, result.registration_cascade,
            label="registration-mix",
        )
    )
    mixed_registrations = [
        item[0] for item in (result.registration_cascade.outputs or registration_inputs)
    ]

    if result.ballot_cascade.stages:
        valid_records = TallyPipeline(group, authority)._valid_ballots(
            view, election_id, executor=executor
        )
        if rotations is not None:
            valid_records = [
                record for record in valid_records
                if not rotations.is_retired(record.credential_public_key)
            ]

        def _credential_key(record):
            if rotations is None:
                return record.credential_public_key
            return rotations.resolve(record.credential_public_key)

        ballot_inputs = [
            (
                ElGamalCiphertext(record.ciphertext_c1, record.ciphertext_c2),
                elgamal.encrypt(authority.public_key, _credential_key(record), randomness=0),
            )
            for record in valid_records
        ]
        plan.extend(
            cascade_checks(
                elgamal, authority.public_key, ballot_inputs, result.ballot_cascade,
                label="ballot-mix",
            )
        )

    if getattr(result, "evidence", None) is not None:
        plan.extend(
            evidence_checks(group, authority.public_key, result, result.evidence, mixed_registrations)
        )

    plan.add(
        "predicate", "tally.counted-within-roll", _int_le, result.num_counted, len(registrations)
    )
    plan.add(
        "predicate", "tally.counts-sum", _values_equal, sum(result.counts.values()), result.num_counted
    )
    plan.add(
        "predicate",
        "tally.outputs-partitioned",
        _values_equal,
        result.num_counted + result.num_discarded,
        len(result.ballot_cascade.outputs),
    )
    return plan


def _resolve_verifier(
    verifier: Union[Verifier, str, None], executor: Optional[Executor] = None
) -> Verifier:
    if isinstance(verifier, Verifier):
        return verifier
    return verifier_from_spec(verifier, executor=executor)


def audit_tally(
    group: Group,
    authority: DistributedKeyGeneration,
    board,
    result,
    election_id: str = "default",
    rotations=None,
    verifier: Union[Verifier, str, None] = None,
    executor: Optional[Executor] = None,
) -> AuditReport:
    """Re-check a published tally against the ledger; returns the full report.

    ``verifier`` is a strategy spec (``"eager"``, ``"batched[:chunk]"``,
    ``"stream[:shard[:depth]]"``) or a ready :class:`Verifier`; the three
    strategies produce bit-identical report outcomes on valid elections.
    """
    plan = tally_audit_plan(
        group, authority, board, result,
        election_id=election_id, rotations=rotations, executor=executor,
    )
    return _resolve_verifier(verifier, executor).run(plan)


def audit_election(
    board,
    config=None,
    authority: Optional[DistributedKeyGeneration] = None,
    result=None,
    rotations=None,
    kiosk_public_keys: Optional[Sequence[GroupElement]] = None,
    verifier: Union[Verifier, str, None] = None,
    executor: Optional[Executor] = None,
) -> AuditReport:
    """The external auditor's front door: audit everything a board supports.

    Always checks the ledger hash chains and every active registration
    record (kiosk authorization included when ``kiosk_public_keys`` is
    given); with ``rotations``, every rotation record; with ``authority``
    and a published ``result``, the complete tally re-verification of
    :func:`tally_audit_plan` — all through the read-only cursor API, in one
    plan, under the strategy from ``verifier`` or ``config.audit_spec``.
    """
    view = as_board_view(board)
    plan = AuditPlan()
    plan.extend(chain_checks(board))
    for record in view.active_registrations():
        plan.extend(registration_record_checks(record, kiosk_public_keys))
    if rotations is not None:
        for record in rotations.records():
            plan.extend(rotation_checks(record))
    if result is not None:
        if authority is None:
            raise ValueError("auditing a tally result requires the authority's public key material")
        election_id = getattr(config, "election_id", "default") if config is not None else "default"
        plan.extend(
            tally_audit_plan(
                group=authority.group,
                authority=authority,
                board=view,
                result=result,
                election_id=election_id,
                rotations=rotations,
                executor=executor,
                include_chains=False,
            )
        )
    if verifier is None and config is not None:
        verifier = getattr(config, "audit_spec", None)
    return _resolve_verifier(verifier, executor).run(plan)
