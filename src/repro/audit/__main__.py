"""``python -m repro.audit`` — replay and audit a full election end to end.

Runs the standard :class:`~repro.election.pipeline.VotegralElection` flow
(setup → registration → voting → tally, with evidence collection on), then
audits the resulting board *through the ledger cursor API alone* under each
requested strategy, printing every report and cross-checking that the
strategies' outcomes are bit-identical.  Exit status 0 iff every strategy
accepted (and agreed).

Examples::

    python -m repro.audit                           # 5 voters, all strategies
    python -m repro.audit --voters 20 --mixers 3
    python -m repro.audit --strategies batched:128,stream:32
    python -m repro.audit --board-spec sqlite:/tmp/board.db --pipeline stream
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.audit.checks import audit_election
from repro.election.config import ElectionConfig
from repro.election.pipeline import VotegralElection


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit",
        description="Run a simulated election and audit it under every strategy.",
    )
    parser.add_argument("--voters", type=int, default=5, help="number of voters (default 5)")
    parser.add_argument("--options", type=int, default=2, help="number of candidates (default 2)")
    parser.add_argument("--mixers", type=int, default=2, help="mix cascade length (default 2)")
    parser.add_argument("--proof-rounds", type=int, default=2, help="shadow-mix rounds (default 2)")
    parser.add_argument(
        "--strategies",
        default="eager,batched,stream",
        help="comma-separated audit strategies to run (default: eager,batched,stream)",
    )
    parser.add_argument("--executor", default="serial", help="runtime executor spec (default serial)")
    parser.add_argument("--board-spec", default="memory", help="ledger backend spec (default memory)")
    parser.add_argument("--pipeline", default="serial", help="tally pipeline spec (default serial)")
    parser.add_argument("--seed", type=int, default=None, help="seed the voting RNG for reproducibility")
    parser.add_argument(
        "--no-evidence",
        action="store_true",
        help="skip tagging/decryption evidence collection (audits cascades and ledgers only)",
    )
    args = parser.parse_args(argv)

    config = ElectionConfig(
        num_voters=args.voters,
        num_options=args.options,
        num_mixers=args.mixers,
        proof_rounds=args.proof_rounds,
        executor_spec=args.executor,
        board_spec=args.board_spec,
        pipeline_spec=args.pipeline,
        audit_evidence=not args.no_evidence,
    )
    rng = random.Random(args.seed) if args.seed is not None else None

    with VotegralElection(config) as election:
        report = election.run(rng=rng, verify=False)
        print(
            f"election: {config.num_voters} voters, {config.num_options} options, "
            f"counts={report.result.counts}, winner={report.result.winner()}"
        )
        reports = []
        for spec in [s.strip() for s in args.strategies.split(",") if s.strip()]:
            audit = audit_election(
                election.setup.board,
                config,
                authority=election.setup.authority,
                result=report.result,
                kiosk_public_keys=election.setup.registrar.kiosk_public_keys,
                verifier=spec,
            )
            print(audit.summary())
            reports.append((spec, audit))

    ok = all(audit.ok for _, audit in reports)
    if ok:
        # On acceptance every strategy runs the full plan: outcomes must be
        # bit-identical.
        fingerprints = {audit.fingerprint() for _, audit in reports}
        if len(fingerprints) > 1:
            print("FAIL: strategies disagree on audit outcomes", file=sys.stderr)
            return 2
        if reports:
            print(f"strategies agree: fingerprint {next(iter(fingerprints))[:16]}…")
        print("PASS: election verified under every strategy")
        return 0
    # On rejection the streaming strategy truncates after the failing shard
    # (by design), so agreement means: everyone rejects, at the same locus.
    if any(audit.ok for _, audit in reports) or len(
        {audit.first_failure for _, audit in reports}
    ) > 1:
        print("FAIL: strategies disagree on the audit verdict", file=sys.stderr)
        return 2
    failure = reports[0][1].first_failure
    print(f"strategies agree: rejected at {failure.name} ({failure.kind})")
    print("FAIL: the election did not verify", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
