"""The unified, strategy-pluggable verification API (version 1).

Every proof obligation in the system — a Schnorr signature, a Chaum–Pedersen
transcript, a shuffle-round opening, a tagging chain, a ledger hash chain, a
count invariant — is expressed as a typed :class:`Check`: a *kind* (which
registered predicate judges it), a *name* (the failure locus an auditor
reads), and the *evidence* tuple the predicate consumes.  Checks collect
into an :class:`AuditPlan` and a pluggable :class:`Verifier` executes the
plan with one of three strategies:

* :class:`EagerVerifier` — every check runs its kind's reference predicate,
  one by one, in plan order.  The semantics every other strategy must
  reproduce verdict-for-verdict.
* :class:`BatchedVerifier` — checks are grouped by kind and, for kinds with
  a registered *fold*, whole chunks collapse into a single
  random-linear-combination product check (:mod:`repro.runtime.batch`); a
  rejected chunk bisects to isolate exact per-check verdicts, so the common
  all-valid case pays one batched equation and a corrupted transcript still
  names its locus.
* :class:`StreamingVerifier` — check shards ride a
  :class:`~repro.runtime.pipeline.StreamPipeline` (batched verification per
  shard) and the sink cancels outstanding shards at the first failure, so a
  rejecting auditor pays for the failing shard, not the whole plan.
* :class:`DistributedVerifier` — the plan is cut into contiguous,
  picklable check shards, each shard ships as one task over the executor
  surface (a :class:`~repro.cluster.executor.RemoteExecutor` sends it to a
  worker on another process or machine, where the batched fold runs), and
  the shard results merge back — in plan order — into one report.

Every strategy returns an :class:`AuditReport` — per-check outcomes in plan
order, failure loci, counts, timings — instead of a naked boolean.  Reports
compare (and fingerprint) over their *outcomes only*, so eager, batched and
streaming runs of the same plan over valid evidence produce equal reports,
which the mutation suite in ``tests/audit`` pins down.

Strategies are selected per election via ``ElectionConfig.audit_spec``
(``"eager"``, ``"batched[:chunk]"`` or ``"stream[:shard[:depth]]"``) through
:func:`verifier_from_spec`, mirroring ``executor_spec`` / ``board_spec`` /
``pipeline_spec``.
"""

from __future__ import annotations

import abc
import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.runtime.executor import Executor
from repro.runtime.pipeline import Shard, Stage, StopPipeline, StreamPipeline, iter_shards
from repro.runtime.sharding import parallel_map

#: The audit API version this module defines.  Consumers that need a newer
#: check vocabulary can gate on it instead of failing deep inside a plan.
AUDIT_API_VERSION = 1

#: Default number of same-kind checks folded into one batched equation.
DEFAULT_CHUNK_SIZE = 256

#: Default shard geometry for the streaming strategy.
DEFAULT_STREAM_SHARD = 64
DEFAULT_STREAM_DEPTH = 4

#: Default checks per shard for the distributed strategy — coarser than the
#: streaming shard because every shard is one wire round-trip.
DEFAULT_DIST_SHARD = 128


@dataclass(frozen=True)
class Check:
    """One proof obligation: a claim, its evidence, and where it came from.

    ``kind`` selects the registered predicate (see :mod:`repro.audit.kinds`);
    ``name`` is the human-readable failure locus (e.g.
    ``"ballot-mix[2].round[5]"``); ``evidence`` is the kind-specific payload,
    passed positionally to the predicate.
    """

    kind: str
    name: str
    evidence: Tuple[Any, ...] = ()


class CheckStatus(enum.Enum):
    PASSED = "passed"
    FAILED = "failed"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass(frozen=True)
class CheckResult:
    """The verdict on one check: its identity plus pass/fail."""

    name: str
    kind: str
    status: CheckStatus

    @property
    def ok(self) -> bool:
        return self.status is CheckStatus.PASSED


class AuditPlan:
    """An ordered collection of :class:`Check`s awaiting a verifier."""

    def __init__(self, checks: Optional[Sequence[Check]] = None):
        self.checks: List[Check] = list(checks or [])

    def add(self, kind: str, name: str, *evidence: Any) -> Check:
        check = Check(kind=kind, name=name, evidence=tuple(evidence))
        self.checks.append(check)
        return check

    def extend(self, checks: Sequence[Check]) -> "AuditPlan":
        self.checks.extend(checks)
        return self

    def __len__(self) -> int:
        return len(self.checks)

    def __iter__(self) -> Iterator[Check]:
        return iter(self.checks)


@dataclass
class AuditReport:
    """The structured outcome of executing an :class:`AuditPlan`.

    ``results`` holds one :class:`CheckResult` per executed check, in plan
    order (the streaming strategy may truncate after the shard containing
    the first failure — that is the point of cancellation).  Equality and
    :meth:`fingerprint` cover the *outcomes only*: ``strategy`` and
    ``elapsed_seconds`` are excluded so the three strategies' reports on
    valid evidence compare bit-identical.
    """

    results: List[CheckResult]
    strategy: str = field(default="eager", compare=False)
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def num_checks(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [result for result in self.results if not result.ok]

    @property
    def num_failed(self) -> int:
        return len(self.failures)

    @property
    def first_failure(self) -> Optional[CheckResult]:
        """The failure locus: the first check (in plan order) that failed."""
        for result in self.results:
            if not result.ok:
                return result
        return None

    def counts_by_kind(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind ``(passed, failed)`` counts."""
        counts: Dict[str, Tuple[int, int]] = {}
        for result in self.results:
            passed, failed = counts.get(result.kind, (0, 0))
            if result.ok:
                counts[result.kind] = (passed + 1, failed)
            else:
                counts[result.kind] = (passed, failed + 1)
        return counts

    def fingerprint(self) -> str:
        """A canonical digest of the outcomes (strategy- and time-independent)."""
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(result.kind.encode())
            digest.update(b"\x00")
            digest.update(result.name.encode())
            digest.update(b"\x00")
            digest.update(result.status.value.encode())
            digest.update(b"\x01")
        return digest.hexdigest()

    def summary(self) -> str:
        """A human-readable multi-line summary (used by ``python -m repro.audit``)."""
        lines = [
            f"audit[{self.strategy}]: "
            f"{'PASS' if self.ok else 'FAIL'} — {self.num_checks} checks, "
            f"{self.num_failed} failed, {self.elapsed_seconds * 1000:.1f} ms"
        ]
        for kind, (passed, failed) in sorted(self.counts_by_kind().items()):
            marker = "ok " if failed == 0 else "FAIL"
            lines.append(f"  [{marker}] {kind}: {passed} passed, {failed} failed")
        failure = self.first_failure
        if failure is not None:
            lines.append(f"  first failure: {failure.name} ({failure.kind})")
        return "\n".join(lines)


class Verifier(abc.ABC):
    """A strategy for executing an :class:`AuditPlan`."""

    strategy: str = "abstract"

    @abc.abstractmethod
    def _execute(self, checks: List[Check]) -> List[CheckResult]:
        """Produce per-check results (possibly truncated, for streaming)."""

    def run(self, plan: AuditPlan) -> AuditReport:
        # The report's wall-clock comes straight off the telemetry span, so
        # a trace and its AuditReport can never disagree about elapsed time.
        # (The span handle measures even with telemetry off.)
        checks = list(plan)
        with telemetry.span("audit.run", strategy=self.strategy, checks=len(checks)) as span:
            results = self._execute(checks)
        if telemetry.enabled():
            tallies: Dict[Tuple[str, str], int] = {}
            for result in results:
                key = (result.kind, result.status.value)
                tallies[key] = tallies.get(key, 0) + 1
            for (kind, status), count in tallies.items():
                telemetry.counter("audit.checks", count, kind=kind, strategy=self.strategy, status=status)
        return AuditReport(
            results=results,
            strategy=self.strategy,
            elapsed_seconds=span.elapsed_seconds,
        )

    def verify(self, plan: AuditPlan) -> bool:
        """Bool convenience for shim call sites."""
        return self.run(plan).ok


def _result_for(check: Check, verdict: bool) -> CheckResult:
    return CheckResult(
        name=check.name,
        kind=check.kind,
        status=CheckStatus.PASSED if verdict else CheckStatus.FAILED,
    )


class EagerVerifier(Verifier):
    """The reference strategy: every check judged by its kind's predicate.

    ``executor`` optionally fans the per-check evaluation out over a
    :mod:`repro.runtime` backend (order-preserving, so the report is
    identical); the default is the module-wide serial executor.
    """

    strategy = "eager"

    def __init__(self, executor: Optional[Executor] = None):
        self.executor = executor

    def _execute(self, checks: List[Check]) -> List[CheckResult]:
        from repro.audit.kinds import verdict_one

        verdicts = parallel_map(verdict_one, checks, executor=self.executor)
        return [_result_for(check, verdict) for check, verdict in zip(checks, verdicts)]


class BatchedVerifier(Verifier):
    """Group by kind, fold chunks into RLC batch equations, bisect failures."""

    strategy = "batched"

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE, executor: Optional[Executor] = None):
        if chunk_size < 1:
            raise ValueError("audit chunk size must be >= 1")
        self.chunk_size = chunk_size
        self.executor = executor

    def _execute(self, checks: List[Check]) -> List[CheckResult]:
        from repro.audit.kinds import evaluate_batched

        return evaluate_batched(checks, chunk_size=self.chunk_size, executor=self.executor)


class _ShardVerifyStage(Stage):
    """Verify one shard of checks (batched or eager semantics within the shard)."""

    name = "verify-checks"

    def __init__(self, chunk_size: int, batch: bool):
        self.chunk_size = chunk_size
        self.batch = batch

    def process(self, shard: Shard):
        from repro.audit.kinds import evaluate_batched, verdict_one

        if self.batch:
            yield Shard(shard.index, evaluate_batched(shard.items, chunk_size=self.chunk_size))
        else:
            yield Shard(shard.index, [_result_for(check, verdict_one(check)) for check in shard.items])


class StreamingVerifier(Verifier):
    """Checks ride pipeline shards; the sink cancels at the first failure.

    Each shard is verified with the batched fold (so the per-shard cost
    matches :class:`BatchedVerifier` at ``chunk = shard_size``; pass
    ``batch=False`` for the exact reference equations per check), shards
    flow through a bounded-queue :class:`~repro.runtime.pipeline.
    StreamPipeline`, and a failing shard stops the stream: the report
    contains every result up to and including the failing shard, in plan
    order.
    """

    strategy = "stream"

    def __init__(
        self,
        shard_size: int = DEFAULT_STREAM_SHARD,
        queue_depth: int = DEFAULT_STREAM_DEPTH,
        batch: bool = True,
    ):
        if shard_size < 1:
            raise ValueError("audit stream shard size must be >= 1")
        self.shard_size = shard_size
        self.queue_depth = queue_depth
        self.batch = batch

    def _execute(self, checks: List[Check]) -> List[CheckResult]:
        if not checks:
            return []
        results: List[CheckResult] = []

        def _consume(shard: Shard) -> None:
            results.extend(shard.items)
            if not all(result.ok for result in shard.items):
                raise StopPipeline()

        StreamPipeline(
            [_ShardVerifyStage(self.shard_size, self.batch)],
            queue_depth=self.queue_depth,
            name="audit",
        ).run(iter_shards(checks, self.shard_size), consume=_consume)
        return results


def _verify_check_shard(checks: Sequence[Check]) -> List[CheckResult]:
    """Verify one contiguous shard of checks with the batched fold.

    Module-level and picklable: this is the function a
    :class:`DistributedVerifier` ships to remote workers, one shard per
    task.  Deterministic verdicts make at-least-once redelivery (after a
    worker death) bit-identical.
    """
    from repro.audit.kinds import evaluate_batched

    return evaluate_batched(list(checks))


def _verify_check_shard_eager(checks: Sequence[Check]) -> List[CheckResult]:
    """The eager-reference twin of :func:`_verify_check_shard`."""
    from repro.audit.kinds import verdict_one

    return [_result_for(check, verdict_one(check)) for check in checks]


class DistributedVerifier(Verifier):
    """Fan contiguous check shards out over the executor surface and merge.

    Each shard of ``shard_size`` checks becomes exactly one task — under a
    :class:`~repro.cluster.executor.RemoteExecutor` that is one wire frame
    to one remote worker, which runs the batched fold locally and returns
    its :class:`CheckResult`s.  Shard results concatenate in plan order, so
    the merged :class:`AuditReport` fingerprints identically to the eager,
    batched and streaming strategies on the same plan; only worker
    placement (and the wall clock) moves.  ``batch=False`` runs the exact
    reference predicate per check inside each shard instead of the fold.
    """

    strategy = "dist"

    def __init__(
        self,
        shard_size: int = DEFAULT_DIST_SHARD,
        executor: Optional[Executor] = None,
        batch: bool = True,
    ):
        if shard_size < 1:
            raise ValueError("audit dist shard size must be >= 1")
        self.shard_size = shard_size
        self.executor = executor
        self.batch = batch

    def _execute(self, checks: List[Check]) -> List[CheckResult]:
        if not checks:
            return []
        shards = [checks[start:start + self.shard_size] for start in range(0, len(checks), self.shard_size)]
        worker_fn = _verify_check_shard if self.batch else _verify_check_shard_eager
        shard_results = parallel_map(worker_fn, shards, executor=self.executor, chunksize=1)
        return [result for shard in shard_results for result in shard]


def verifier_from_spec(spec: Optional[str], executor: Optional[Executor] = None) -> Verifier:
    """Build a verifier from a config string (mirrors ``executor_from_spec``).

    Accepted forms::

        "eager"                     reference one-by-one checking (the default)
        "batched"                   RLC folding with bisection on failure
        "batched:512"               … folding up to 512 same-kind checks per equation
        "stream"                    batched shards + first-failure cancellation
        "stream:32"                 … 32 checks per shard
        "stream:32:8"               … with an 8-shard queue bound
        "dist"                      contiguous check shards over the executor
        "dist:256"                  … 256 checks per shard (one task each)

    The ``dist`` strategy pairs with a cluster ``executor`` to run check
    shards on remote workers; with an in-process executor it degrades to
    sharded batched verification.
    """
    def _parse_int(text: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise ValueError(f"invalid audit spec {spec!r}") from None

    text = (spec or "eager").strip().lower()
    kind, _, rest = text.partition(":")
    if kind == "eager":
        if rest:
            raise ValueError(f"the eager strategy takes no parameters: {spec!r}")
        return EagerVerifier(executor=executor)
    if kind == "batched":
        chunk = _parse_int(rest) if rest else DEFAULT_CHUNK_SIZE
        return BatchedVerifier(chunk_size=chunk, executor=executor)
    if kind in ("stream", "streaming"):
        shard_text, _, depth_text = rest.partition(":")
        shard = _parse_int(shard_text) if shard_text else DEFAULT_STREAM_SHARD
        depth = _parse_int(depth_text) if depth_text else DEFAULT_STREAM_DEPTH
        return StreamingVerifier(shard_size=shard, queue_depth=depth)
    if kind in ("dist", "distributed"):
        shard = _parse_int(rest) if rest else DEFAULT_DIST_SHARD
        return DistributedVerifier(shard_size=shard, executor=executor)
    raise ValueError(
        f"unknown audit spec {spec!r}; expected 'eager', 'batched[:chunk]', "
        f"'stream[:shard[:depth]]' or 'dist[:shard]'"
    )
