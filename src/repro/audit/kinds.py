"""The check-kind registry: reference predicates and their batch folds.

Each kind registers:

* ``verify_one(*evidence) -> bool`` — the reference predicate, exactly what
  the scattered ``verify_*`` functions used to compute.  The eager strategy
  runs this and nothing else.
* ``fold(evidences) -> bool`` (optional) — a whole-batch accept/reject that
  collapses many same-kind checks into one random-linear-combination
  product (:mod:`repro.runtime.batch`).  Folds are *complete* (every valid
  batch accepts) and *sound up to the RLC bound* (an invalid batch rejects
  except with probability ``2^-|w|``); :func:`chunk_verdicts` bisects a
  rejected batch down to exact per-check verdicts, so batched and eager
  strategies report identical outcomes.

Foldable kinds — Schnorr signatures (ballots, registration records,
rotation records), Chaum–Pedersen transcripts, dlog proofs, shuffle-round
openings, decryption shares, and both tagging-chain families — are what
closes the "batch verification everywhere" roadmap item: every hot
``verify=True`` path in the system now lands in one of these folds.

Evidence tuples contain only picklable values (group elements, dataclass
transcripts, snapshots — never live objects with callbacks), so plans can
fan out across process executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.chaum_pedersen import (
    chaum_pedersen_verify,
    fiat_shamir_challenge,
    fiat_shamir_verify,
)
from repro.crypto.dlog_proof import verify_dlog
from repro.crypto.schnorr import schnorr_verify
from repro.crypto.tagging import (
    ciphertext_tag_chain_transcripts,
    tag_chain_transcripts,
    verify_blinded_tag,
    verify_ciphertext_tag_chain,
)
from repro.ledger.backends.batched import verify_batch_chain
from repro.ledger.log import AppendOnlyLog
from repro.runtime.batch import (
    batch_chaum_pedersen_verify,
    batch_decryption_share_verify,
    batch_dlog_verify,
    batch_reencryption_verify,
    batch_schnorr_verify,
    decryption_share_transcript,
)
from repro.runtime.executor import Executor
from repro.runtime.sharding import parallel_map, parallel_starmap

if TYPE_CHECKING:  # avoid importing the api module at runtime here
    from repro.audit.api import Check, CheckResult  # noqa: F401


@dataclass(frozen=True)
class CheckKind:
    """One registered evidence class: its reference predicate and batch fold."""

    name: str
    verify_one: Callable[..., bool]
    fold: Optional[Callable[[Sequence[Tuple[Any, ...]]], bool]] = None


KINDS: Dict[str, CheckKind] = {}


def register_kind(
    name: str,
    verify_one: Callable[..., bool],
    fold: Optional[Callable[[Sequence[Tuple[Any, ...]]], bool]] = None,
) -> CheckKind:
    """Register (or replace) a check kind; returns the registry entry."""
    kind = CheckKind(name=name, verify_one=verify_one, fold=fold)
    KINDS[name] = kind
    return kind


def get_kind(name: str) -> CheckKind:
    try:
        return KINDS[name]
    except KeyError:
        raise ValueError(f"unknown audit check kind {name!r}") from None


def verdict_one(check: "Check") -> bool:
    """The reference verdict for one check (module-level, picklable)."""
    return bool(get_kind(check.kind).verify_one(*check.evidence))


# ---------------------------------------------------------------------------
# Batched evaluation with bisection
# ---------------------------------------------------------------------------


def _bisect_verdicts(
    kind: CheckKind, evidences: Sequence[Tuple[Any, ...]]
) -> List[bool]:
    """Exact per-evidence verdicts: fold fast path, bisect only on rejection."""
    if not evidences:
        return []
    if len(evidences) == 1:
        return [bool(kind.verify_one(*evidences[0]))]
    assert kind.fold is not None
    if kind.fold(evidences):
        return [True] * len(evidences)
    middle = len(evidences) // 2
    return _bisect_verdicts(kind, evidences[:middle]) + _bisect_verdicts(kind, evidences[middle:])


def chunk_verdicts(kind: CheckKind, evidences: Sequence[Tuple[Any, ...]]) -> List[bool]:
    """Per-evidence verdicts for one same-kind chunk (folded when possible)."""
    if kind.fold is None or len(evidences) <= 1:
        return [bool(kind.verify_one(*evidence)) for evidence in evidences]
    return _bisect_verdicts(kind, evidences)


def _chunk_verdicts_named(kind_name: str, evidences: Sequence[Tuple[Any, ...]]) -> List[bool]:
    """Chunk evaluation by kind *name* — module-level so executors can pickle it."""
    return chunk_verdicts(get_kind(kind_name), evidences)


def evaluate_batched(
    checks: Sequence["Check"],
    chunk_size: int = 256,
    executor: Optional[Executor] = None,
) -> List["CheckResult"]:
    """Batched-strategy evaluation of ``checks``: results in input order.

    Checks are grouped by kind; foldable kinds collapse ``chunk_size``-sized
    runs into single RLC equations (bisecting on rejection), fold-less kinds
    fall back to the reference predicate.  Both paths fan out over
    ``executor`` — fold-less checks individually, foldable kinds one chunk
    per task.  Verdicts are placed back at their original plan positions, so
    the returned results are indistinguishable from an eager run's (that
    invariant is what the equivalence tests pin).
    """
    from repro.audit.api import _result_for

    verdicts: List[Optional[bool]] = [None] * len(checks)
    by_kind: Dict[str, List[int]] = {}
    for index, check in enumerate(checks):
        by_kind.setdefault(check.kind, []).append(index)
    for kind_name, indices in by_kind.items():
        kind = get_kind(kind_name)
        if kind.fold is None:
            outcomes = parallel_map(
                verdict_one, [checks[i] for i in indices], executor=executor
            )
            for i, outcome in zip(indices, outcomes):
                verdicts[i] = bool(outcome)
            continue
        chunks = [indices[start : start + chunk_size] for start in range(0, len(indices), chunk_size)]
        outcome_lists = parallel_starmap(
            _chunk_verdicts_named,
            [(kind_name, [checks[i].evidence for i in chunk]) for chunk in chunks],
            executor=executor,
            chunksize=1,
        )
        for chunk, outcomes in zip(chunks, outcome_lists):
            for i, outcome in zip(chunk, outcomes):
                verdicts[i] = outcome
    return [_result_for(check, bool(verdict)) for check, verdict in zip(checks, verdicts)]


# ---------------------------------------------------------------------------
# Kind implementations
# ---------------------------------------------------------------------------


def _schnorr_fold(evidences: Sequence[Tuple[Any, ...]]) -> bool:
    return batch_schnorr_verify(list(evidences))


def _chaum_pedersen_one(transcript, context=None) -> bool:
    if context is None:
        return chaum_pedersen_verify(transcript)
    return fiat_shamir_verify(transcript, context=context)


def _chaum_pedersen_fold(evidences: Sequence[Tuple[Any, ...]]) -> bool:
    # Structural pass: non-interactive transcripts must carry their
    # Fiat–Shamir challenge; then every transcript's two equations fold.
    transcripts = []
    for evidence in evidences:
        transcript = evidence[0]
        context = evidence[1] if len(evidence) > 1 else None
        if context is not None:
            expected = fiat_shamir_challenge(transcript.statement, transcript.commit, context)
            if transcript.challenge != expected:
                return False
        transcripts.append(transcript)
    return batch_chaum_pedersen_verify(transcripts, context=None)


def _dlog_fold(evidences: Sequence[Tuple[Any, ...]]) -> bool:
    return batch_dlog_verify([(proof, context) for proof, context in evidences])


def _shuffle_round_one(elgamal, public_key, sources, targets, opening) -> bool:
    from repro.tally.mixnet import check_round_mapping

    return check_round_mapping(elgamal, public_key, sources, targets, opening, batch=False)


def _shuffle_round_fold(evidences: Sequence[Tuple[Any, ...]]) -> bool:
    # Collect every opening's re-encryption items (structural checks first)
    # and fold them per public key: items from many rounds of many stages
    # land in the same product, which is where the batch saves most.
    from repro.tally.mixnet import round_mapping_items

    grouped: Dict[bytes, Tuple[Any, Any, List[Any]]] = {}
    for elgamal, public_key, sources, targets, opening in evidences:
        items = round_mapping_items(sources, targets, opening)
        if items is None:
            return False
        key = public_key.to_bytes()
        if key not in grouped:
            grouped[key] = (elgamal, public_key, [])
        grouped[key][2].extend(items)
    return all(
        batch_reencryption_verify(elgamal, public_key, items)
        for elgamal, public_key, items in grouped.values()
    )


def _tag_chain_fold(evidences: Sequence[Tuple[Any, ...]]) -> bool:
    transcripts = []
    for tag, original, commitments in evidences:
        chain = tag_chain_transcripts(tag, original, commitments)
        if chain is None:
            return False
        transcripts.extend(chain)
    return batch_chaum_pedersen_verify(transcripts, context=None)


def _ciphertext_tag_chain_fold(evidences: Sequence[Tuple[Any, ...]]) -> bool:
    transcripts = []
    for steps, original, final, commitments in evidences:
        chain = ciphertext_tag_chain_transcripts(steps, original, final, commitments)
        if chain is None:
            return False
        transcripts.extend(chain)
    return batch_chaum_pedersen_verify(transcripts, context=None)


def _decryption_share_one(public_share, ciphertext, share) -> bool:
    transcript = decryption_share_transcript(public_share, ciphertext, share)
    return chaum_pedersen_verify(transcript)


def _decryption_share_fold(evidences: Sequence[Tuple[Any, ...]]) -> bool:
    return batch_decryption_share_verify(list(evidences))


def _wellformedness_one(group, public_key, ciphertext, proof, num_options) -> bool:
    from repro.voting.ballot import wellformedness_ok

    return wellformedness_ok(group, public_key, ciphertext, proof, num_options)


def _ledger_chain_one(name, entries) -> bool:
    return AppendOnlyLog.verify_entries(entries)


def _batch_chain_one(batches) -> bool:
    return verify_batch_chain(batches)


def _tag_chain_one(tag, original, commitments) -> bool:
    return verify_blinded_tag(tag, original, commitments)


def _ciphertext_tag_chain_one(steps, original, final, commitments) -> bool:
    return verify_ciphertext_tag_chain(steps, original, final, commitments)


def _shuffle_coins_one(inputs, shuffle) -> bool:
    from repro.tally.mixnet import shuffle_coins_ok

    return shuffle_coins_ok(inputs, shuffle)


def _predicate_one(fn, *args) -> bool:
    return bool(fn(*args))


register_kind("schnorr", schnorr_verify, _schnorr_fold)
register_kind("chaum-pedersen", _chaum_pedersen_one, _chaum_pedersen_fold)
register_kind("dlog", verify_dlog, _dlog_fold)
register_kind("wellformedness", _wellformedness_one)
register_kind("shuffle-coins", _shuffle_coins_one)
register_kind("shuffle-round", _shuffle_round_one, _shuffle_round_fold)
register_kind("tag-chain", _tag_chain_one, _tag_chain_fold)
register_kind("ciphertext-tag-chain", _ciphertext_tag_chain_one, _ciphertext_tag_chain_fold)
register_kind("decryption-share", _decryption_share_one, _decryption_share_fold)
register_kind("ledger-chain", _ledger_chain_one)
register_kind("batch-chain", _batch_chain_one)
register_kind("predicate", _predicate_one)
