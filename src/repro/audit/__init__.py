"""repro.audit — the unified, strategy-pluggable verification API.

Every proof obligation in the system is a typed :class:`Check` collected
into an :class:`AuditPlan` and executed by a pluggable :class:`Verifier`:

* ``eager`` — reference one-by-one semantics;
* ``batched`` — same-kind checks folded into random-linear-combination
  batch equations (:mod:`repro.runtime.batch`), bisected on rejection;
* ``stream`` — check shards riding :mod:`repro.runtime.pipeline` with
  first-failure cancellation;
* ``dist`` — contiguous check shards shipped one task each over the
  executor surface (remote workers, under a :mod:`repro.cluster`
  executor) and merged back into one report.

Every strategy returns a structured :class:`AuditReport` (per-check
outcomes, failure locus, counts, timings) whose outcomes are bit-identical
across strategies; the legacy ``verify_*`` entry points remain as
bool-returning shims over this API.  Select a strategy per election via
``ElectionConfig.audit_spec``; audit a whole election with
:func:`audit_election` or ``python -m repro.audit``.
"""

from repro.audit.api import (
    AUDIT_API_VERSION,
    AuditPlan,
    AuditReport,
    BatchedVerifier,
    Check,
    CheckResult,
    CheckStatus,
    DistributedVerifier,
    EagerVerifier,
    StreamingVerifier,
    Verifier,
    verifier_from_spec,
)
from repro.audit.checks import (
    audit_election,
    audit_tally,
    ballot_checks,
    cascade_checks,
    chain_checks,
    decryption_checks,
    evidence_checks,
    registration_record_checks,
    rotation_checks,
    tally_audit_plan,
)
from repro.audit.evidence import (
    DecryptionTranscript,
    TagChainEvidence,
    TallyEvidence,
    build_tally_evidence,
    decryption_transcript,
    tag_chain_evidence,
)
from repro.audit.kinds import CheckKind, get_kind, register_kind

__all__ = [
    "AUDIT_API_VERSION",
    "AuditPlan",
    "AuditReport",
    "BatchedVerifier",
    "Check",
    "CheckKind",
    "CheckResult",
    "CheckStatus",
    "DecryptionTranscript",
    "DistributedVerifier",
    "EagerVerifier",
    "StreamingVerifier",
    "TagChainEvidence",
    "TallyEvidence",
    "Verifier",
    "audit_election",
    "audit_tally",
    "ballot_checks",
    "build_tally_evidence",
    "cascade_checks",
    "chain_checks",
    "decryption_checks",
    "decryption_transcript",
    "evidence_checks",
    "get_kind",
    "register_kind",
    "registration_record_checks",
    "rotation_checks",
    "tag_chain_evidence",
    "tally_audit_plan",
    "verifier_from_spec",
]
