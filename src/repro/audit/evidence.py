"""Self-describing audit evidence published alongside a tally result.

The paper's universal-verifiability story needs every tally-side secret
operation to leave a publicly checkable transcript.  The mix cascades always
publish theirs (shadow-mix proofs); this module adds the two that used to be
verified only *inside* the pipeline and then thrown away:

* :class:`DecryptionTranscript` — one threshold decryption: the ciphertext,
  every member's public share and :class:`~repro.crypto.elgamal.
  DecryptionShare` (with its Chaum–Pedersen proof).  Anyone can recombine
  the shares and re-derive the plaintext.
* :class:`TagChainEvidence` — one blinded-tag derivation: the source
  ciphertext, the per-member :class:`~repro.crypto.tagging.
  CiphertextTaggingStep` proofs, the fully blinded ciphertext, its
  decryption transcript, and the resulting tag value.

:class:`TallyEvidence` bundles these for every registration tag, ballot tag
and counted vote, plus the commitment sets that bind the transcripts to the
election (tagging commitments, authority member keys).  In the WaTZ spirit,
the bundle is *self-describing*: an auditor needs the bundle, the board and
the claimed result — no live authority objects, no secrets.

Generation is opt-in (``TallyPipeline(collect_evidence=True)`` /
``ElectionConfig.audit_evidence``) because the tagging-step proofs cost a
few extra exponentiations per ciphertext per member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.dkg import DistributedKeyGeneration
from repro.crypto.elgamal import DecryptionShare, ElGamal, ElGamalCiphertext
from repro.crypto.group import GroupElement
from repro.crypto.tagging import CiphertextTaggingStep, TaggingAuthority


@dataclass(frozen=True)
class DecryptionTranscript:
    """One verifiable threshold decryption: shares + proofs for a ciphertext."""

    ciphertext: ElGamalCiphertext
    public_shares: Tuple[GroupElement, ...]
    shares: Tuple[DecryptionShare, ...]

    def plaintext(self) -> GroupElement:
        """Recombine the claimed shares (correctness rests on the share proofs)."""
        group = self.ciphertext.c1.group
        factor = group.identity
        for share in self.shares:
            factor = factor * share.share
        return self.ciphertext.c2 * factor.inverse()


@dataclass(frozen=True)
class TagChainEvidence:
    """One blinded-tag derivation, end to end: blind steps, decryption, value."""

    source: ElGamalCiphertext
    steps: Tuple[CiphertextTaggingStep, ...]
    blinded: ElGamalCiphertext
    decryption: DecryptionTranscript
    tag: GroupElement


@dataclass(frozen=True)
class TallyEvidence:
    """Everything the tally proved beyond the mix cascades, in publish order.

    ``registration_tags`` / ``ballot_tags`` follow the order of the mixed
    registration outputs / mixed ballot pairs (the order the filter result
    publishes its tag byte lists in); ``decryptions`` follows
    ``filter_result.counted`` / ``result.votes``.
    """

    tagging_commitments: Tuple[GroupElement, ...]
    member_public_keys: Tuple[GroupElement, ...]
    registration_tags: Tuple[TagChainEvidence, ...]
    ballot_tags: Tuple[TagChainEvidence, ...]
    decryptions: Tuple[DecryptionTranscript, ...]


def decryption_transcript(
    dkg: DistributedKeyGeneration, ciphertext: ElGamalCiphertext
) -> DecryptionTranscript:
    """Produce the publishable transcript of one threshold decryption."""
    elgamal = ElGamal(dkg.group)
    return DecryptionTranscript(
        ciphertext=ciphertext,
        public_shares=tuple(member.public for member in dkg.members),
        shares=tuple(member.decryption_share(elgamal, ciphertext) for member in dkg.members),
    )


def tag_chain_evidence(
    dkg: DistributedKeyGeneration,
    tagging: TaggingAuthority,
    ciphertext: ElGamalCiphertext,
) -> TagChainEvidence:
    """Blind ``ciphertext`` with per-step proofs and transcribe its decryption.

    The blinded value (and hence the tag) is bit-identical to the proof-less
    path the filter takes — same exponentiation chain, proof nonces never
    touch the output — so evidence generated after the fact matches the
    published tag byte lists exactly.
    """
    blinded, steps = tagging.blind_ciphertext_with_proof(ciphertext)
    decryption = decryption_transcript(dkg, blinded)
    return TagChainEvidence(
        source=ciphertext,
        steps=tuple(steps),
        blinded=blinded,
        decryption=decryption,
        tag=decryption.plaintext(),
    )


def build_tally_evidence(
    dkg: DistributedKeyGeneration,
    tagging: TaggingAuthority,
    mixed_registrations: Sequence[ElGamalCiphertext],
    mixed_ballot_credentials: Sequence[ElGamalCiphertext],
    counted: Sequence[ElGamalCiphertext],
) -> TallyEvidence:
    """Assemble the full evidence bundle for one tally run."""
    registration_tags: List[TagChainEvidence] = [
        tag_chain_evidence(dkg, tagging, ciphertext) for ciphertext in mixed_registrations
    ]
    ballot_tags: List[TagChainEvidence] = [
        tag_chain_evidence(dkg, tagging, ciphertext) for ciphertext in mixed_ballot_credentials
    ]
    decryptions = [decryption_transcript(dkg, ciphertext) for ciphertext in counted]
    return TallyEvidence(
        tagging_commitments=tuple(tagging.commitments),
        member_public_keys=tuple(dkg.member_public_keys),
        registration_tags=tuple(registration_tags),
        ballot_tags=tuple(ballot_tags),
        decryptions=tuple(decryptions),
    )
