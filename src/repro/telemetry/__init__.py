"""repro.telemetry — dependency-free tracing + metrics for the whole stack.

Selected via ``ElectionConfig.telemetry_spec`` (default ``"off"``) or
directly with :func:`configure`.  The spec grammar mirrors the other
``*_spec`` knobs:

- ``"off"`` — disabled.  Every primitive short-circuits: this is the mode
  the tier-1 suite and production-default runs pay for, and it is gated to
  ≤1.02× tally overhead by ``benchmarks/bench_telemetry_overhead.py``.
- ``"mem"`` — buffer events in-process (tests, single-process tallies, and
  cluster workers, whose events ride home on RESULT frames).
- ``"jsonl:<path>"`` — stream events to an append-only JSONL trace shared by
  every process; render it later with
  ``python -m repro.telemetry summarize <trace.jsonl>``.

State is process-global and lazily attached: :func:`configure` exports
``REPRO_TELEMETRY`` so pool children and spawned cluster workers that import
this module resolve the same spec on first use — the same environment path
``REPRO_PRECOMPUTE_CACHE`` travels.  Usage::

    from repro import telemetry

    telemetry.configure("jsonl:/tmp/trace.jsonl")
    with telemetry.span("tally.mix", mixer=0):
        ...
    telemetry.counter("cluster.dispatch", worker="w-1")
    print(telemetry.snapshot().to_prometheus())
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.context import (
    SAMPLE_ENV,
    TRACEPARENT_HEADER,
    TraceContext,
    attach,
    current_context,
    detach,
    format_traceparent,
    new_trace,
    parse_traceparent,
)
from repro.telemetry.core import (
    HISTOGRAM_BUCKETS,
    SPEC_OFF,
    TELEMETRY_ENV,
    JsonlSink,
    MemSink,
    SpanHandle,
    Telemetry,
    read_jsonl,
    telemetry_from_spec,
)
from repro.telemetry.core import active_spans as _core_active_spans
from repro.telemetry.snapshot import TelemetrySnapshot

__all__ = [
    "HISTOGRAM_BUCKETS",
    "SAMPLE_ENV",
    "SPEC_OFF",
    "TELEMETRY_ENV",
    "TRACEPARENT_HEADER",
    "JsonlSink",
    "MemSink",
    "SpanHandle",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceContext",
    "active_spans",
    "attach",
    "configure",
    "counter",
    "current",
    "current_context",
    "detach",
    "drain",
    "enabled",
    "format_traceparent",
    "gauge",
    "histogram",
    "ingest",
    "new_trace",
    "parse_traceparent",
    "read_jsonl",
    "snapshot",
    "span",
    "telemetry_from_spec",
]

_UNSET = object()
_state: Any = _UNSET  # _UNSET -> resolve from env; None -> off; Telemetry -> on
_state_lock = threading.Lock()
_hooks_installed = False


def _install_hooks_locked() -> None:
    """Once per process: post-fork child reset + end-of-process metric flush.

    Forked children inherit a *copy* of the parent's metric aggregates; they
    must start from zero or every flush/drain would multiply-count the
    parent's history.  The atexit flush persists the main process's metric
    aggregates into a ``jsonl:`` sink so ``summarize`` sees them.
    """
    global _hooks_installed
    if _hooks_installed:
        return
    _hooks_installed = True
    if hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=_after_fork_in_child)
    atexit.register(_flush_at_exit)


def _after_fork_in_child() -> None:
    state = _state
    if isinstance(state, Telemetry):
        state.reset_in_child()


def _flush_at_exit() -> None:
    state = _state
    if isinstance(state, Telemetry) and isinstance(state.sink, JsonlSink):
        try:
            state.close()  # close() flushes the metric aggregates first
        except Exception:  # pragma: no cover - never fail interpreter exit
            pass


def _resolve() -> Optional[Telemetry]:
    """The active :class:`Telemetry`, attaching from the environment once."""
    state = _state
    if state is not _UNSET:
        return state
    with _state_lock:
        if _state is _UNSET:
            _attach_locked(telemetry_from_spec(os.environ.get(TELEMETRY_ENV, SPEC_OFF)))
        return _state


def _attach_locked(telemetry: Optional[Telemetry]) -> None:
    global _state
    _state = telemetry
    if telemetry is not None:
        _install_hooks_locked()


def configure(spec: Optional[str], propagate: bool = True) -> Optional[Telemetry]:
    """Install the telemetry selected by ``spec`` for this process.

    With ``propagate`` (the default) the spec is exported as
    ``REPRO_TELEMETRY`` so subprocesses started from here — process pools,
    spawned cluster workers, benchmark children — attach to the same sink.
    Cluster workers pass ``propagate=False``: their events travel back on
    RESULT frames instead of racing the coordinator for the trace file.
    """
    telemetry = telemetry_from_spec(spec)
    with _state_lock:
        previous = _state
        if isinstance(previous, Telemetry) and previous is not telemetry:
            previous.close()
        _attach_locked(telemetry)
    if propagate:
        if telemetry is None:
            os.environ.pop(TELEMETRY_ENV, None)
        else:
            os.environ[TELEMETRY_ENV] = telemetry.spec
    return telemetry


def current() -> Optional[Telemetry]:
    """The active :class:`Telemetry`, or ``None`` when disabled."""
    return _resolve()


def enabled() -> bool:
    return _resolve() is not None


def span(name: str, **attrs: Any) -> SpanHandle:
    """A timed region.  Use as a context manager::

        with telemetry.span("tally.decrypt", items=len(votes)) as handle:
            ...
        report.elapsed_seconds = handle.elapsed_seconds

    The handle measures even when telemetry is off (so callers can reuse its
    ``elapsed_seconds`` in their own reports); it only records when enabled.
    """
    return SpanHandle(name, attrs, _resolve())


def counter(name: str, value: float = 1.0, **labels: Any) -> None:
    state = _resolve()
    if state is not None:
        state.counter(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Record a sampled level; snapshots keep both last and high-water max."""
    state = _resolve()
    if state is not None:
        state.gauge(name, value, **labels)


def histogram(
    name: str, value: float, exemplar: Optional[str] = None, **labels: Any
) -> None:
    """Record one observation; ``exemplar`` pins a trace ID to the series.

    The exemplar surfaced in summaries is the trace of the slowest
    observation so far — the request you want the waterfall for.
    """
    state = _resolve()
    if state is not None:
        state.histogram(name, value, exemplar=exemplar, **labels)


def active_spans() -> List[Dict[str, Any]]:
    """Every span currently open in this process (the live ops plane feed).

    Cheap and lock-brief; returns ``[]`` when telemetry is off (nothing is
    tracked in that mode).
    """
    if _resolve() is None:
        return []
    return _core_active_spans()


def drain() -> List[Dict[str, Any]]:
    """Pop this process's buffered spans and metric aggregates.

    This is the cluster piggyback: a worker drains after each task and ships
    the blob on the RESULT frame; the coordinator folds it in via
    :func:`ingest` so one snapshot covers the fleet.
    """
    state = _resolve()
    if state is None:
        return []
    return state.drain()


def ingest(events: Sequence[Dict[str, Any]], **extra_labels: Any) -> None:
    """Merge foreign events (a drained blob) into this process's telemetry."""
    state = _resolve()
    if state is not None and events:
        state.ingest(events, **extra_labels)


def snapshot() -> TelemetrySnapshot:
    """One merged report: sink events plus this process's live aggregates.

    For a ``jsonl:`` sink the trace file is re-read, so spans and flushed
    metrics from every participating process land in the same snapshot.
    """
    state = _resolve()
    if state is None:
        return TelemetrySnapshot()
    events = list(state.sink.events())
    events.extend(state.metrics_events())
    return TelemetrySnapshot.from_events(events)
