"""Core tracing + metrics state: spans, counters, gauges, histograms, sinks.

Everything here is stdlib-only and import-light on purpose: every hot module
in the repo (executors, the stream pipeline, ledger backends, the cluster
coordinator) imports :mod:`repro.telemetry`, so this module must never import
back into them.

Design constraints, in order of importance:

1. **Disabled mode is near-free.**  The default spec is ``"off"``; in that
   state ``counter``/``gauge``/``histogram`` are a dict lookup and an early
   return, and ``span`` allocates one small handle that still measures its
   own elapsed time (callers like :class:`repro.audit.api.Verifier` read
   ``elapsed_seconds`` off the handle whether or not telemetry records it)
   but touches no shared state.
2. **Thread- and process-safe identity.**  Span IDs embed the emitting PID,
   so IDs minted on either side of a ``fork()`` never collide; the parent
   stack is thread-local, so concurrent pipeline stages each get their own
   span lineage.
3. **Crash-safe JSONL.**  The ``jsonl:`` sink appends one complete line per
   event with a single unbuffered ``write()`` on an ``O_APPEND`` descriptor,
   so concurrent writers (threads, forked pool workers, spawned cluster
   workers) interleave *lines*, never bytes within a line.
4. **Children re-attach via the environment.**  ``configure()`` exports
   ``REPRO_TELEMETRY``; any subprocess that imports this module lazily
   resolves the same spec on first use — the same propagation path
   ``REPRO_PRECOMPUTE_CACHE`` uses to reach pool and cluster workers.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

TELEMETRY_ENV = "REPRO_TELEMETRY"
SPEC_OFF = "off"

# Label sets are stored canonically as sorted (key, value) tuples so that
# {"a": 1, "b": 2} and {"b": 2, "a": 1} aggregate into the same series.
LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]

_SPAN_IDS = itertools.count(1)
_TLS = threading.local()


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _new_span_id() -> str:
    """A fleet-unique span ID: PID-prefixed monotonic counter.

    The counter is plain :mod:`itertools` (no lock needed — ``next`` on a
    count is atomic under the GIL); uniqueness across ``fork()`` children
    that inherit the counter position comes from the PID prefix.
    """
    return "%x.%x" % (os.getpid(), next(_SPAN_IDS))


def _span_stack() -> List["SpanHandle"]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


class SpanHandle:
    """One timed region.  Context manager; nests via a thread-local stack.

    Always measures (``elapsed_seconds`` is valid even when telemetry is
    off — callers may surface it in their own reports); only *records* to
    the active sink when a :class:`Telemetry` is attached.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start", "end", "_telemetry")

    def __init__(
        self, name: str, attrs: Dict[str, Any], telemetry: Optional["Telemetry"]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self._telemetry = telemetry
        self.span_id = _new_span_id() if telemetry is not None else ""
        self.parent_id: Optional[str] = None
        self.start = 0.0
        self.end = 0.0

    @property
    def elapsed_seconds(self) -> float:
        if self.end:
            return self.end - self.start
        return time.perf_counter() - self.start

    def __enter__(self) -> "SpanHandle":
        if self._telemetry is not None:
            stack = _span_stack()
            if stack:
                self.parent_id = stack[-1].span_id
            stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.end = time.perf_counter()
        telemetry = self._telemetry
        if telemetry is not None:
            stack = _span_stack()
            if stack and stack[-1] is self:
                stack.pop()
            elif self in stack:  # pragma: no cover - unbalanced exit safety net
                stack.remove(self)
            if exc_type is not None:
                self.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
            telemetry.record_span(self)


class MemSink:
    """In-process event buffer: the ``"mem"`` spec and the cluster workers."""

    kind = "mem"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def take(self) -> List[Dict[str, Any]]:
        """Pop everything buffered so far (the cluster piggyback drain)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def reset(self) -> None:
        with self._lock:
            self._events = []

    def close(self) -> None:
        pass


class JsonlSink:
    """Append-only JSONL file shared by every process in the run.

    Each event is serialised to one line and pushed with a single
    ``os.write``-backed call on an append-mode, unbuffered binary handle:
    POSIX ``O_APPEND`` semantics make concurrent line writes atomic, so a
    reader always sees whole JSON lines regardless of how many processes
    share the file.
    """

    kind = "jsonl"

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "ab", buffering=0)

    def emit(self, event: Dict[str, Any]) -> None:
        line = (json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            self._handle.write(line)

    def events(self) -> List[Dict[str, Any]]:
        """Re-read the shared file: picks up every writer, not just us."""
        return list(read_jsonl(self.path))

    def take(self) -> List[Dict[str, Any]]:
        return []  # the file *is* the shared buffer; nothing to hand-carry

    def reset(self) -> None:
        pass

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass


def read_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Yield events from a trace file, skipping any torn trailing line."""
    try:
        handle = open(path, "rb")
    except OSError:
        return
    with handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except ValueError:
                continue  # torn or foreign line — never poison a whole trace
            if isinstance(event, dict):
                yield event


class Telemetry:
    """One process's telemetry state: a sink plus in-memory metric aggregates.

    Spans stream to the sink eagerly (they are the trace); counters, gauges
    and histograms aggregate locally and are folded into snapshots, drained
    for the cluster piggyback, or flushed to the JSONL file at process exit
    so pool children's metrics survive them.
    """

    def __init__(self, sink: Any, spec: str) -> None:
        self.sink = sink
        self.spec = spec
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, List[float]] = {}  # [last, max]
        self._histograms: Dict[MetricKey, List[float]] = {}  # [count, sum, min, max]

    # ------------------------------------------------------------- recording

    def record_span(self, span: SpanHandle) -> None:
        event: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "pid": os.getpid(),
            "start": span.start,
            "duration": span.end - span.start,
        }
        if span.attrs:
            event["attrs"] = {key: _jsonable(value) for key, value in span.attrs.items()}
        self.sink.emit(event)

    def counter(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            slot = self._gauges.get(key)
            if slot is None:
                self._gauges[key] = [value, value]
            else:
                slot[0] = value
                if value > slot[1]:
                    slot[1] = value

    def histogram(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            slot = self._histograms.get(key)
            if slot is None:
                self._histograms[key] = [1.0, value, value, value]
            else:
                slot[0] += 1.0
                slot[1] += value
                if value < slot[2]:
                    slot[2] = value
                if value > slot[3]:
                    slot[3] = value

    # ------------------------------------------------------------- extraction

    def metrics_events(self, reset: bool = False) -> List[Dict[str, Any]]:
        """The local aggregates as portable event dicts."""
        events: List[Dict[str, Any]] = []
        pid = os.getpid()
        with self._lock:
            for (name, labels), value in self._counters.items():
                events.append(
                    {"type": "counter", "name": name, "labels": dict(labels), "value": value, "pid": pid}
                )
            for (name, labels), (last, high) in self._gauges.items():
                events.append(
                    {"type": "gauge", "name": name, "labels": dict(labels), "value": last, "max": high, "pid": pid}
                )
            for (name, labels), (count, total, low, high) in self._histograms.items():
                events.append(
                    {
                        "type": "histogram",
                        "name": name,
                        "labels": dict(labels),
                        "count": count,
                        "sum": total,
                        "min": low,
                        "max": high,
                        "pid": pid,
                    }
                )
            if reset:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
        return events

    def ingest(self, events: Sequence[Dict[str, Any]], **extra_labels: Any) -> None:
        """Fold foreign events (a worker's drained blob) into this process.

        Span events are re-emitted to our sink tagged with ``extra_labels``
        (e.g. ``worker="w-3"``); metric events merge into our aggregates with
        the extra labels appended, so a fleet-wide snapshot keeps per-worker
        series distinct.
        """
        for event in events:
            kind = event.get("type")
            if kind == "span":
                merged = dict(event)
                if extra_labels:
                    attrs = dict(merged.get("attrs") or {})
                    attrs.update({key: _jsonable(value) for key, value in extra_labels.items()})
                    merged["attrs"] = attrs
                self.sink.emit(merged)
            elif kind == "counter":
                labels = dict(event.get("labels") or {})
                labels.update(extra_labels)
                self.counter(event["name"], float(event.get("value", 0.0)), **labels)
            elif kind == "gauge":
                labels = dict(event.get("labels") or {})
                labels.update(extra_labels)
                value = float(event.get("value", 0.0))
                high = float(event.get("max", value))
                key = (event["name"], _label_key(labels))
                with self._lock:
                    slot = self._gauges.get(key)
                    if slot is None:
                        self._gauges[key] = [value, high]
                    else:
                        slot[0] = value
                        if high > slot[1]:
                            slot[1] = high
            elif kind == "histogram":
                labels = dict(event.get("labels") or {})
                labels.update(extra_labels)
                self._merge_histogram(event, labels)

    def _merge_histogram(self, event: Dict[str, Any], labels: Dict[str, Any]) -> None:
        key = (event["name"], _label_key(labels))
        count = float(event.get("count", 0.0))
        total = float(event.get("sum", 0.0))
        low = float(event.get("min", 0.0))
        high = float(event.get("max", 0.0))
        with self._lock:
            slot = self._histograms.get(key)
            if slot is None:
                self._histograms[key] = [count, total, low, high]
            else:
                slot[0] += count
                slot[1] += total
                if low < slot[2]:
                    slot[2] = low
                if high > slot[3]:
                    slot[3] = high

    def drain(self) -> List[Dict[str, Any]]:
        """Pop buffered spans *and* metric aggregates (cluster piggyback)."""
        events = list(self.sink.take())
        events.extend(self.metrics_events(reset=True))
        return events

    def flush_metrics(self) -> None:
        """Write the aggregates into the sink (JSONL end-of-process flush)."""
        for event in self.metrics_events():
            self.sink.emit(event)

    def reset_in_child(self) -> None:
        """Post-``fork()`` reset: drop aggregates copied from the parent.

        Without this, every pool child would re-flush the parent's pre-fork
        counters at exit and snapshots would multiply-count them.  The JSONL
        file handle is kept — ``O_APPEND`` descriptors are fork-safe.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        self.sink.reset()

    def close(self) -> None:
        # Flush before closing: detaching (configure("off"), or swapping
        # specs) must not lose the aggregates a post-mortem reader expects
        # to find in the trace file.
        try:
            self.flush_metrics()
        except OSError:  # pragma: no cover - sink already gone
            pass
        self.sink.close()


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def telemetry_from_spec(spec: Optional[str]) -> Optional[Telemetry]:
    """Build a :class:`Telemetry` from a spec string; ``None`` means off.

    Grammar (mirrors ``executor_spec``/``board_spec``):

    - ``"off"`` (or empty) — disabled; every primitive is a no-op.
    - ``"mem"`` — buffer events in-process (single-process runs, tests).
    - ``"jsonl:<path>"`` — stream events to an append-only JSONL trace file
      shared by every process in the run.
    """
    if spec is None:
        return None
    text = spec.strip()
    if text in ("", SPEC_OFF):
        return None
    if text == "mem":
        return Telemetry(MemSink(), text)
    if text.startswith("jsonl:"):
        path = text[len("jsonl:"):]
        if not path:
            raise ValueError("jsonl telemetry spec needs a path: 'jsonl:<path>'")
        return Telemetry(JsonlSink(path), text)
    raise ValueError(
        f"unknown telemetry spec {spec!r}; expected 'off', 'mem', or 'jsonl:<path>'"
    )
